//! End-to-end pipeline on the synthetic Adult workload: generation →
//! hierarchies → lattice search → (c,k)-safety audit, plus the Figure 5/6
//! shape properties the paper reports.

use wcbk::anonymize::search::find_minimal_safe;
use wcbk::anonymize::{anonymize, CkSafetyCriterion, KAnonymity, UtilityMetric};
use wcbk::core::negation_max_disclosure;
use wcbk::datagen::adult::{synthetic_adult, AdultConfig};
use wcbk::hierarchy::adult::{adult_lattice, figure5_node};
use wcbk::prelude::*;

fn adult(n: usize) -> Table {
    synthetic_adult(AdultConfig {
        n_rows: n,
        seed: 99,
    })
}

#[test]
fn figure5_shape_on_adult() {
    let table = adult(6_000);
    let lattice = adult_lattice(&table).unwrap();
    let b = lattice.bucketize(&table, &figure5_node()).unwrap();
    // Four 20-year age buckets of thousands of tuples each.
    assert_eq!(b.n_buckets(), 4);

    let mut prev_imp = 0.0;
    let mut prev_neg = 0.0;
    for k in 0..=13usize {
        let imp = max_disclosure(&b, k).unwrap().value;
        let neg = negation_max_disclosure(&b, k).unwrap().value;
        assert!(imp >= neg - 1e-12, "k={k}: implication below negation");
        assert!(imp >= prev_imp - 1e-12 && neg >= prev_neg - 1e-12, "k={k}");
        prev_imp = imp;
        prev_neg = neg;
    }
    // 14 sensitive values: k=13 negations rule out everything.
    assert!((prev_imp - 1.0).abs() < 1e-9);
    assert!((prev_neg - 1.0).abs() < 1e-9);
}

#[test]
fn lattice_search_finds_minimal_safe_nodes() {
    let table = adult(3_000);
    let lattice = adult_lattice(&table).unwrap();
    let criterion = CkSafetyCriterion::new(0.9, 2).unwrap();
    let outcome = find_minimal_safe(&table, &lattice, &criterion).unwrap();
    // The top node fully suppresses everything: a single bucket over 14
    // occupations is about as safe as it gets; expect at least one safe node.
    assert!(!outcome.minimal_nodes.is_empty());
    // Minimality: no immediate predecessor of a minimal node is safe.
    for node in &outcome.minimal_nodes {
        let b = lattice.bucketize(&table, node).unwrap();
        assert!(CkSafetyCriterion::new(0.9, 2)
            .unwrap()
            .is_satisfied(&b)
            .unwrap());
        for p in lattice.predecessors(node) {
            let pb = lattice.bucketize(&table, &p).unwrap();
            assert!(
                !CkSafetyCriterion::new(0.9, 2)
                    .unwrap()
                    .is_satisfied(&pb)
                    .unwrap(),
                "{node} has safe predecessor {p}"
            );
        }
    }
    // Pruning must have saved work.
    assert!(outcome.evaluated <= lattice.n_nodes());
}

#[test]
fn anonymize_pipeline_audits_below_threshold() {
    let table = adult(3_000);
    let lattice = adult_lattice(&table).unwrap();
    let (c, k) = (0.85, 2);
    let criterion = CkSafetyCriterion::new(c, k).unwrap();
    let outcome = anonymize(&table, &lattice, &criterion, UtilityMetric::Discernibility).unwrap();
    let audit = outcome.audit(k).unwrap();
    assert!(audit.value < c);
    assert!(outcome.bucketization.n_tuples() == table.n_rows() as u64);
    // The witness from the audit is a genuine L^k member.
    assert!(audit.witness.k() <= k);
}

#[test]
fn k_anonymity_is_not_ck_safety() {
    // Find a k-anonymous node and show it can still be unsafe against
    // background knowledge — the paper's core motivation.
    let table = adult(3_000);
    let lattice = adult_lattice(&table).unwrap();
    let outcome = anonymize(
        &table,
        &lattice,
        &KAnonymity::new(5),
        UtilityMetric::Discernibility,
    )
    .unwrap();
    // 5-anonymous, but an attacker with 12 implications gets close to 1.
    let strong_attacker = max_disclosure(&outcome.bucketization, 12).unwrap().value;
    assert!(
        strong_attacker > 0.9,
        "12 implications only reached {strong_attacker}"
    );
}

#[test]
fn dp_witness_verifies_exactly_on_full_scale_adult() {
    // The DP's worst-case witness must evaluate to the claimed disclosure
    // under exact inference even at full scale. The buckets here hold
    // thousands of tuples, far beyond world enumeration; the float-weighted
    // restricted enumeration (probability_f64) handles it because only the
    // witness's few persons are branched on.
    let table = adult(45_222);
    let lattice = adult_lattice(&table).unwrap();
    let b = lattice.bucketize(&table, &figure5_node()).unwrap();
    let space = WorldSpace::new(
        b.to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap();
    // Far more worlds than u128 can hold — counting is off the table.
    assert_eq!(space.n_worlds(), None);
    for k in [0usize, 1, 4, 8] {
        let report = max_disclosure(&b, k).unwrap();
        let exact = space
            .conditional_f64(
                &wcbk::logic::Formula::Atom(report.witness.consequent),
                &report.witness.knowledge().to_formula(),
            )
            .unwrap()
            .expect("witness consistent with B");
        assert!(
            (exact - report.value).abs() < 1e-9,
            "k={k}: exact {exact} vs dp {}",
            report.value
        );
    }
}

#[test]
fn engine_cache_pays_off_across_lattice() {
    let table = adult(2_000);
    let lattice = adult_lattice(&table).unwrap();
    let criterion = CkSafetyCriterion::new(0.9, 3).unwrap();
    let _ = find_minimal_safe(&table, &lattice, &criterion).unwrap();
    let (hits, misses) = criterion.cache_stats();
    assert!(hits + misses > 0);
    assert!(hits > 0, "no histogram sharing across lattice nodes?");
}

#[test]
fn real_adult_loader_round_trips_through_pipeline() {
    // Simulate a tiny "real" adult.data file through the CSV loader and the
    // full pipeline (schema compatibility check).
    let data = "\
39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K
38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Male, 0, 0, 40, United-States, <=50K
53, Private, 234721, 11th, 7, Married-civ-spouse, Handlers-cleaners, Husband, Black, Male, 0, 0, 40, United-States, <=50K
28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty, Wife, Black, Female, 0, 0, 40, Cuba, <=50K
37, Private, 284582, Masters, 14, Married-civ-spouse, Exec-managerial, Wife, White, Female, 0, 0, 40, United-States, <=50K
";
    let table = wcbk::datagen::adult::adult_from_reader(data.as_bytes()).unwrap();
    assert_eq!(table.n_rows(), 6);
    let lattice = adult_lattice(&table).unwrap();
    let b = lattice.bucketize(&table, &lattice.top()).unwrap();
    assert_eq!(b.n_buckets(), 1);
    let report = max_disclosure(&b, 1).unwrap();
    assert!(report.value > 0.0 && report.value <= 1.0);
}
