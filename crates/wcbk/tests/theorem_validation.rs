//! Theorem-level validation on randomized small instances: the polynomial
//! DP (which only ever considers same-consequent simple implications) must
//! match exhaustive search over the *whole* simple-implication language
//! (Theorem 9), and maximum disclosure must be monotone under coarsening
//! (Theorem 14).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk::core::partial_order::merge_buckets;
use wcbk::prelude::*;
use wcbk::worlds::inference::{max_disclosure_over_negations, max_disclosure_over_simple};

/// Random small bucketization: up to 3 buckets of up to 4 tuples over up to
/// 3 sensitive values — small enough for exhaustive language search.
fn random_small(seed: u64) -> Bucketization {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_buckets = rng.gen_range(1..=3);
    let n_values = rng.gen_range(2..=3u32);
    let mut next = 0u32;
    let mut buckets = Vec::new();
    for _ in 0..n_buckets {
        let size = rng.gen_range(1..=4);
        let members: Vec<TupleId> = (0..size)
            .map(|_| {
                let t = TupleId(next);
                next += 1;
                t
            })
            .collect();
        let values: Vec<SValue> = (0..size)
            .map(|_| SValue(rng.gen_range(0..n_values)))
            .collect();
        buckets.push(Bucket::new(members, &values));
    }
    Bucketization::from_buckets(buckets, n_values).unwrap()
}

fn space_of(b: &Bucketization) -> WorldSpace {
    WorldSpace::new(
        b.to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap()
}

#[test]
fn theorem9_dp_equals_exhaustive_search_k1() {
    for seed in 0..30u64 {
        let b = random_small(seed);
        let space = space_of(&b);
        let brute = max_disclosure_over_simple(&space, 1, 5_000_000).unwrap();
        let dp = max_disclosure(&b, 1).unwrap();
        assert!(
            (brute.value.to_f64() - dp.value).abs() < 1e-9,
            "seed {seed}: brute {} vs dp {} on {:?}",
            brute.value,
            dp.value,
            b
        );
    }
}

#[test]
fn theorem9_dp_equals_exhaustive_search_k2() {
    // k=2 over all implication pairs is heavy; keep the instances tiny.
    for seed in 0..8u64 {
        let mut b = random_small(seed);
        // Shrink: at most 2 buckets x 3 tuples.
        if b.n_tuples() > 6 {
            continue;
        }
        if b.n_buckets() > 2 {
            b = merge_buckets(&b, 0, 1).unwrap();
        }
        let space = space_of(&b);
        let Ok(brute) = max_disclosure_over_simple(&space, 2, 2_000_000) else {
            continue; // candidate space too large for this seed
        };
        let dp = max_disclosure(&b, 2).unwrap();
        assert!(
            (brute.value.to_f64() - dp.value).abs() < 1e-9,
            "seed {seed}: brute {} vs dp {}",
            brute.value,
            dp.value
        );
    }
}

#[test]
fn negation_formula_equals_exhaustive_negation_search() {
    for seed in 0..20u64 {
        let b = random_small(seed);
        let space = space_of(&b);
        for k in 0..=2usize {
            let brute = max_disclosure_over_negations(&space, k, 5_000_000).unwrap();
            let formula = wcbk::core::negation_max_disclosure(&b, k).unwrap();
            assert!(
                (brute.value.to_f64() - formula.value).abs() < 1e-9,
                "seed {seed} k={k}: brute {} vs formula {}",
                brute.value,
                formula.value
            );
        }
    }
}

#[test]
fn theorem14_monotone_under_random_merges() {
    for seed in 100..140u64 {
        let b = random_small(seed);
        if b.n_buckets() < 2 {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let i = rng.gen_range(0..b.n_buckets());
        let mut j = rng.gen_range(0..b.n_buckets());
        if i == j {
            j = (j + 1) % b.n_buckets();
        }
        let merged = merge_buckets(&b, i, j).unwrap();
        for k in 0..=3usize {
            let fine = max_disclosure(&b, k).unwrap().value;
            let coarse = max_disclosure(&merged, k).unwrap().value;
            assert!(
                coarse <= fine + 1e-12,
                "seed {seed} k={k}: merge increased disclosure {fine} -> {coarse}"
            );
        }
    }
}

#[test]
fn disclosure_bounds_hold() {
    for seed in 200..240u64 {
        let b = random_small(seed);
        let base = b.max_frequency_ratio();
        let mut prev = 0.0f64;
        for k in 0..=4usize {
            let v = max_disclosure(&b, k).unwrap().value;
            assert!(v >= base - 1e-12, "below k=0 baseline");
            assert!(v <= 1.0 + 1e-12, "above 1");
            assert!(v >= prev - 1e-12, "not monotone in k");
            prev = v;
        }
        // With enough knowledge the attacker always reaches certainty:
        // ruling out all other values of a person needs at most |S|-1 atoms.
        let v = max_disclosure(&b, b.domain_size() as usize).unwrap().value;
        assert!((v - 1.0).abs() < 1e-12);
    }
}
