//! Repository documentation link check: every relative markdown link in
//! `README.md` and `docs/*.md` must resolve to a real file (anchors and
//! absolute URLs are out of scope). Docs rot silently; CI runs this test
//! so a renamed file breaks the build instead of the reader.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/wcbk is two levels below the repo root")
        .to_path_buf()
}

/// Extracts `](target)` link targets from markdown, skipping code fences.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(at) = rest.find("](") {
            rest = &rest[at + 2..];
            if let Some(end) = rest.find(')') {
                targets.push(rest[..end].to_owned());
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    targets
}

fn is_relative_file_link(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty())
}

#[test]
fn relative_links_in_readme_and_docs_resolve() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    assert!(docs.is_dir(), "docs/ directory missing");
    for entry in fs::read_dir(&docs).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 3,
        "expected README.md plus at least two docs"
    );

    let mut broken = Vec::new();
    for file in &files {
        let text =
            fs::read_to_string(file).unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let base = file.parent().unwrap();
        for target in link_targets(&text) {
            if !is_relative_file_link(&target) {
                continue;
            }
            // Strip any #anchor suffix; the file part must exist.
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            let resolved = base.join(path_part);
            if !resolved.exists() {
                broken.push(format!(
                    "{} -> {target} ({} does not exist)",
                    file.display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn extractor_sees_links_and_skips_fences() {
    let md = "see [a](one.md) and [b](two.md#sec)\n```\n[x](fenced.md)\n```\n[c](https://e.com)";
    let targets = link_targets(md);
    assert_eq!(targets, vec!["one.md", "two.md#sec", "https://e.com"]);
    assert!(is_relative_file_link("one.md"));
    assert!(!is_relative_file_link("https://e.com"));
    assert!(!is_relative_file_link("#anchor"));
}
