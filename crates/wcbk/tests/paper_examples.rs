//! E1 integration: every number the paper quotes for its running example,
//! computed end-to-end through the public `wcbk` API — exact inference and
//! polynomial DP must agree with the paper (and with each other).

use wcbk::core::negation_max_disclosure;
use wcbk::logic::parser::{parse_knowledge, SymbolTable};
use wcbk::prelude::*;
use wcbk::table::datasets::{hospital_bucket_of, hospital_person, hospital_table};
use wcbk::worlds::inference::{atom_probability_given, max_disclosure_over_simple};

fn setup() -> (Table, Bucketization, WorldSpace, SymbolTable) {
    let table = hospital_table();
    let symbols = SymbolTable::from_table(&table, "Name").unwrap();
    let buckets = Bucketization::from_grouping(&table, hospital_bucket_of).unwrap();
    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap();
    (table, buckets, space, symbols)
}

#[test]
fn ed_probability_ladder() {
    let (table, _, space, symbols) = setup();
    let ed = hospital_person(&table, "Ed").unwrap();
    let ed_lung = Atom::new(ed, table.sensitive_code("Lung Cancer").unwrap());

    let p = atom_probability_given(&space, ed_lung, &Knowledge::none())
        .unwrap()
        .unwrap();
    assert_eq!(p, Ratio::new(2, 5));

    let phi = parse_knowledge("!t[Ed]=Mumps", &symbols).unwrap();
    let p = atom_probability_given(&space, ed_lung, &phi)
        .unwrap()
        .unwrap();
    assert_eq!(p, Ratio::new(1, 2));

    let phi = parse_knowledge("!t[Ed]=Mumps ; !t[Ed]=Flu", &symbols).unwrap();
    let p = atom_probability_given(&space, ed_lung, &phi)
        .unwrap()
        .unwrap();
    assert_eq!(p, Ratio::ONE);
}

#[test]
fn hannah_charlie_cross_bucket_lift() {
    let (table, _, space, symbols) = setup();
    let charlie = hospital_person(&table, "Charlie").unwrap();
    let charlie_flu = Atom::new(charlie, table.sensitive_code("Flu").unwrap());
    let phi = parse_knowledge("t[Hannah]=Flu -> t[Charlie]=Flu", &symbols).unwrap();
    let p = atom_probability_given(&space, charlie_flu, &phi)
        .unwrap()
        .unwrap();
    assert_eq!(p, Ratio::new(10, 19));
}

#[test]
fn figure3_maximum_disclosure_series() {
    // k=0: 2/5. k=1: 2/3 (the paper's prose value 10/19 is only the
    // cross-bucket candidate; see DESIGN.md errata). k>=2: certainty.
    let (_, buckets, _, _) = setup();
    let expected = [(0usize, 0.4), (1, 2.0 / 3.0), (2, 1.0), (3, 1.0)];
    for (k, want) in expected {
        let got = max_disclosure(&buckets, k).unwrap().value;
        assert!((got - want).abs() < 1e-12, "k={k}: got {got}, want {want}");
    }
}

#[test]
fn dp_matches_exhaustive_language_search_at_k1() {
    // The DP must equal brute force over every simple implication (10
    // persons x 6 values -> 3540 candidate implications), by Theorem 9.
    let (_, buckets, space, _) = setup();
    let brute = max_disclosure_over_simple(&space, 1, 10_000_000).unwrap();
    let dp = max_disclosure(&buckets, 1).unwrap();
    assert!(
        (brute.value.to_f64() - dp.value).abs() < 1e-9,
        "brute {} vs dp {}",
        brute.value,
        dp.value
    );
}

#[test]
fn negations_never_beat_implications_and_match_formula() {
    let (_, buckets, _, _) = setup();
    for k in 0..=5 {
        let neg = negation_max_disclosure(&buckets, k).unwrap();
        let imp = max_disclosure(&buckets, k).unwrap();
        assert!(imp.value >= neg.value - 1e-12, "k={k}");
    }
    // Male bucket {2,2,1}: k=1 negation = 2/(5-2).
    let neg = negation_max_disclosure(&buckets, 1).unwrap();
    assert!((neg.value - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn witnesses_verify_exactly_for_all_k() {
    let (_, buckets, space, _) = setup();
    for k in 0..=5 {
        let report = max_disclosure(&buckets, k).unwrap();
        let exact = atom_probability_given(
            &space,
            report.witness.consequent,
            &report.witness.knowledge(),
        )
        .unwrap()
        .expect("witness consistent with B");
        assert!(
            (exact.to_f64() - report.value).abs() < 1e-9,
            "k={k}: witness {} vs dp {}",
            exact.to_f64(),
            report.value
        );
    }
}

#[test]
fn five_anonymous_but_not_safe() {
    // The Figure 2/3 table is 5-anonymous yet fails (c,k)-safety for k >= 2
    // at any threshold — k-anonymity does not bound background-knowledge
    // disclosure (the paper's Section 1 argument).
    let (_, buckets, _, _) = setup();
    assert!(buckets.min_bucket_size() >= 5);
    assert!(!is_ck_safe(&buckets, 1.0, 2).unwrap());
    assert!(is_ck_safe(&buckets, 0.5, 0).unwrap());
}
