//! Integration tests for the alternative sanitizers (Anatomy, swapping,
//! Incognito) and the future-work extensions (soft knowledge, Monte-Carlo
//! inference, cost-based disclosure) through the public `wcbk` API.

use wcbk::anonymize::anatomy::is_eligible;
use wcbk::anonymize::search::find_minimal_safe;
use wcbk::core::negation_max_disclosure;
use wcbk::datagen::adult::{synthetic_adult, AdultConfig};
use wcbk::hierarchy::adult::adult_lattice;
use wcbk::prelude::*;
use wcbk::table::datasets::{hospital_bucket_of, hospital_table};
use wcbk::worlds::approx::estimate_conditional;
use wcbk::worlds::soft::SoftPosterior;

fn adult(n: usize) -> Table {
    synthetic_adult(AdultConfig {
        n_rows: n,
        seed: 31,
    })
}

#[test]
fn anatomy_on_adult_is_l_diverse_and_auditable() {
    let table = adult(4_000);
    let l = 4;
    assert!(is_eligible(&table, l));
    let outcome = anatomize(&table, l, 9).unwrap();
    assert_eq!(outcome.bucketization.n_tuples() as usize, table.n_rows());
    // Distinct l-diversity by construction; k=0 disclosure <= 1/l.
    let d0 = max_disclosure(&outcome.bucketization, 0).unwrap().value;
    assert!(d0 <= 1.0 / l as f64 + 1e-12);
    // But l-1 pieces of knowledge defeat it entirely (the paper's thesis).
    let defeated = max_disclosure(&outcome.bucketization, l - 1).unwrap().value;
    assert!((defeated - 1.0).abs() < 1e-12);
}

#[test]
fn incognito_agrees_with_bfs_on_adult_lattice() {
    let table = adult(2_000);
    let lattice = adult_lattice(&table).unwrap();
    let a = CkSafetyCriterion::new(0.85, 2).unwrap();
    let b = CkSafetyCriterion::new(0.85, 2).unwrap();
    let inc = incognito(&table, &lattice, &a).unwrap();
    let bfs = find_minimal_safe(&table, &lattice, &b).unwrap();
    let mut bfs_nodes = bfs.minimal_nodes;
    bfs_nodes.sort();
    assert_eq!(inc.minimal_nodes, bfs_nodes);
    // The subset join should not evaluate more full-lattice nodes than the
    // whole lattice has, and accounting must be consistent.
    let full_evals = inc.per_size.last().unwrap().2;
    assert!(full_evals <= lattice.n_nodes());
}

#[test]
fn swapping_trades_truth_for_safety() {
    let table = adult(4_000);
    let outcome = anatomize(&table, 4, 9).unwrap();
    let swapped = swap_sanitize(&outcome.bucketization, 0.5, 3).unwrap();
    // Structure preserved.
    assert_eq!(
        swapped.bucketization.n_tuples(),
        outcome.bucketization.n_tuples()
    );
    assert_eq!(
        swapped.bucketization.n_buckets(),
        outcome.bucketization.n_buckets()
    );
    // Some tuples' published values moved.
    assert!(swapped.displaced > 0);
    // The audit machinery still applies to the swapped release.
    let d = max_disclosure(&swapped.bucketization, 2).unwrap();
    assert!(d.value > 0.0 && d.value <= 1.0);
}

#[test]
fn soft_knowledge_interpolates_between_prior_and_hard() {
    let table = hospital_table();
    let buckets = Bucketization::from_grouping(&table, hospital_bucket_of).unwrap();
    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap();
    let symbols = wcbk::logic::parser::SymbolTable::from_table(&table, "Name").unwrap();
    let phi = wcbk::logic::parser::parse_knowledge("t[Hannah]=Flu -> t[Charlie]=Flu", &symbols)
        .unwrap()
        .to_formula();
    let charlie_flu = wcbk::logic::Formula::Atom(Atom::new(
        wcbk::table::datasets::hospital_person(&table, "Charlie").unwrap(),
        table.sensitive_code("Flu").unwrap(),
    ));

    let prior = 2.0 / 5.0;
    let hard = 10.0 / 19.0;
    let mut post = SoftPosterior::new(&space, 100_000).unwrap();
    let base = post.probability(&phi);
    post.update(&phi, 0.9).unwrap();
    let p = post.probability(&charlie_flu);
    assert!(p > prior && p < hard, "p={p} not strictly between");
    // Exact interpolation: p = 0.9·Pr(C|φ) + 0.1·Pr(C|¬φ), with
    // Pr(C|¬φ) = 0 (¬φ forces Charlie ≠ flu).
    assert!((p - 0.9 * hard).abs() < 1e-12);
    let _ = base;
}

#[test]
fn monte_carlo_agrees_with_dp_witness_value() {
    // Sample the witness knowledge of the DP on Figure 3 and check the
    // estimate brackets the DP value.
    let table = hospital_table();
    let buckets = Bucketization::from_grouping(&table, hospital_bucket_of).unwrap();
    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap();
    let report = max_disclosure(&buckets, 1).unwrap();
    let est = estimate_conditional(
        &space,
        &wcbk::logic::Formula::Atom(report.witness.consequent),
        &report.witness.knowledge().to_formula(),
        60_000,
        5,
    )
    .unwrap();
    assert!(
        (est.value - report.value).abs() < 6.0 * est.std_error.max(1e-3),
        "estimate {} vs dp {}",
        est.value,
        report.value
    );
}

#[test]
fn cost_weighting_changes_what_matters() {
    let table = adult(3_000);
    let outcome = anatomize(&table, 4, 1).unwrap();
    let b = &outcome.bucketization;
    // Weight the rarest occupation heavily.
    let occ = table.sensitive_column();
    let mut counts = vec![0u64; occ.cardinality()];
    for row in 0..table.n_rows() {
        counts[occ.code(row) as usize] += 1;
    }
    let rarest = counts
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    let mut costs = vec![1.0; counts.len()];
    costs[rarest] = 50.0;
    let costs = CostVector::new(costs).unwrap();

    let plain = negation_max_disclosure(b, 1).unwrap();
    let weighted = cost_negation_max_disclosure(b, 1, &costs).unwrap();
    assert!(weighted.value >= plain.value);
    // Uniform weights reduce to the plain result.
    let uniform = cost_negation_max_disclosure(b, 1, &CostVector::uniform()).unwrap();
    assert!((uniform.value - plain.value).abs() < 1e-12);
}
