//! Kill-the-real-binary durability test: run `wcbk serve --data-dir`,
//! register and release over real sockets, **SIGKILL** the process (no
//! graceful shutdown, no flush), restart on the same directory, and demand
//! bit-identical answers for every acknowledged handle. This is the
//! end-to-end version of the store crate's byte-level crash matrix.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wcbk-sigkill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A running `wcbk serve` child; killed (not shut down) on drop so a
/// panicking test never leaks the process.
struct ServerProcess {
    child: Child,
    addr: String,
}

impl ServerProcess {
    /// Spawns `wcbk serve --addr 127.0.0.1:0 --data-dir <dir>` and parses
    /// the bound address from the startup line on stderr.
    fn start(data_dir: &Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_wcbk"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().unwrap(),
            ])
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn wcbk serve");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before announcing its address")
                .unwrap();
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after listening banner")
                    .to_owned();
            }
        };
        // Keep draining stderr in the background so the child never blocks
        // on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProcess { child, addr }
    }

    /// SIGKILL — the point of the test: no destructors, no flushes.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One HTTP/1.1 request on a fresh connection (`Connection: close`), body
/// returned as a string. Hand-rolled so the test exercises the real wire.
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: wcbk\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    // Responses may be chunked; strip the framing if present.
    let payload = if raw
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let mut out = String::new();
        let mut rest = payload.as_str();
        while let Some((size, tail)) = rest.split_once("\r\n") {
            let n = usize::from_str_radix(size.trim(), 16).unwrap_or(0);
            if n == 0 {
                break;
            }
            out.push_str(&tail[..n]);
            rest = &tail[n + 2..];
        }
        out
    } else {
        payload
    };
    (status, payload)
}

fn json_str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| {
        panic!("field {key:?} missing in {body}");
    });
    let rest = &body[at + marker.len()..];
    let rest = rest.trim_start().trim_start_matches('"');
    rest.split('"').next().unwrap().to_owned()
}

#[test]
fn sigkill_and_restart_preserve_acknowledged_handles() {
    let scratch = Scratch::new("e2e");
    let register_body = r#"{"csv":"Age,Sex,Disease\n21,M,Flu\n22,F,Flu\n23,M,Cold\n24,F,Cold\n31,M,Flu\n32,F,Cold\n","sensitive":"Disease","qi":["Age","Sex"],"hierarchy":{"Age":[10]}}"#;
    let audit_body = r#"{"k":2,"c":0.9}"#;

    // ---- Life one: register, release, record the acknowledged answers.
    let server = ServerProcess::start(&scratch.0);
    let (status, reg) = request(&server.addr, "POST", "/tables", Some(register_body));
    assert_eq!(status, 200, "register: {reg}");
    let id = json_str_field(&reg, "id");
    let (status, _) = request(
        &server.addr,
        "POST",
        &format!("/tables/{id}/release"),
        Some(r#"{"node":[1,1]}"#),
    );
    assert_eq!(status, 200);
    let (status, audit_before) = request(
        &server.addr,
        "POST",
        &format!("/tables/{id}/audit"),
        Some(audit_body),
    );
    assert_eq!(status, 200, "audit: {audit_before}");
    let (_, composition_before) = request(
        &server.addr,
        "POST",
        &format!("/tables/{id}/composition"),
        Some(audit_body),
    );
    let (_, history_before) = request(&server.addr, "GET", &format!("/tables/{id}/history"), None);

    // Fire one more registration and kill without reading the response:
    // whether or not it landed, the restart below must boot cleanly.
    let in_flight =
        r#"{"csv":"Age,Disease\n41,Flu\n42,Cold\n","sensitive":"Disease","qi":["Age"]}"#;
    let mut fire = TcpStream::connect(&server.addr).unwrap();
    write!(
        fire,
        "POST /tables HTTP/1.1\r\nHost: wcbk\r\nContent-Length: {}\r\n\r\n{in_flight}",
        in_flight.len()
    )
    .unwrap();
    fire.flush().unwrap();
    server.kill();
    drop(fire);

    // ---- Life two: same directory, a new process.
    let server = ServerProcess::start(&scratch.0);
    let (status, info) = request(&server.addr, "GET", &format!("/tables/{id}"), None);
    assert_eq!(status, 200, "acknowledged handle lost to SIGKILL: {info}");
    let (_, audit_after) = request(
        &server.addr,
        "POST",
        &format!("/tables/{id}/audit"),
        Some(audit_body),
    );
    assert_eq!(audit_after, audit_before, "audit verdict drifted");
    let (_, composition_after) = request(
        &server.addr,
        "POST",
        &format!("/tables/{id}/composition"),
        Some(audit_body),
    );
    assert_eq!(
        composition_after, composition_before,
        "composition verdict drifted"
    );
    let (_, history_after) = request(&server.addr, "GET", &format!("/tables/{id}/history"), None);
    assert_eq!(history_after, history_before, "release history drifted");
    server.kill();
}
