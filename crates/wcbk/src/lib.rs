//! # wcbk — Worst-Case Background Knowledge for Privacy-Preserving Data Publishing
//!
//! A from-scratch Rust implementation of Martin, Kifer, Machanavajjhala,
//! Gehrke & Halpern, *Worst-Case Background Knowledge for Privacy-Preserving
//! Data Publishing* (ICDE 2007): the `L^k_basic` background-knowledge
//! language, the polynomial-time maximum-disclosure dynamic program,
//! **(c,k)-safety**, and the lattice-search machinery for finding minimally
//! sanitized bucketizations — plus every substrate the paper relies on
//! (tables, generalization hierarchies, an exact random-worlds inference
//! engine, baselines, and evaluation workloads).
//!
//! ## Quickstart
//!
//! ```
//! use wcbk::prelude::*;
//!
//! // The paper's running example (Figure 1) bucketized as in Figure 3.
//! let table = wcbk::table::datasets::hospital_table();
//! let buckets = Bucketization::from_grouping(
//!     &table,
//!     wcbk::table::datasets::hospital_bucket_of,
//! )?;
//!
//! // Worst-case disclosure against an attacker with one basic implication.
//! let report = max_disclosure(&buckets, 1)?;
//! assert!((report.value - 2.0 / 3.0).abs() < 1e-12);
//!
//! // Is the bucketization (0.7, 1)-safe? (max disclosure < 0.7 given k=1)
//! assert!(is_ck_safe(&buckets, 0.7, 1)?);
//! # Ok::<(), wcbk::core::CoreError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`table`] | dictionary-encoded tables, schemas, CSV, example data |
//! | [`logic`] | atoms, basic/simple implications, `L^k`, parser |
//! | [`worlds`] | exact random-worlds inference, consistency (Theorem 8) |
//! | [`core`] | MINIMIZE1/2 DP, witnesses, (c,k)-safety, incremental engine |
//! | [`hierarchy`] | DGHs, generalization lattice, the Adult hierarchies |
//! | [`adversary`] | pluggable background-knowledge languages (adversary models) |
//! | [`anonymize`] | privacy criteria, Incognito-style search, utility |
//! | [`datagen`] | synthetic Adult and random workloads |
//! | [`serve`] | batch/streaming HTTP audit service on the shared engine |
//! | [`store`] | embedded WAL-backed durable dataset catalog (`serve --data-dir`) |

pub use wcbk_adversary as adversary;
pub use wcbk_anonymize as anonymize;
pub use wcbk_core as core;
pub use wcbk_datagen as datagen;
pub use wcbk_hierarchy as hierarchy;
pub use wcbk_logic as logic;
pub use wcbk_serve as serve;
pub use wcbk_store as store;
pub use wcbk_table as table;
pub use wcbk_worlds as worlds;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use wcbk_anonymize::{
        anatomize, anonymize, anonymize_parallel, default_threads, find_minimal_safe,
        find_minimal_safe_parallel, find_minimal_safe_report, find_minimal_safe_with, incognito,
        incognito_parallel, incognito_with, swap_sanitize, sweep_all, AdversaryModel, AuditReport,
        CkSafetyCriterion, CompositionReport, CompositionStyle, DatasetSession, DistinctLDiversity,
        EntropyLDiversity, KAnonymity, ModelAuditReport, ModelCompositionReport, ModelId,
        ModelSafetyCriterion, ModelWitness, PrivacyCriterion, RecursiveCLDiversity, ReleaseReport,
        Schedule, SearchConfig, SearchOutcome, SearchReport, SessionOptions, UtilityMetric,
        MODEL_IDS, MODEL_NAMES,
    };
    pub use wcbk_core::{
        cost_negation_max_disclosure, is_ck_safe, max_disclosure, negation_max_disclosure, Bucket,
        Bucketization, CacheStats, CkSafety, CostVector, DisclosureEngine, DisclosureResult,
        EngineRegistry, HistogramSet, SensitiveHistogram,
    };
    pub use wcbk_hierarchy::{
        dataset_fingerprint, GenNode, GeneralizationLattice, Hierarchy, NodeEvaluator, RollupStats,
    };
    pub use wcbk_logic::{Atom, BasicImplication, Knowledge, SimpleImplication};
    pub use wcbk_serve::{AuditService, Server, ServerConfig, ServerHandle, ServiceLimits};
    pub use wcbk_table::{Attribute, AttributeKind, SValue, Schema, Table, TableBuilder, TupleId};
    pub use wcbk_worlds::{BucketSpec, Ratio, WorldSpace};
}
