//! `wcbk` — command-line worst-case disclosure auditing.
//!
//! ```text
//! wcbk audit <csv> --sensitive COL [--qi COL[,COL...]] [--k N] [--c F] [--model M] [--no-header]
//! wcbk search <csv> --sensitive COL --qi COL[,COL...] --c F [--k N] [--model M]
//!             [--hierarchy COL:W1,W2,...]... [--parallel] [--threads N]
//!             [--schedule level|steal] [--memo-cap N] [--scan-threads N]
//! wcbk anatomize <csv> --sensitive COL --l N [--seed N] [--k N]
//! wcbk generate-adult [--rows N] [--seed N] [--out FILE]
//! wcbk serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!            [--max-connections N] [--idle-timeout-ms N]
//!            [--engine-cache-cap N] [--engine-budget N] [--session-budget N]
//!            [--data-dir DIR] [--log-json] [--slow-request-ms N]
//! wcbk table add <csv> --addr HOST:PORT --sensitive COL [--qi ...] [--hierarchy ...] [--memo-cap N]
//! wcbk table audit|search <id> --addr HOST:PORT [--k N] [--c F] [--model M] [--threads N] [--schedule s]
//! wcbk table release <id> --addr HOST:PORT --node L1,L2,... [--model M]
//! wcbk table composition|history|info|rm <id> --addr HOST:PORT [--model M]
//! ```
//!
//! **Exit codes:** `0` success (and, for `audit`/`search` with a `--c`
//! threshold, a safe verdict), `1` usage or runtime error, `2` the audit
//! found the table **not** (c,k)-safe / the search found **no** safe
//! generalization — so scripts and CI can branch on safety without parsing
//! stdout.
//!
//! `audit` loads a CSV, buckets it by the (exact) quasi-identifier columns,
//! and prints the maximum-disclosure curve, the worst-case attacker, a
//! (c,k)-safety verdict, and the disclosure engine's cache statistics.
//! `search` finds all ⪯-minimal (c,k)-safe generalizations on the
//! quasi-identifiers; each QI gets a suppression hierarchy unless a
//! `--hierarchy COL:W1,W2,...` flag (repeatable) requests a numeric interval
//! hierarchy with the given widths, like the library path —
//! `--parallel`/`--threads N` spread the lattice search over worker threads
//! sharing one engine cache, `--schedule level|steal` picks the
//! level-synchronous fan-out or the work-stealing whole-lattice scheduler
//! (the default), `--memo-cap N` bounds the roll-up evaluator's memo for
//! deep lattices, and `--scan-threads N` spreads the evaluator's one
//! chunked bottom scan over N workers (`0`/default: all cores; bit-neutral
//! either way).
//! `--model M` (audit, search, and the `table` verbs) swaps the adversary's
//! background-knowledge language: `conjunction` (the paper's `L^k_basic`
//! implications — the default, byte-identical to omitting the flag),
//! `distribution` (worst-case distribution knowledge), `minimality`
//! (minimality/utility-aware attack), or `sequential` (linkage-aware
//! sequential release; its composition audits price the common refinement
//! of the release history instead of the union of buckets).
//! `anatomize` publishes with the Anatomy algorithm instead and audits the
//! result. `generate-adult` writes the synthetic Adult benchmark table.
//! `serve` runs the `wcbk-serve` HTTP audit service (one-shot `/audit`,
//! `/search`, `/batch` plus the dataset-handle `/tables` resources, and
//! `/stats`, `/healthz`, `/shutdown`) on one shared engine until a graceful
//! shutdown is requested; `--engine-cache-cap`/`--engine-budget`/
//! `--session-budget` bound its memory under long-lived diverse traffic,
//! and `--data-dir DIR` attaches the durable catalog: registrations and
//! releases are WAL-persisted before they are acknowledged, and a
//! restarted server resumes serving every acknowledged handle with
//! bit-identical answers.
//! `table` drives the handle resources of a **running** server: `add`
//! registers a CSV once (idempotent content fingerprint), `audit`/`search`
//! re-audit by handle without re-uploading, `release`/`composition` run the
//! sequential-release monitor, `history` prints the recorded release trail,
//! `info`/`rm` inspect and drop. Audit and search verdicts map to exit
//! code 2 exactly like the local verbs.

use std::io::BufReader;
use std::process::ExitCode;

use wcbk::anonymize::anatomize;
use wcbk::core::{is_ck_safe, max_disclosure, negation_max_disclosure, Bucketization};
use wcbk::prelude::*;
use wcbk::table::{Attribute, AttributeKind, Schema};

/// What a completed command decided, mapped onto the process exit code:
/// scripts branch on safety without parsing stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Success; for audit/search with `--c`, the table/search was safe.
    Ok,
    /// The audit found the table unsafe, or the search found no safe
    /// generalization — exit code 2 (distinct from errors' 1).
    Unsafe,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Verdict::Ok) => ExitCode::SUCCESS,
        Ok(Verdict::Unsafe) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  wcbk audit <csv> --sensitive COL [--qi COL[,COL...]] [--k N] [--c F] [--model M] [--no-header]
  wcbk search <csv> --sensitive COL --qi COL[,COL...] --c F [--k N] [--model M]
              [--hierarchy COL:W1,W2,...]... [--parallel] [--threads N]
              [--schedule level|steal] [--memo-cap N] [--scan-threads N]
  wcbk anatomize <csv> --sensitive COL --l N [--seed N] [--k N]
  wcbk generate-adult [--rows N] [--seed N] [--out FILE]
  wcbk serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
             [--max-connections N] [--idle-timeout-ms N]
             [--engine-cache-cap N] [--engine-budget N] [--session-budget N]
             [--data-dir DIR] [--log-json] [--slow-request-ms N]
  wcbk table add <csv> --addr HOST:PORT --sensitive COL [--qi COL[,COL...]]
             [--hierarchy COL:W1,W2,...]... [--memo-cap N] [--no-header]
  wcbk table audit <id> --addr HOST:PORT [--k N] [--c F] [--model M]
  wcbk table search <id> --addr HOST:PORT --c F [--k N] [--model M] [--threads N] [--schedule s]
  wcbk table release <id> --addr HOST:PORT --node L1,L2,... [--model M]
  wcbk table composition <id> --addr HOST:PORT [--k N] [--c F] [--model M]
  wcbk table history|info|rm <id> --addr HOST:PORT

adversary models (--model M): conjunction (default), distribution,
minimality, sequential

exit codes: 0 ok/safe, 1 error, 2 unsafe verdict (audit with --c, or a
search that found no safe generalization)";

/// Parsed command-line options (flat; validated per subcommand).
#[derive(Debug, Default, Clone, PartialEq)]
struct Options {
    positional: Vec<String>,
    sensitive: Option<String>,
    qi: Vec<String>,
    /// `--hierarchy COL:W1,W2,...` interval-hierarchy specs, repeatable;
    /// unlisted QI columns get suppression hierarchies.
    hierarchies: Vec<(String, Vec<u64>)>,
    k: usize,
    c: Option<f64>,
    l: Option<usize>,
    rows: usize,
    seed: u64,
    out: Option<String>,
    header: bool,
    /// Worker threads for the lattice search: `None` = sequential,
    /// `Some(0)` = all cores, `Some(n)` = exactly `n`.
    threads: Option<usize>,
    /// Parallel schedule for the lattice search.
    schedule: Schedule,
    /// Adversary model for audit/search/composition (`--model`; the
    /// paper's conjunction language by default).
    model: ModelId,
    /// Worker threads for the evaluator's one bottom scan: `None` = all
    /// cores (the scan is bit-neutral, so this only affects throughput).
    scan_threads: Option<usize>,
    /// Group budget for the roll-up evaluator's memo (`None` = unbounded).
    memo_cap: Option<usize>,
    /// `serve` / `table`: listen address / server address.
    addr: Option<String>,
    /// `serve`: worker thread count (`None`/0 = all cores).
    workers: Option<usize>,
    /// `serve`: queued-connection bound before 503s.
    queue_depth: Option<usize>,
    /// `serve`: evented connection cap (`0`/absent = classic worker-lease
    /// admission; `N` = up to N concurrent connections, 503 past that).
    max_connections: Option<usize>,
    /// `serve`: idle keep-alive reap deadline in milliseconds (evented
    /// mode; `0` = never reap idle connections).
    idle_timeout_ms: Option<u64>,
    /// `serve`: per-engine MINIMIZE1 cache budget (groups).
    engine_cache_cap: Option<u64>,
    /// `serve`: total engine-registry budget (groups across engines).
    engine_budget: Option<u64>,
    /// `serve`: session-store budget (Σ bottom groups across handles).
    session_budget: Option<u64>,
    /// `serve`: durable catalog directory (crash-safe handles).
    data_dir: Option<String>,
    /// `serve`: emit one JSON access-log line per request to stdout.
    log_json: bool,
    /// `serve`: always log requests at or past this many milliseconds.
    slow_request_ms: Option<u64>,
    /// `table release`: the lattice node to record (one level per qi).
    node: Option<Vec<u64>>,
}

/// Hand-rolled flag parser (the sanctioned dependency set has no CLI crate).
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        k: 3,
        rows: 45_222,
        seed: 20_070_419,
        header: true,
        ..Default::default()
    };
    let mut it = args.iter().peekable();
    let need_value =
        |name: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| match it.next() {
            Some(v) if !v.starts_with("--") => Ok(v.clone()),
            _ => Err(format!("flag {name} needs a value")),
        };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sensitive" => opts.sensitive = Some(need_value("--sensitive", &mut it)?),
            "--qi" => {
                let v = need_value("--qi", &mut it)?;
                opts.qi = v.split(',').map(|s| s.trim().to_owned()).collect();
            }
            "--hierarchy" => {
                let v = need_value("--hierarchy", &mut it)?;
                let (col, widths) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--hierarchy wants COL:W1,W2,..., got {v:?}"))?;
                let widths = widths
                    .split(',')
                    .map(|w| w.trim().parse::<u64>())
                    .collect::<Result<Vec<u64>, _>>()
                    .map_err(|e| format!("--hierarchy {col}: {e}"))?;
                let col = col.trim().to_owned();
                if opts.hierarchies.iter().any(|(name, _)| *name == col) {
                    return Err(format!("--hierarchy {col}: given twice"));
                }
                opts.hierarchies.push((col, widths));
            }
            "--k" => {
                opts.k = need_value("--k", &mut it)?
                    .parse()
                    .map_err(|e| format!("--k: {e}"))?
            }
            "--c" => {
                opts.c = Some(
                    need_value("--c", &mut it)?
                        .parse()
                        .map_err(|e| format!("--c: {e}"))?,
                )
            }
            "--l" => {
                opts.l = Some(
                    need_value("--l", &mut it)?
                        .parse()
                        .map_err(|e| format!("--l: {e}"))?,
                )
            }
            "--rows" => {
                opts.rows = need_value("--rows", &mut it)?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--seed" => {
                opts.seed = need_value("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => opts.out = Some(need_value("--out", &mut it)?),
            "--no-header" => opts.header = false,
            "--parallel" => opts.threads = Some(0),
            "--threads" => {
                opts.threads = Some(
                    need_value("--threads", &mut it)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--schedule" => {
                opts.schedule = need_value("--schedule", &mut it)?
                    .parse()
                    .map_err(|e| format!("--schedule: {e}"))?
            }
            "--model" => {
                opts.model = need_value("--model", &mut it)?
                    .parse()
                    .map_err(|e| format!("--model: {e}"))?
            }
            "--scan-threads" => {
                opts.scan_threads = Some(
                    need_value("--scan-threads", &mut it)?
                        .parse()
                        .map_err(|e| format!("--scan-threads: {e}"))?,
                )
            }
            "--memo-cap" => {
                opts.memo_cap = Some(
                    need_value("--memo-cap", &mut it)?
                        .parse()
                        .map_err(|e| format!("--memo-cap: {e}"))?,
                )
            }
            "--addr" => opts.addr = Some(need_value("--addr", &mut it)?),
            "--workers" => {
                opts.workers = Some(
                    need_value("--workers", &mut it)?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--queue-depth" => {
                opts.queue_depth = Some(
                    need_value("--queue-depth", &mut it)?
                        .parse()
                        .map_err(|e| format!("--queue-depth: {e}"))?,
                )
            }
            "--max-connections" => {
                opts.max_connections = Some(
                    need_value("--max-connections", &mut it)?
                        .parse()
                        .map_err(|e| format!("--max-connections: {e}"))?,
                )
            }
            "--idle-timeout-ms" => {
                opts.idle_timeout_ms = Some(
                    need_value("--idle-timeout-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-ms: {e}"))?,
                )
            }
            "--engine-cache-cap" => {
                opts.engine_cache_cap = Some(
                    need_value("--engine-cache-cap", &mut it)?
                        .parse()
                        .map_err(|e| format!("--engine-cache-cap: {e}"))?,
                )
            }
            "--engine-budget" => {
                opts.engine_budget = Some(
                    need_value("--engine-budget", &mut it)?
                        .parse()
                        .map_err(|e| format!("--engine-budget: {e}"))?,
                )
            }
            "--session-budget" => {
                opts.session_budget = Some(
                    need_value("--session-budget", &mut it)?
                        .parse()
                        .map_err(|e| format!("--session-budget: {e}"))?,
                )
            }
            "--data-dir" => opts.data_dir = Some(need_value("--data-dir", &mut it)?),
            "--log-json" => opts.log_json = true,
            "--slow-request-ms" => {
                opts.slow_request_ms = Some(
                    need_value("--slow-request-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("--slow-request-ms: {e}"))?,
                )
            }
            "--node" => {
                let v = need_value("--node", &mut it)?;
                opts.node = Some(
                    v.split(',')
                        .map(|l| l.trim().parse::<u64>())
                        .collect::<Result<Vec<u64>, _>>()
                        .map_err(|e| format!("--node: {e}"))?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => opts.positional.push(arg.clone()),
        }
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<Verdict, Box<dyn std::error::Error>> {
    let opts = parse_args(args)?;
    match opts.positional.first().map(String::as_str) {
        Some("audit") => audit(&opts),
        Some("search") => search_cmd(&opts),
        Some("anatomize") => anatomize_cmd(&opts),
        Some("generate-adult") => generate_adult(&opts),
        Some("serve") => serve_cmd(&opts),
        Some("table") => table_cmd(&opts),
        Some(other) => Err(format!("unknown command {other:?}").into()),
        None => Err("missing command".into()),
    }
}

/// Loads a CSV, inferring schema roles from the flags: the `--sensitive`
/// column is sensitive, `--qi` columns are quasi-identifiers, everything
/// else insensitive.
fn load(opts: &Options) -> Result<Table, Box<dyn std::error::Error>> {
    let path = opts
        .positional
        .get(1)
        .ok_or("missing <csv> path argument")?;
    let sensitive = opts
        .sensitive
        .as_deref()
        .ok_or("--sensitive COL is required")?;
    let file = std::fs::File::open(path)?;
    let mut reader = wcbk::table::csv::CsvReader::new(BufReader::new(file));

    // Read the header (or synthesize col0..colN names).
    let first = reader.next_record()?.ok_or("empty CSV file")?;
    let names: Vec<String> = if opts.header {
        first.iter().map(|s| s.trim().to_owned()).collect()
    } else {
        (0..first.len()).map(|i| format!("col{i}")).collect()
    };
    let attributes: Vec<Attribute> = names
        .iter()
        .map(|n| {
            let kind = if n == sensitive {
                AttributeKind::Sensitive
            } else if opts.qi.contains(n) {
                AttributeKind::QuasiIdentifier
            } else {
                AttributeKind::Insensitive
            };
            Attribute::new(n.clone(), kind)
        })
        .collect();
    let schema = Schema::new(attributes)?;

    let mut builder = TableBuilder::new(schema);
    if !opts.header {
        let trimmed: Vec<&str> = first.iter().map(|s| s.trim()).collect();
        builder.push_row(&trimmed)?;
    }
    while let Some(rec) = reader.next_record()? {
        let trimmed: Vec<&str> = rec.iter().map(|s| s.trim()).collect();
        builder.push_row(&trimmed)?;
    }
    Ok(builder.build())
}

/// Prints the disclosure report; returns the safety verdict when a `--c`
/// threshold was given (`None` otherwise).
fn report(
    b: &Bucketization,
    k_max: usize,
    c: Option<f64>,
) -> Result<Option<bool>, Box<dyn std::error::Error>> {
    println!(
        "buckets: {}   tuples: {}   sensitive domain: {}",
        b.n_buckets(),
        b.n_tuples(),
        b.domain_size()
    );
    println!("\n  k   implications   negated-atoms");
    for k in 0..=k_max {
        let imp = max_disclosure(b, k)?;
        let neg = negation_max_disclosure(b, k)?;
        println!("{k:>3}   {:>12.6}   {:>13.6}", imp.value, neg.value);
    }
    // The engine-backed pass at k_max: same value, but exercises and
    // reports the shared MINIMIZE1 cache.
    let engine = DisclosureEngine::new(k_max);
    let worst = engine.max_disclosure(b)?;
    println!("\nworst-case attacker at k={k_max}:");
    println!("  predicts  {}", worst.witness.consequent);
    println!("  knowing   {}", worst.witness.knowledge());
    let mut verdict = None;
    if let Some(c) = c {
        let safe = is_ck_safe(b, c, k_max)?;
        println!(
            "\n({c},{k_max})-safety: {}",
            if safe { "SAFE" } else { "NOT SAFE" }
        );
        verdict = Some(safe);
    }
    print_cache_stats(engine.stats());
    Ok(verdict)
}

fn print_cache_stats(stats: CacheStats) {
    println!(
        "\nengine cache: {} hits / {} misses / {} entries ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.entries,
        100.0 * stats.hit_rate()
    );
}

fn audit(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let table = load(opts)?;
    let qi_cols: Vec<usize> = opts
        .qi
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<_, _>>()?;
    let b = if qi_cols.is_empty() {
        Bucketization::from_grouping(&table, |_| 0u8)?
    } else {
        Bucketization::from_grouping(&table, |t| {
            qi_cols
                .iter()
                .map(|&col| table.column(col).code(t.index()))
                .collect::<Vec<u32>>()
        })?
    };
    println!("== wcbk audit ==");
    if opts.model != ModelId::Conjunction {
        return model_audit(&b, opts);
    }
    let verdict = report(&b, opts.k, opts.c)?;
    Ok(match verdict {
        Some(false) => Verdict::Unsafe,
        _ => Verdict::Ok,
    })
}

/// Audits under a non-conjunction adversary model: the model's worst-case
/// bound at `--k`, its witness, and a verdict when `--c` was given.
fn model_audit(b: &Bucketization, opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let set = HistogramSet::from_bucketization(b);
    let model = opts
        .model
        .resolve(std::sync::Arc::new(DisclosureEngine::new(opts.k)));
    let value = model.max_disclosure(&set)?;
    let witness = model.witness(&set)?;
    println!(
        "buckets: {}   tuples: {}   sensitive domain: {}",
        b.n_buckets(),
        b.n_tuples(),
        b.domain_size()
    );
    println!("\nadversary model: {} (k = {})", model.name(), opts.k);
    println!("max disclosure: {value:.6}");
    println!("  predicts  {}", witness.predicts);
    for line in &witness.knowing {
        println!("  knowing   {line}");
    }
    let mut verdict = Verdict::Ok;
    if let Some(c) = opts.c {
        let safe = value < c;
        println!(
            "\n({c},{})-safety under {}: {}",
            opts.k,
            model.name(),
            if safe { "SAFE" } else { "NOT SAFE" }
        );
        if !safe {
            verdict = Verdict::Unsafe;
        }
    }
    Ok(verdict)
}

/// `wcbk search`: minimal (c,k)-safe generalizations over suppression
/// hierarchies on the quasi-identifier columns, sequential or parallel.
fn search_cmd(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let table = load(opts)?;
    let c = opts.c.ok_or("--c F is required for search")?;
    if opts.qi.is_empty() {
        return Err("--qi COL[,COL...] is required for search".into());
    }
    for (col, _) in &opts.hierarchies {
        if !opts.qi.contains(col) {
            return Err(format!("--hierarchy {col}: not a --qi column").into());
        }
    }
    let dims = opts
        .qi
        .iter()
        .map(|n| {
            let col = table.schema().index_of(n)?;
            let dict = table.column(col).dictionary();
            let hierarchy = match opts.hierarchies.iter().find(|(name, _)| name == n) {
                Some((_, widths)) => Hierarchy::intervals(n, dict, widths)?,
                None => Hierarchy::suppression(n, dict),
            };
            Ok((col, hierarchy))
        })
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let lattice = GeneralizationLattice::new(dims)?;

    // Register → run → drop over the dataset-handle API: the session owns
    // the one-scan evaluator and the engine registry, and its search is
    // bit-identical to `find_minimal_safe_with` (pinned by the
    // session-equivalence tests).
    let session = DatasetSession::with_options(
        table,
        lattice,
        SessionOptions {
            memo_capacity: opts.memo_cap,
            engines: None,
            scan_threads: opts.scan_threads.unwrap_or(0),
        },
    )?;
    // The conjunction default keeps the classic criterion; any other
    // `--model` searches through the plugin criterion (same monotone
    // pruning, the model's bound).
    let engine = session.engine(opts.k);
    let criterion: Box<dyn PrivacyCriterion> = if opts.model == ModelId::Conjunction {
        Box::new(CkSafetyCriterion::with_engine(c, engine.clone())?)
    } else {
        Box::new(ModelSafetyCriterion::new(
            c,
            opts.model.resolve(engine.clone()),
        )?)
    };
    // The session search resolves 0 → all cores and degenerates to the
    // sequential search at 1 thread, so dispatch is unconditional.
    let config = SearchConfig {
        threads: opts.threads.unwrap_or(1),
        schedule: opts.schedule,
        memo_capacity: opts.memo_cap,
        scan_threads: opts.scan_threads.unwrap_or(0),
        model: opts.model,
    };
    let effective = config.effective_threads();
    let started = std::time::Instant::now();
    let outcome = session.search(&criterion, &config)?.outcome;
    let elapsed = started.elapsed();
    println!(
        "== wcbk search ({} over {} lattice nodes) ==",
        criterion.name(),
        session.lattice().n_nodes()
    );
    let schedule = match (effective, opts.schedule) {
        (1, _) => "sequential",
        (_, Schedule::LevelSync) => "level-sync",
        (_, Schedule::WorkStealing) => "work-stealing",
    };
    println!(
        "threads: {effective} ({schedule})   evaluated: {}   satisfied: {}   elapsed: {elapsed:.2?}",
        outcome.evaluated, outcome.satisfied
    );
    let verdict = if outcome.minimal_nodes.is_empty() {
        println!("no safe generalization exists (even full suppression fails)");
        Verdict::Unsafe
    } else {
        println!("minimal safe nodes (levels over {:?}):", opts.qi);
        for node in &outcome.minimal_nodes {
            println!("  {node}");
        }
        Verdict::Ok
    };
    print_cache_stats(engine.stats());
    Ok(verdict)
}

fn anatomize_cmd(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let table = load(opts)?;
    let l = opts.l.ok_or("--l N is required for anatomize")?;
    let outcome = anatomize(&table, l, opts.seed)?;
    println!("== wcbk anatomize (l = {l}) ==");
    println!("residue tuples absorbed: {}", outcome.residue);
    // Anatomize publishes regardless of the verdict; the safety line is
    // informational, so (unlike audit/search) it does not set exit code 2.
    report(&outcome.bucketization, opts.k, opts.c)?;
    Ok(Verdict::Ok)
}

fn generate_adult(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let table = wcbk::datagen::adult::synthetic_adult(wcbk::datagen::adult::AdultConfig {
        n_rows: opts.rows,
        seed: opts.seed,
    });
    match &opts.out {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            wcbk::table::csv::write_table(file, &table)?;
            eprintln!("wrote {} rows to {path}", table.n_rows());
        }
        None => {
            let stdout = std::io::stdout();
            wcbk::table::csv::write_table(stdout.lock(), &table)?;
        }
    }
    Ok(Verdict::Ok)
}

/// `wcbk serve`: run the HTTP audit service until graceful shutdown
/// (`POST /shutdown`, or the process being signalled away).
fn serve_cmd(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    let config = wcbk::serve::ServerConfig {
        addr: opts
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned()),
        workers: opts.workers.unwrap_or(0),
        queue_depth: opts.queue_depth.unwrap_or(64),
        max_connections: opts.max_connections.unwrap_or(0),
        idle_timeout: match opts.idle_timeout_ms {
            None => wcbk::serve::ServerConfig::default().idle_timeout,
            Some(0) => None,
            Some(ms) => Some(std::time::Duration::from_millis(ms)),
        },
        limits: ServiceLimits {
            engine_cache_cap: opts.engine_cache_cap,
            engine_budget: opts.engine_budget,
            session_budget: opts.session_budget,
        },
        data_dir: opts.data_dir.clone().map(std::path::PathBuf::from),
        log_json: opts.log_json,
        slow_request_ms: opts.slow_request_ms,
        ..wcbk::serve::ServerConfig::default()
    };
    let server = wcbk::serve::Server::bind(&config)?;
    if let Some(dir) = &config.data_dir {
        eprintln!("wcbk serve: durable catalog at {}", dir.display());
    }
    eprintln!(
        "wcbk serve: listening on http://{} (endpoints: /tables /tables/{{id}}/audit|search|batch|release|composition|history /audit /search /batch /stats /metrics /healthz /shutdown)",
        server.local_addr()
    );
    server.run()?;
    eprintln!("wcbk serve: drained and shut down");
    Ok(Verdict::Ok)
}

/// `wcbk table <add|audit|search|release|composition|history|info|rm>`:
/// drive the dataset-handle resources of a **running** server.
fn table_cmd(opts: &Options) -> Result<Verdict, Box<dyn std::error::Error>> {
    use wcbk::serve::http::client::Client;
    use wcbk::serve::Json;

    let action = opts
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("table needs an action: add|audit|search|release|composition|history|info|rm")?;
    let addr = opts.addr.as_deref().ok_or("--addr HOST:PORT is required")?;
    let mut client = Client::connect(addr, Some(std::time::Duration::from_secs(120)))?;

    let response = match action {
        "add" => {
            let path = opts.positional.get(2).ok_or("table add needs <csv>")?;
            let sensitive = opts
                .sensitive
                .as_deref()
                .ok_or("--sensitive COL is required")?;
            let csv = std::fs::read_to_string(path)?;
            let csv = if opts.header {
                csv
            } else {
                // Synthesize col0..colN names, mirroring `load`.
                let cols = csv
                    .lines()
                    .next()
                    .ok_or("empty CSV file")?
                    .split(',')
                    .count();
                let header: Vec<String> = (0..cols).map(|i| format!("col{i}")).collect();
                format!("{}\n{csv}", header.join(","))
            };
            let mut body = vec![
                ("csv".to_owned(), Json::from(csv.as_str())),
                ("sensitive".to_owned(), sensitive.into()),
                (
                    "qi".to_owned(),
                    Json::Array(opts.qi.iter().map(|q| q.as_str().into()).collect()),
                ),
            ];
            if !opts.hierarchies.is_empty() {
                body.push((
                    "hierarchy".to_owned(),
                    Json::Object(
                        opts.hierarchies
                            .iter()
                            .map(|(col, widths)| {
                                (
                                    col.clone(),
                                    Json::Array(widths.iter().map(|&w| w.into()).collect()),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            if let Some(cap) = opts.memo_cap {
                body.push(("memo_cap".to_owned(), cap.into()));
            }
            client.post("/tables", &Json::Object(body).to_string())?
        }
        "audit" | "search" | "composition" => {
            let id = opts.positional.get(2).ok_or("table needs <id>")?;
            let mut body: Vec<(String, Json)> = vec![("k".to_owned(), opts.k.into())];
            if let Some(c) = opts.c {
                body.push(("c".to_owned(), c.into()));
            }
            if opts.model != ModelId::Conjunction {
                body.push(("model".to_owned(), opts.model.name().into()));
            }
            if action == "search" {
                if let Some(threads) = opts.threads {
                    body.push(("threads".to_owned(), threads.into()));
                }
                body.push((
                    "schedule".to_owned(),
                    match opts.schedule {
                        Schedule::LevelSync => "level".into(),
                        Schedule::WorkStealing => "steal".into(),
                    },
                ));
            }
            client.post(
                &format!("/tables/{id}/{action}"),
                &Json::Object(body).to_string(),
            )?
        }
        "release" => {
            let id = opts.positional.get(2).ok_or("table release needs <id>")?;
            let node = opts
                .node
                .as_ref()
                .ok_or("table release needs --node L1,L2,...")?;
            let mut fields = vec![(
                "node",
                Json::Array(node.iter().map(|&l| l.into()).collect()),
            )];
            if opts.model != ModelId::Conjunction {
                fields.push(("model", opts.model.name().into()));
            }
            let body = Json::object(fields);
            client.post(&format!("/tables/{id}/release"), &body.to_string())?
        }
        "history" => {
            let id = opts.positional.get(2).ok_or("table history needs <id>")?;
            client.get(&format!("/tables/{id}/history"))?
        }
        "info" => {
            let id = opts.positional.get(2).ok_or("table info needs <id>")?;
            client.get(&format!("/tables/{id}"))?
        }
        "rm" => {
            let id = opts.positional.get(2).ok_or("table rm needs <id>")?;
            client.send_raw(
                format!("DELETE /tables/{id} HTTP/1.1\r\nHost: wcbk\r\n\r\n").as_bytes(),
            )?;
            client.read_response()?
        }
        other => return Err(format!("unknown table action {other:?}").into()),
    };

    println!("{}", response.body.trim_end());
    if response.status != 200 {
        return Err(format!("server answered HTTP {}", response.status).into());
    }
    // Audit/search/composition verdicts drive the exit code like the local
    // verbs: a "safe": false in the response exits 2.
    let body = Json::parse(&response.body)?;
    Ok(match body.get("safe").map(|s| s.as_bool()) {
        Some(Some(false)) => Verdict::Unsafe,
        _ => Verdict::Ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parses_audit_flags() {
        let o = parse_args(&s(&[
            "audit",
            "data.csv",
            "--sensitive",
            "Disease",
            "--qi",
            "Zip, Age",
            "--k",
            "5",
            "--c",
            "0.7",
        ]))
        .unwrap();
        assert_eq!(o.positional, vec!["audit", "data.csv"]);
        assert_eq!(o.sensitive.as_deref(), Some("Disease"));
        assert_eq!(o.qi, vec!["Zip", "Age"]);
        assert_eq!(o.k, 5);
        assert_eq!(o.c, Some(0.7));
        assert!(o.header);
    }

    #[test]
    fn defaults_applied() {
        let o = parse_args(&s(&["generate-adult"])).unwrap();
        assert_eq!(o.rows, 45_222);
        assert_eq!(o.seed, 20_070_419);
        assert_eq!(o.k, 3);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse_args(&s(&["audit", "--frobnicate"])).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse_args(&s(&["audit", "--k"])).is_err());
        // A following flag is not a value.
        assert!(parse_args(&s(&["audit", "--sensitive", "--qi", "Zip"])).is_err());
    }

    #[test]
    fn no_header_flag() {
        let o = parse_args(&s(&["audit", "x.csv", "--no-header"])).unwrap();
        assert!(!o.header);
    }

    #[test]
    fn parallel_and_threads_flags() {
        let o = parse_args(&s(&["search", "x.csv", "--parallel"])).unwrap();
        assert_eq!(o.threads, Some(0));
        let o = parse_args(&s(&["search", "x.csv", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        let o = parse_args(&s(&["search", "x.csv"])).unwrap();
        assert_eq!(o.threads, None);
        assert!(parse_args(&s(&["search", "--threads", "lots"])).is_err());
    }

    #[test]
    fn schedule_and_memo_cap_flags() {
        let o = parse_args(&s(&["search", "x.csv"])).unwrap();
        assert_eq!(o.schedule, Schedule::WorkStealing);
        assert_eq!(o.memo_cap, None);
        let o = parse_args(&s(&["search", "x.csv", "--schedule", "level"])).unwrap();
        assert_eq!(o.schedule, Schedule::LevelSync);
        let o = parse_args(&s(&["search", "x.csv", "--schedule", "steal"])).unwrap();
        assert_eq!(o.schedule, Schedule::WorkStealing);
        let o = parse_args(&s(&["search", "x.csv", "--memo-cap", "32"])).unwrap();
        assert_eq!(o.memo_cap, Some(32));
        assert!(parse_args(&s(&["search", "--schedule", "chaotic"])).is_err());
        assert!(parse_args(&s(&["search", "--memo-cap", "many"])).is_err());
    }

    #[test]
    fn model_flag_parses() {
        let o = parse_args(&s(&["audit", "x.csv"])).unwrap();
        assert_eq!(o.model, ModelId::Conjunction);
        for (name, id) in [
            ("conjunction", ModelId::Conjunction),
            ("distribution", ModelId::Distribution),
            ("minimality", ModelId::Minimality),
            ("sequential", ModelId::Sequential),
        ] {
            let o = parse_args(&s(&["audit", "x.csv", "--model", name])).unwrap();
            assert_eq!(o.model, id);
        }
        assert!(parse_args(&s(&["audit", "--model", "bogus"])).is_err());
        assert!(parse_args(&s(&["audit", "--model"])).is_err());
    }

    /// `--model` drives real audits and searches: a non-conjunction bound
    /// maps onto the same exit-code contract as the classic path.
    #[test]
    fn model_audit_and_search_end_to_end() {
        let dir = std::env::temp_dir().join("wcbk_cli_model");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();

        // Exact-QI singleton buckets: the distribution adversary pins every
        // tuple's value → NOT SAFE at c = 0.5.
        let unsafe_audit = s(&[
            "audit",
            path,
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--k",
            "1",
            "--c",
            "0.5",
            "--model",
            "distribution",
        ]);
        assert_eq!(run(&unsafe_audit).unwrap(), Verdict::Unsafe);
        // One 50/50 bucket under the minimality attacker at k=0 → SAFE.
        let safe_audit = s(&[
            "audit",
            path,
            "--sensitive",
            "Disease",
            "--k",
            "0",
            "--c",
            "0.9",
            "--model",
            "minimality",
        ]);
        assert_eq!(run(&safe_audit).unwrap(), Verdict::Ok);
        // Searching under the model criterion still finds safe nodes.
        let search = s(&[
            "search",
            path,
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--c",
            "0.9",
            "--k",
            "0",
            "--model",
            "minimality",
        ]);
        assert_eq!(run(&search).unwrap(), Verdict::Ok);
    }

    #[test]
    fn search_with_schedule_end_to_end() {
        let dir = std::env::temp_dir().join("wcbk_cli_schedule");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n",
        )
        .unwrap();
        for schedule in ["level", "steal"] {
            let args = s(&[
                "search",
                path.to_str().unwrap(),
                "--sensitive",
                "Disease",
                "--qi",
                "Age,Sex",
                "--c",
                "0.9",
                "--k",
                "1",
                "--threads",
                "2",
                "--schedule",
                schedule,
                "--memo-cap",
                "2",
            ]);
            run(&args).unwrap_or_else(|e| panic!("--schedule {schedule}: {e}"));
        }
    }

    #[test]
    fn hierarchy_flag_parses_and_repeats() {
        let o = parse_args(&s(&[
            "search",
            "x.csv",
            "--hierarchy",
            "Age:5,10,20",
            "--hierarchy",
            "Zip: 100",
        ]))
        .unwrap();
        assert_eq!(
            o.hierarchies,
            vec![
                ("Age".to_owned(), vec![5, 10, 20]),
                ("Zip".to_owned(), vec![100]),
            ]
        );
        assert!(parse_args(&s(&["search", "--hierarchy", "Age"])).is_err());
        assert!(parse_args(&s(&["search", "--hierarchy", "Age:five"])).is_err());
        assert!(parse_args(&s(&["search", "--hierarchy", "Age:"])).is_err());
        // The same column twice is ambiguous, not first-wins.
        assert!(parse_args(&s(&[
            "search",
            "--hierarchy",
            "Age:5",
            "--hierarchy",
            "Age:10,20"
        ]))
        .is_err());
    }

    #[test]
    fn search_with_interval_hierarchy_end_to_end() {
        // A tiny CSV with a numeric Age column: the interval hierarchy must
        // produce a deeper lattice than plain suppression and still search.
        let dir = std::env::temp_dir().join("wcbk_cli_hierarchy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n",
        )
        .unwrap();
        let args = s(&[
            "search",
            path.to_str().unwrap(),
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--c",
            "0.9",
            "--k",
            "1",
            "--hierarchy",
            "Age:4,8",
        ]);
        run(&args).unwrap();
        // A hierarchy spec naming a non-QI column is rejected.
        let bad = s(&[
            "search",
            path.to_str().unwrap(),
            "--sensitive",
            "Disease",
            "--qi",
            "Sex",
            "--c",
            "0.9",
            "--hierarchy",
            "Age:4,8",
        ]);
        assert!(run(&bad).is_err());
    }

    #[test]
    fn run_rejects_unknown_command() {
        assert!(run(&s(&["transmogrify"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let o = parse_args(&s(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-depth",
            "8",
            "--max-connections",
            "256",
            "--idle-timeout-ms",
            "30000",
        ]))
        .unwrap();
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.workers, Some(2));
        assert_eq!(o.queue_depth, Some(8));
        assert_eq!(o.max_connections, Some(256));
        assert_eq!(o.idle_timeout_ms, Some(30_000));
        assert!(parse_args(&s(&["serve", "--workers", "many"])).is_err());
        assert!(parse_args(&s(&["serve", "--queue-depth"])).is_err());
        assert!(parse_args(&s(&["serve", "--max-connections", "lots"])).is_err());
        assert!(parse_args(&s(&["serve", "--idle-timeout-ms"])).is_err());
    }

    #[test]
    fn serve_observability_flags_parse() {
        let o = parse_args(&s(&["serve", "--log-json", "--slow-request-ms", "250"])).unwrap();
        assert!(o.log_json);
        assert_eq!(o.slow_request_ms, Some(250));
        let o = parse_args(&s(&["serve"])).unwrap();
        assert!(!o.log_json);
        assert_eq!(o.slow_request_ms, None);
        assert!(parse_args(&s(&["serve", "--slow-request-ms"])).is_err());
        assert!(parse_args(&s(&["serve", "--slow-request-ms", "fast"])).is_err());
    }

    #[test]
    fn serve_budget_and_table_flags_parse() {
        let o = parse_args(&s(&[
            "serve",
            "--engine-cache-cap",
            "4096",
            "--engine-budget",
            "65536",
            "--session-budget",
            "100000",
        ]))
        .unwrap();
        assert_eq!(o.engine_cache_cap, Some(4096));
        assert_eq!(o.engine_budget, Some(65536));
        assert_eq!(o.session_budget, Some(100_000));
        assert!(parse_args(&s(&["serve", "--engine-budget", "lots"])).is_err());

        let o = parse_args(&s(&[
            "table",
            "release",
            "abc",
            "--addr",
            "127.0.0.1:1",
            "--node",
            "1, 2,0",
        ]))
        .unwrap();
        assert_eq!(o.positional, vec!["table", "release", "abc"]);
        assert_eq!(o.node, Some(vec![1, 2, 0]));
        assert!(parse_args(&s(&["table", "release", "x", "--node", "one"])).is_err());
    }

    /// End-to-end `wcbk table` against an in-process server: add is
    /// idempotent, audit/search/release/composition run by handle, rm
    /// makes the handle 404.
    #[test]
    fn table_verbs_drive_a_live_server() {
        let server = wcbk::serve::Server::bind(&wcbk::serve::ServerConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let join = std::thread::spawn(move || server.run());

        let dir = std::env::temp_dir().join("wcbk_cli_table");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();

        let add = |_label: &str| {
            s(&[
                "table",
                "add",
                path,
                "--addr",
                &addr,
                "--sensitive",
                "Disease",
                "--qi",
                "Age,Sex",
            ])
        };
        assert_eq!(run(&add("first")).unwrap(), Verdict::Ok);
        assert_eq!(run(&add("again")).unwrap(), Verdict::Ok);

        // The handle is the content fingerprint: recompute it like the
        // server does to address the audit.
        let table = {
            let o = parse_args(&add("local")).unwrap();
            let mut o2 = o.clone();
            o2.positional = vec!["audit".into(), path.into()];
            load(&o2).unwrap()
        };
        let dims: Vec<(usize, Hierarchy)> = ["Age", "Sex"]
            .iter()
            .map(|n| {
                let col = table.schema().index_of(n).unwrap();
                (
                    col,
                    Hierarchy::suppression(*n, table.column(col).dictionary()),
                )
            })
            .collect();
        let lattice = GeneralizationLattice::new(dims).unwrap();
        let id = format!(
            "{:016x}",
            wcbk::prelude::dataset_fingerprint(&table, &lattice)
        );

        // Safe audit at k=0, c=0.9 (one big 50/50 bucket is impossible here:
        // exact QI gives singletons, so this is NOT safe → exit 2).
        let unsafe_audit = s(&[
            "table", "audit", &id, "--addr", &addr, "--k", "1", "--c", "0.5",
        ]);
        assert_eq!(run(&unsafe_audit).unwrap(), Verdict::Unsafe);

        // Search at k=0, c=0.9 finds safe generalizations → exit ok.
        let search = s(&[
            "table",
            "search",
            &id,
            "--addr",
            &addr,
            "--k",
            "0",
            "--c",
            "0.9",
            "--threads",
            "2",
        ]);
        assert_eq!(run(&search).unwrap(), Verdict::Ok);

        // Release the top node, then audit the composition.
        let release = s(&["table", "release", &id, "--addr", &addr, "--node", "1,1"]);
        assert_eq!(run(&release).unwrap(), Verdict::Ok);
        let composition = s(&[
            "table",
            "composition",
            &id,
            "--addr",
            &addr,
            "--k",
            "0",
            "--c",
            "0.9",
        ]);
        assert_eq!(run(&composition).unwrap(), Verdict::Ok);

        // Info works; rm drops; audit afterwards is an HTTP 404 → error.
        assert_eq!(
            run(&s(&["table", "info", &id, "--addr", &addr])).unwrap(),
            Verdict::Ok
        );
        assert_eq!(
            run(&s(&["table", "rm", &id, "--addr", &addr])).unwrap(),
            Verdict::Ok
        );
        assert!(run(&unsafe_audit).is_err());

        // Unknown action and missing --addr are usage errors.
        assert!(run(&s(&["table", "frobnicate", &id, "--addr", &addr])).is_err());
        assert!(run(&s(&["table", "info", &id])).is_err());

        // Shut the server down.
        let mut client = wcbk::serve::http::client::Client::connect(
            &addr,
            Some(std::time::Duration::from_secs(5)),
        )
        .unwrap();
        client.post("/shutdown", "{}").unwrap();
        join.join().unwrap().unwrap();
    }

    /// The distinct exit path: audit/search return `Verdict::Unsafe` (exit
    /// code 2) on unsafe verdicts, `Verdict::Ok` otherwise.
    #[test]
    fn audit_and_search_verdicts_drive_exit_codes() {
        let dir = std::env::temp_dir().join("wcbk_cli_verdict");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "Age,Sex,Disease\n21,M,Flu\n23,F,Flu\n27,M,Cold\n29,F,Cold\n33,M,Flu\n35,F,Cold\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();

        // Exact-QI audit: singleton buckets disclose fully → NOT SAFE.
        let unsafe_audit = s(&[
            "audit",
            path,
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--k",
            "1",
            "--c",
            "0.5",
        ]);
        assert_eq!(run(&unsafe_audit).unwrap(), Verdict::Unsafe);
        // One big bucket at k=0: half Flu, half Cold → SAFE at c = 0.9.
        let safe_audit = s(&[
            "audit",
            path,
            "--sensitive",
            "Disease",
            "--k",
            "0",
            "--c",
            "0.9",
        ]);
        assert_eq!(run(&safe_audit).unwrap(), Verdict::Ok);
        // No --c: nothing to verdict on.
        let no_c = s(&["audit", path, "--sensitive", "Disease", "--k", "1"]);
        assert_eq!(run(&no_c).unwrap(), Verdict::Ok);

        // A satisfiable search succeeds, an unsatisfiable one exits Unsafe.
        // (k = 0: with a two-value sensitive domain, a single implication
        // already forces full disclosure, so k ≥ 1 is never satisfiable.)
        let safe_search = s(&[
            "search",
            path,
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--c",
            "0.9",
            "--k",
            "0",
        ]);
        assert_eq!(run(&safe_search).unwrap(), Verdict::Ok);
        let hopeless_search = s(&[
            "search",
            path,
            "--sensitive",
            "Disease",
            "--qi",
            "Age,Sex",
            "--c",
            "0.4",
            "--k",
            "0",
        ]);
        assert_eq!(run(&hopeless_search).unwrap(), Verdict::Unsafe);
    }
}
