//! Streaming publication with incremental safety monitoring — histogram-only.
//!
//! A publisher maintains a release while the underlying cohort changes (new
//! patient batches arrive, small buckets get merged). Everything the
//! disclosure DP looks at is per-bucket sensitive histograms, so the monitor
//! never materializes a `Bucketization` (tuple membership) at all: the
//! release lives as a [`HistogramSet`], and the incremental engine
//! (Section 3.3.3's memo-reuse remark) composed on top answers "would this
//! edit stay (c,k)-safe?" in `O(k²)` per what-if query instead of re-running
//! the full `O(|B|·k³)` pipeline.
//!
//! Run: `cargo run --release --example incremental_monitor`

use wcbk::core::partial_order::merge_histograms;
use wcbk::datagen::workload::{random_histogram_set, WorkloadConfig};
use wcbk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (c, k) = (0.8, 4);
    println!("monitoring a streaming release against ({c},{k})-safety\n");

    // Initial release: 48 buckets of moderately skewed diagnoses, kept as
    // histograms only — no tuple ids anywhere in this example.
    let initial: HistogramSet = random_histogram_set(WorkloadConfig {
        n_buckets: 48,
        bucket_size: (6, 24),
        n_values: 14,
        skew: 0.9,
        seed: 2007,
    });
    let engine = DisclosureEngine::new(k);
    let mut session = engine.incremental_set(&initial)?;
    println!(
        "initial release: {} buckets, max disclosure {:.4} ({})",
        session.n_buckets(),
        session.value(),
        if session.value() < c {
            "safe"
        } else {
            "UNSAFE"
        },
    );

    // Scenario 1: a new batch arrives as its own bucket. Skewed batches can
    // break safety; the monitor checks before committing.
    println!("\n-- scenario 1: appending incoming batches --");
    for (i, skew) in [(1u64, 0.3), (2, 1.8), (3, 3.5)] {
        let batch = random_histogram_set(WorkloadConfig {
            n_buckets: 1,
            bucket_size: (10, 10),
            n_values: 14,
            skew,
            seed: 9000 + i,
        });
        let hist = batch.histograms()[0].clone();
        let costs = engine.costs(&hist);
        // What-if: session with the batch appended. (The prefix/suffix
        // composition treats an append as replacing the virtual end.)
        let mut probe = engine.incremental_set(&initial)?;
        probe.push(costs.clone());
        let value = probe.value();
        let verdict = if value < c {
            "accept"
        } else {
            "reject (would break safety)"
        };
        println!(
            "  batch {i} (skew {skew:.1}, top value {}/10): disclosure -> {value:.4}  => {verdict}",
            hist.frequency(0)
        );
        if value < c {
            session.push(costs);
        }
    }
    println!(
        "after ingest: {} buckets, max disclosure {:.4}",
        session.n_buckets(),
        session.value()
    );

    // Scenario 2: repairing a risky bucket by merging it with a neighbour —
    // histogram merges compose with the incremental session directly.
    println!("\n-- scenario 2: what-if merges to repair skewed buckets --");
    let current = session.value();
    let mut best: Option<(usize, f64)> = None;
    for i in 0..initial.n_buckets() - 1 {
        let merged = merge_histograms(&initial.histograms()[i], &initial.histograms()[i + 1]);
        let costs = engine.costs(&merged);
        let v = session.what_if_merge_adjacent(i, &costs)?;
        if best.as_ref().is_none_or(|&(_, bv)| v < bv) {
            best = Some((i, v));
        }
    }
    if let Some((i, v)) = best {
        println!(
            "  best single merge: buckets {i}+{} -> disclosure {v:.4} (now {current:.4})",
            i + 1
        );
    }

    // Scenario 3: audit trail. The histogram surface answers the value
    // directly; witness reconstruction (the actual worst-case implications)
    // needs tuple membership, so a publisher wanting one would bucketize —
    // the monitor itself never has to.
    println!("\n-- scenario 3: audit trail --");
    let audited = engine.max_disclosure_value_set(&initial)?;
    println!("  disclosure (full re-audit): {audited:.4}");
    println!(
        "  incremental session agrees:  {:.4}",
        engine.incremental_set(&initial)?.value()
    );
    let (hits, misses) = engine.cache_stats();
    println!("  engine cache:   {hits} hits / {misses} misses across the session");
    Ok(())
}
