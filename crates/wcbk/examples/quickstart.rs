//! Quickstart: publish a table safely.
//!
//! Builds a small patient table, buckets it, measures worst-case disclosure
//! against background knowledge, and checks (c,k)-safety.
//!
//! Run: `cargo run --example quickstart`

use wcbk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The private table: one sensitive attribute (Disease), some
    //    quasi-identifiers an attacker can link externally.
    let schema = Schema::new(vec![
        Attribute::new("Zip", AttributeKind::QuasiIdentifier),
        Attribute::new("Age", AttributeKind::QuasiIdentifier),
        Attribute::new("Disease", AttributeKind::Sensitive),
    ])?;
    let mut builder = TableBuilder::new(schema);
    for row in [
        ["14850", "23", "Flu"],
        ["14850", "25", "Flu"],
        ["14850", "29", "Cancer"],
        ["14853", "31", "Mumps"],
        ["14853", "34", "Flu"],
        ["14853", "38", "Cancer"],
    ] {
        builder.push_row(&row)?;
    }
    let table = builder.build();

    // 2. Bucketize by zip code (Anatomy-style publishing: within a bucket
    //    the sensitive values are randomly permuted).
    let buckets = Bucketization::from_grouping(&table, |t| table.value(t.index(), 0).to_owned())?;
    println!(
        "published {} buckets over {} tuples",
        buckets.n_buckets(),
        buckets.n_tuples()
    );

    // 3. Worst-case disclosure if the attacker knows k basic implications.
    for k in 0..=2 {
        let report = max_disclosure(&buckets, k)?;
        println!(
            "k = {k}: maximum disclosure = {:.4} (worst-case attacker: {})",
            report.value,
            report.witness.knowledge()
        );
    }

    // 4. (c,k)-safety gate before publishing.
    let c = 0.75;
    let k = 1;
    if is_ck_safe(&buckets, c, k)? {
        println!("bucketization is ({c},{k})-safe: ship it");
    } else {
        println!("bucketization is NOT ({c},{k})-safe: coarsen before publishing");
    }

    // 5. Compare with the weaker negated-atom (ℓ-diversity-style) attacker.
    let neg = negation_max_disclosure(&buckets, 1)?;
    println!(
        "negated-atom attacker at k = 1 reaches only {:.4}",
        neg.value
    );
    Ok(())
}
