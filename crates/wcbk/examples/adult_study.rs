//! The paper's Section 4 case study, scaled for a quick run.
//!
//! Generates a synthetic Adult table (the dataset substitution documented in
//! DESIGN.md §5), anonymizes it over the 72-node generalization lattice,
//! reproduces the Figure 5 disclosure curves on the paper's anonymization,
//! and finds the minimal (c,k)-safe publication ranked by utility.
//!
//! Run: `cargo run --release --example adult_study [n_rows]`

use wcbk::anonymize::utility::{average_class_size, discernibility};
use wcbk::anonymize::{anonymize, CkSafetyCriterion, UtilityMetric};
use wcbk::core::negation_max_disclosure;
use wcbk::datagen::adult::{synthetic_adult, AdultConfig};
use wcbk::hierarchy::adult::{adult_lattice, figure5_node};
use wcbk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_rows: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);

    println!("generating synthetic Adult ({n_rows} rows)…");
    let table = synthetic_adult(AdultConfig {
        n_rows,
        ..Default::default()
    });
    println!(
        "  {} tuples, {} occupations (sensitive), QIs: Age, Marital-Status, Race, Gender",
        table.n_rows(),
        table.sensitive_cardinality()
    );

    let lattice = adult_lattice(&table)?;
    println!(
        "  lattice: {} nodes, height {}",
        lattice.n_nodes(),
        lattice.max_height()
    );

    println!("\n== Figure 5 anonymization: Age -> 20-year intervals, rest suppressed ==");
    let b = lattice.bucketize(&table, &figure5_node())?;
    println!(
        "  {} buckets; k=0 disclosure {:.4}",
        b.n_buckets(),
        b.max_frequency_ratio()
    );
    println!("  k   implications  negations");
    for k in (0..=12).step_by(2) {
        let imp = max_disclosure(&b, k)?.value;
        let neg = negation_max_disclosure(&b, k)?.value;
        println!("  {k:>2}  {imp:>12.4}  {neg:>9.4}");
    }

    println!("\n== Minimal (c,k)-safe publication via lattice search ==");
    let (c, k) = (0.75, 3);
    let criterion = CkSafetyCriterion::new(c, k)?;
    match anonymize(&table, &lattice, &criterion, UtilityMetric::Discernibility) {
        Ok(outcome) => {
            let audit = outcome.audit(k)?;
            println!("  criterion:       ({c},{k})-safety");
            println!("  minimal nodes:   {}", outcome.minimal_nodes.len());
            println!("  chosen node:     {} (best discernibility)", outcome.node);
            println!("  buckets:         {}", outcome.bucketization.n_buckets());
            println!(
                "  avg class size:  {:.1}",
                average_class_size(&outcome.bucketization)
            );
            println!(
                "  discernibility:  {}",
                discernibility(&outcome.bucketization)
            );
            println!("  max disclosure:  {:.4} < {c}", audit.value);
            println!("  criterion evals: {}", outcome.evaluated);
            let (hits, misses) = criterion.cache_stats();
            println!("  histogram cache: {hits} hits / {misses} misses");
        }
        Err(e) => println!("  no safe publication: {e}"),
    }
    Ok(())
}
