//! Comparing publication strategies under the worst-case lens.
//!
//! Publishes the same table four ways — full-domain generalization (lattice
//! search), Anatomy, Anatomy + data swapping, and full suppression — and
//! audits each with the (c,k)-safety machinery plus utility metrics. Also
//! demonstrates the future-work extensions: probabilistic background
//! knowledge (Jeffrey conditioning) and cost-based disclosure.
//!
//! Run: `cargo run --release --example sanitizer_comparison`

use wcbk::anonymize::utility::{average_class_size, discernibility};
use wcbk::anonymize::{anonymize, CkSafetyCriterion, UtilityMetric};
use wcbk::core::partial_order::merge_all;
use wcbk::datagen::adult::{synthetic_adult, AdultConfig};
use wcbk::hierarchy::adult::adult_lattice;
use wcbk::prelude::*;
use wcbk::worlds::soft::SoftPosterior;

fn audit_row(name: &str, b: &Bucketization, k: usize) -> Result<(), Box<dyn std::error::Error>> {
    let d = max_disclosure(b, k)?;
    println!(
        "{name:<28} {:>8} {:>12.4} {:>16} {:>10.1}",
        b.n_buckets(),
        d.value,
        discernibility(b),
        average_class_size(b),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3;
    let table = synthetic_adult(AdultConfig {
        n_rows: 6_000,
        ..Default::default()
    });
    println!(
        "table: {} rows, {} occupations; auditing at k = {k}\n",
        table.n_rows(),
        table.sensitive_cardinality()
    );
    println!(
        "{:<28} {:>8} {:>12} {:>16} {:>10}",
        "strategy", "buckets", "disclosure", "discernibility", "avg class"
    );

    // 1. Full-domain generalization chosen by lattice search.
    let lattice = adult_lattice(&table)?;
    let criterion = CkSafetyCriterion::new(0.8, k)?;
    let lattice_pub = anonymize(&table, &lattice, &criterion, UtilityMetric::Discernibility)?;
    audit_row("lattice (0.8,3)-safe", &lattice_pub.bucketization, k)?;

    // 2. Anatomy with l = 4 (if eligible).
    match anatomize(&table, 4, 7) {
        Ok(outcome) => audit_row("anatomy l=4", &outcome.bucketization, k)?,
        Err(e) => println!("anatomy l=4: not applicable ({e})"),
    }

    // 3. Anatomy + 20% data swapping (future-work sanitizer).
    if let Ok(outcome) = anatomize(&table, 4, 7) {
        let swapped = swap_sanitize(&outcome.bucketization, 0.2, 99)?;
        audit_row("anatomy + 20% swap", &swapped.bucketization, k)?;
        println!(
            "{:<28} (swapped values displaced: {} of {})",
            "",
            swapped.displaced,
            table.n_rows()
        );
    }

    // 4. Full suppression (the top of the lattice).
    let all = Bucketization::from_grouping(&table, |_| 0u8)?;
    let top = merge_all(&all)?;
    audit_row("full suppression", &top, k)?;

    // --- future-work extensions on a small excerpt ---
    println!("\n== probabilistic background knowledge (Jeffrey conditioning) ==");
    let hospital = wcbk::table::datasets::hospital_table();
    let buckets =
        Bucketization::from_grouping(&hospital, wcbk::table::datasets::hospital_bucket_of)?;
    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )?;
    let posterior = SoftPosterior::new(&space, 100_000)?;
    let phi = wcbk::logic::parser::parse_knowledge(
        "t[Hannah]=Flu -> t[Charlie]=Flu",
        &wcbk::logic::parser::SymbolTable::from_table(&hospital, "Name")?,
    )?
    .to_formula();
    for confidence in [0.0, 0.5, 0.9, 1.0] {
        let mut p = posterior.clone();
        p.update(&phi, confidence)?;
        let (risk, _) = p.disclosure_risk(&space).expect("non-empty space");
        println!("  attacker believes phi with p={confidence:<4}: disclosure risk {risk:.4}");
    }

    println!("\n== cost-based disclosure (negation language) ==");
    let mut costs = vec![1.0; hospital.sensitive_cardinality()];
    costs[hospital.sensitive_code("Ovarian Cancer").unwrap().index()] = 10.0;
    let costs = CostVector::new(costs)?;
    for k in 0..=2usize {
        let plain = negation_max_disclosure(&buckets, k)?;
        let weighted = cost_negation_max_disclosure(&buckets, k, &costs)?;
        println!(
            "  k={k}: unweighted {:.3} (predicts {}), 10x-ovarian {:.3} (predicts {})",
            plain.value,
            hospital
                .sensitive_column()
                .dictionary()
                .resolve(plain.predicted.0),
            weighted.value,
            hospital
                .sensitive_column()
                .dictionary()
                .resolve(weighted.predicted.0),
        );
    }
    Ok(())
}
