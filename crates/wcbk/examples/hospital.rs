//! The paper's running example, end to end.
//!
//! Walks through Sections 1–3 with the Figure 1 hospital table: identifies
//! the privacy failure of plain bucketization, expresses Alice's background
//! knowledge in the `L^k_basic` language, computes exact probabilities with
//! the random-worlds engine, finds the worst case with the polynomial DP,
//! verifies the witness exactly, and demonstrates Theorem 14 monotonicity
//! and the Theorem 3 completeness construction.
//!
//! Run: `cargo run --example hospital`

use wcbk::core::negation_max_disclosure;
use wcbk::core::partial_order::merge_all;
use wcbk::logic::parser::{parse_knowledge, SymbolTable};
use wcbk::prelude::*;
use wcbk::table::datasets::{hospital_bucket_of, hospital_person, hospital_table};
use wcbk::worlds::completeness::compile_predicate;
use wcbk::worlds::inference::atom_probability_given;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = hospital_table();
    let symbols = SymbolTable::from_table(&table, "Name")?;
    let buckets = Bucketization::from_grouping(&table, hospital_bucket_of)?;
    let space = WorldSpace::new(
        buckets
            .to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )?;

    println!("== Alice attacks Ed (Section 1) ==");
    let ed = hospital_person(&table, "Ed").unwrap();
    let lung = table.sensitive_code("Lung Cancer").unwrap();
    let ed_lung = Atom::new(ed, lung);
    let steps: [(&str, &str); 3] = [
        ("no background knowledge", ""),
        ("Ed had mumps as a child", "!t[Ed]=Mumps"),
        ("… and Ed does not have flu", "!t[Ed]=Mumps ; !t[Ed]=Flu"),
    ];
    for (story, phi) in steps {
        let knowledge = parse_knowledge(phi, &symbols)?;
        let p = atom_probability_given(&space, ed_lung, &knowledge)?.unwrap();
        println!("  {story:<42} Pr(Ed = Lung Cancer) = {p}");
    }

    println!("\n== Alice attacks Charlie through Hannah (Section 1) ==");
    let charlie = hospital_person(&table, "Charlie").unwrap();
    let flu = table.sensitive_code("Flu").unwrap();
    let phi = parse_knowledge("t[Hannah]=Flu -> t[Charlie]=Flu", &symbols)?;
    let p = atom_probability_given(&space, Atom::new(charlie, flu), &phi)?.unwrap();
    println!("  knowing \"if Hannah has flu then Charlie does\": Pr(Charlie = Flu) = {p}");
    println!("  (cross-bucket dependence — invisible to ℓ-diversity)");

    println!("\n== Worst case over the whole language (Section 3) ==");
    for k in 0..=3usize {
        let dp = max_disclosure(&buckets, k)?;
        let neg = negation_max_disclosure(&buckets, k)?;
        // Verify the DP's witness by exact inference.
        let exact = atom_probability_given(&space, dp.witness.consequent, &dp.witness.knowledge())?
            .expect("witness is consistent");
        println!(
            "  k={k}: implications {:.4} (exact witness check: {:.4}), negations {:.4}",
            dp.value,
            exact.to_f64(),
            neg.value
        );
        assert!((dp.value - exact.to_f64()).abs() < 1e-9);
    }

    println!("\n== Coarsening helps (Theorem 14) ==");
    let merged = merge_all(&buckets)?;
    for k in 0..=2usize {
        let fine = max_disclosure(&buckets, k)?.value;
        let coarse = max_disclosure(&merged, k)?.value;
        println!("  k={k}: two buckets {fine:.4}  ->  one bucket {coarse:.4}");
        assert!(coarse <= fine + 1e-12);
    }

    println!("\n== Any predicate is expressible (Theorem 3) ==");
    // "The married couple Charlie and Hannah do not both have the flu."
    let hannah = hospital_person(&table, "Hannah").unwrap();
    let predicate = move |w: &[SValue]| !(w[charlie.index()] == flu && w[hannah.index()] == flu);
    let compiled = compile_predicate(&space, predicate)?;
    println!(
        "  compiled to {} basic implications; conditioning on them:",
        compiled.k()
    );
    let p = atom_probability_given(&space, Atom::new(charlie, flu), &compiled)?.unwrap();
    println!("  Pr(Charlie = Flu | not both have flu) = {p}");

    println!("\n== Publishing gate ==");
    for (c, k) in [(0.5, 0), (0.7, 1), (0.7, 2)] {
        let safe = is_ck_safe(&buckets, c, k)?;
        println!("  ({c},{k})-safe? {safe}");
    }
    Ok(())
}
