//! Consistency of a bucketization with simple implications — the
//! NP-complete problem of Theorem 8 — and `#P`-style model counting.
//!
//! Deciding whether a bucketization `B` and a conjunction of simple
//! implications `φ` are simultaneously satisfiable is NP-complete; computing
//! `Pr(C | B ∧ φ)` is #P-complete. This module implements both by
//! backtracking search over the persons mentioned in `φ`, with forward
//! checking (violated implications prune immediately) and multinomial
//! weighting of unconstrained persons. It exists to demonstrate the hardness
//! gap against the polynomial worst-case DP in `wcbk-core`, and as a second
//! ground-truth path for tests.

use std::collections::HashMap;

use wcbk_logic::SimpleImplication;
use wcbk_table::{SValue, TupleId};

use crate::multiset::multinomial;
use crate::{WorldSpace, WorldsError};

/// Decides whether some world of `space` satisfies all `implications`
/// (Theorem 8's NP-complete decision problem).
pub fn is_consistent(
    space: &WorldSpace,
    implications: &[SimpleImplication],
) -> Result<bool, WorldsError> {
    let mut search = Search::new(space, implications)?;
    Ok(search.run_decision())
}

/// Counts the worlds of `space` satisfying all `implications`
/// (the #P-complete counting problem behind `Pr(C | B ∧ φ)`).
pub fn count_satisfying_worlds(
    space: &WorldSpace,
    implications: &[SimpleImplication],
) -> Result<u128, WorldsError> {
    if space.n_worlds().is_none() {
        return Err(WorldsError::TooManyWorlds);
    }
    let mut search = Search::new(space, implications)?;
    Ok(search.run_count())
}

struct Search<'a> {
    space: &'a WorldSpace,
    implications: &'a [SimpleImplication],
    /// Constrained persons in assignment order.
    order: Vec<TupleId>,
    /// position of a person in `order` (constrained persons only).
    position: HashMap<TupleId, usize>,
    /// Implications to check once the person at this order position is
    /// assigned (i.e. implications whose last-assigned person this is).
    checks_at: Vec<Vec<usize>>,
    /// Remaining value multiplicities per bucket.
    remaining: Vec<Vec<u64>>,
    /// Current partial assignment, by order position.
    assigned: Vec<SValue>,
}

impl<'a> Search<'a> {
    fn new(
        space: &'a WorldSpace,
        implications: &'a [SimpleImplication],
    ) -> Result<Self, WorldsError> {
        let mut order: Vec<TupleId> = Vec::new();
        for imp in implications {
            for p in [imp.antecedent.person, imp.consequent.person] {
                if space.bucket_of(p).is_none() {
                    return Err(WorldsError::UnknownPerson(p));
                }
                if !order.contains(&p) {
                    order.push(p);
                }
            }
        }
        // Heuristic: assign persons that appear in more implications first,
        // so violations are detected early.
        let mut degree: HashMap<TupleId, usize> = HashMap::new();
        for imp in implications {
            *degree.entry(imp.antecedent.person).or_default() += 1;
            *degree.entry(imp.consequent.person).or_default() += 1;
        }
        order.sort_by_key(|p| std::cmp::Reverse(degree.get(p).copied().unwrap_or(0)));

        let position: HashMap<TupleId, usize> =
            order.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut checks_at: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
        for (ii, imp) in implications.iter().enumerate() {
            let last = position[&imp.antecedent.person].max(position[&imp.consequent.person]);
            checks_at[last].push(ii);
        }
        let remaining: Vec<Vec<u64>> = (0..space.n_buckets())
            .map(|b| space.value_counts(b).iter().map(|&(_, c)| c).collect())
            .collect();
        let assigned = vec![WorldSpace::UNASSIGNED; order.len()];
        Ok(Self {
            space,
            implications,
            order,
            position,
            checks_at,
            remaining,
            assigned,
        })
    }

    fn value_of(&self, p: TupleId) -> SValue {
        self.assigned[self.position[&p]]
    }

    /// Checks the implications that became fully assigned at `depth`.
    fn consistent_at(&self, depth: usize) -> bool {
        self.checks_at[depth].iter().all(|&ii| {
            let imp = &self.implications[ii];
            self.value_of(imp.antecedent.person) != imp.antecedent.value
                || self.value_of(imp.consequent.person) == imp.consequent.value
        })
    }

    fn run_decision(&mut self) -> bool {
        self.decide(0)
    }

    fn decide(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let bi = self.space.bucket_of(self.order[depth]).expect("validated");
        for vi in 0..self.space.value_counts(bi).len() {
            if self.remaining[bi][vi] == 0 {
                continue;
            }
            self.remaining[bi][vi] -= 1;
            self.assigned[depth] = self.space.value_counts(bi)[vi].0;
            let ok = self.consistent_at(depth) && self.decide(depth + 1);
            self.remaining[bi][vi] += 1;
            if ok {
                return true;
            }
        }
        false
    }

    fn run_count(&mut self) -> u128 {
        self.count(0)
    }

    fn count(&mut self, depth: usize) -> u128 {
        if depth == self.order.len() {
            let mut weight: u128 = 1;
            for rem in &self.remaining {
                let w = multinomial(rem).expect("sub-multinomial fits u128");
                weight = weight.checked_mul(w).expect("weight fits u128");
            }
            return weight;
        }
        let bi = self.space.bucket_of(self.order[depth]).expect("validated");
        let mut total: u128 = 0;
        for vi in 0..self.space.value_counts(bi).len() {
            if self.remaining[bi][vi] == 0 {
                continue;
            }
            self.remaining[bi][vi] -= 1;
            self.assigned[depth] = self.space.value_counts(bi)[vi].0;
            if self.consistent_at(depth) {
                total += self.count(depth + 1);
            }
            self.remaining[bi][vi] += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;
    use wcbk_logic::{Atom, Formula, Knowledge};

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    fn imp(pa: u32, va: u32, pc: u32, vc: u32) -> SimpleImplication {
        SimpleImplication::new(
            Atom::new(TupleId(pa), SValue(va)),
            Atom::new(TupleId(pc), SValue(vc)),
        )
    }

    fn space2() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2]), sv(&[0, 0, 1])),
            BucketSpec::new(persons(&[3, 4]), sv(&[2, 3])),
        ])
        .unwrap()
    }

    #[test]
    fn empty_implications_always_consistent() {
        assert!(is_consistent(&space2(), &[]).unwrap());
        assert_eq!(
            Some(count_satisfying_worlds(&space2(), &[]).unwrap()),
            space2().n_worlds()
        );
    }

    #[test]
    fn impossible_antecedent_is_vacuous() {
        // t3 never has value 9, so the implication holds vacuously everywhere.
        let imps = [imp(3, 9, 0, 0)];
        assert!(is_consistent(&space2(), &imps).unwrap());
        assert_eq!(
            Some(count_satisfying_worlds(&space2(), &imps).unwrap()),
            space2().n_worlds()
        );
    }

    #[test]
    fn impossible_consequent_forces_negation() {
        // (t0=0 → t0=9) ≡ ¬(t0=0): worlds where t0 has value 1.
        let imps = [imp(0, 0, 0, 9)];
        assert!(is_consistent(&space2(), &imps).unwrap());
        // t0=1 fixes the bucket's single 1; the two 0s go to t1,t2 (1 way);
        // bucket 2 contributes 2 worlds.
        assert_eq!(count_satisfying_worlds(&space2(), &imps).unwrap(), 2);
    }

    #[test]
    fn inconsistent_set_detected() {
        // Bucket {0,0,1}: force all three members to value 1 — impossible.
        let imps = [imp(0, 0, 0, 9), imp(1, 0, 1, 9), imp(2, 0, 2, 9)];
        assert!(!is_consistent(&space2(), &imps).unwrap());
        assert_eq!(count_satisfying_worlds(&space2(), &imps).unwrap(), 0);
    }

    #[test]
    fn count_matches_formula_model_count() {
        let space = space2();
        let sets: Vec<Vec<SimpleImplication>> = vec![
            vec![imp(0, 0, 1, 0)],
            vec![imp(0, 0, 3, 2)],
            vec![imp(3, 2, 4, 3)],
            vec![imp(0, 0, 1, 0), imp(1, 0, 2, 1)],
            vec![imp(0, 1, 3, 2), imp(4, 2, 2, 1)],
        ];
        for imps in sets {
            let knowledge = Knowledge::from_simple(imps.iter().copied());
            let expected = space.count_models(&knowledge.to_formula()).unwrap();
            let got = count_satisfying_worlds(&space, &imps).unwrap();
            assert_eq!(got, expected, "implications {imps:?}");
            assert_eq!(
                is_consistent(&space, &imps).unwrap(),
                expected > 0,
                "decision/count mismatch for {imps:?}"
            );
        }
    }

    #[test]
    fn cross_bucket_chain() {
        // t0=1 → t3=2, t3=2 → t4=2 : t4 can never be 2 (bucket has {2,3}
        // but then t3 != 2)... t4=2 possible only when t3=3. The chain
        // forces: if t0=1 then t3=2, then t4=2 — contradiction with t3=2
        // consuming the only 2. So satisfying worlds have t0 != 1.
        let imps = [imp(0, 1, 3, 2), imp(3, 2, 4, 2)];
        let space = space2();
        assert!(is_consistent(&space, &imps).unwrap());
        let knowledge = Knowledge::from_simple(imps.iter().copied());
        let direct = space.count_models(&knowledge.to_formula()).unwrap();
        assert_eq!(count_satisfying_worlds(&space, &imps).unwrap(), direct);
        // Verify the reasoning: t0=1 in 1/3 of bucket-1 worlds; none survive.
        let with_t0 = Formula::and([
            Formula::Atom(Atom::new(TupleId(0), SValue(1))),
            knowledge.to_formula(),
        ]);
        assert_eq!(space.count_models(&with_t0).unwrap(), 0);
    }

    #[test]
    fn unknown_person_rejected() {
        let err = is_consistent(&space2(), &[imp(42, 0, 0, 0)]).unwrap_err();
        assert_eq!(err, WorldsError::UnknownPerson(TupleId(42)));
    }
}
