//! Probabilistic background knowledge (the paper's §6 future-work item
//! "extending our framework for probabilistic background knowledge").
//!
//! An attacker may hold a belief with confidence rather than certainty:
//! "with probability 0.9, if Hannah has the flu then Charlie does too."
//! The standard mechanism is **Jeffrey conditioning**: given the random-
//! worlds prior and a constraint `(φ, p)`, reweight worlds so that the
//! posterior probability of `φ` is exactly `p`, scaling worlds inside and
//! outside `φ` uniformly:
//!
//! ```text
//!   w'(ω) = w(ω) · p / Pr(φ)        if ω ⊨ φ
//!   w'(ω) = w(ω) · (1−p) / Pr(¬φ)   otherwise
//! ```
//!
//! Hard knowledge is the `p = 1` special case and reproduces ordinary
//! conditioning. Updates for multiple constraints are applied iteratively
//! (Jeffrey updates do not commute in general — the classical caveat; the
//! order is the order of `update` calls).
//!
//! The posterior is maintained as an explicit weight per world, so this is
//! exact but limited to enumerable spaces (guarded by a world-count limit).

use wcbk_logic::{Atom, Formula};
use wcbk_table::SValue;

use crate::{WorldSpace, WorldsError};

/// Errors specific to soft conditioning.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftError {
    /// The space has more worlds than `limit`.
    TooLarge {
        /// Worlds in the space.
        n_worlds: u128,
        /// The configured limit.
        limit: u128,
    },
    /// Confidence must lie in `[0, 1]`.
    BadConfidence(f64),
    /// The constraint demands positive probability for an event the prior
    /// (or current posterior) rules out entirely, or vice versa.
    Incompatible {
        /// Posterior probability of the constraint event before the update.
        current: f64,
        /// Demanded probability.
        demanded: f64,
    },
    /// Underlying world-space failure.
    Worlds(WorldsError),
}

impl std::fmt::Display for SoftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftError::TooLarge { n_worlds, limit } => {
                write!(
                    f,
                    "{n_worlds} worlds exceed the soft-conditioning limit {limit}"
                )
            }
            SoftError::BadConfidence(p) => write!(f, "confidence {p} outside [0,1]"),
            SoftError::Incompatible { current, demanded } => write!(
                f,
                "cannot move an event of probability {current} to {demanded}"
            ),
            SoftError::Worlds(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SoftError {}

impl From<WorldsError> for SoftError {
    fn from(e: WorldsError) -> Self {
        SoftError::Worlds(e)
    }
}

/// An explicit posterior over the worlds of a bucketization, supporting
/// Jeffrey updates with uncertain knowledge.
#[derive(Debug, Clone)]
pub struct SoftPosterior {
    worlds: Vec<Vec<SValue>>,
    weights: Vec<f64>,
}

impl SoftPosterior {
    /// Materializes the uniform random-worlds prior. Fails when the space
    /// has more than `limit` worlds.
    pub fn new(space: &WorldSpace, limit: u128) -> Result<Self, SoftError> {
        let n_worlds = space.n_worlds().unwrap_or(u128::MAX);
        if n_worlds > limit {
            return Err(SoftError::TooLarge { n_worlds, limit });
        }
        let mut worlds = Vec::with_capacity(n_worlds as usize);
        space.for_each_world(|w| worlds.push(w.to_vec()));
        let n = worlds.len();
        Ok(Self {
            worlds,
            weights: vec![1.0 / n as f64; n],
        })
    }

    /// Number of worlds carried.
    pub fn n_worlds(&self) -> usize {
        self.worlds.len()
    }

    /// Posterior probability of `formula`.
    pub fn probability(&self, formula: &Formula) -> f64 {
        self.worlds
            .iter()
            .zip(&self.weights)
            .filter(|(w, _)| formula.eval(w.as_slice()))
            .map(|(_, &wt)| wt)
            .sum()
    }

    /// Jeffrey update: after this call, `Pr(formula) = confidence`.
    ///
    /// `confidence = 1` is hard conditioning on `formula`; `confidence = 0`
    /// on its negation.
    pub fn update(&mut self, formula: &Formula, confidence: f64) -> Result<(), SoftError> {
        if !(0.0..=1.0).contains(&confidence) || confidence.is_nan() {
            return Err(SoftError::BadConfidence(confidence));
        }
        let current = self.probability(formula);
        if (current == 0.0 && confidence > 0.0) || (current == 1.0 && confidence < 1.0) {
            return Err(SoftError::Incompatible {
                current,
                demanded: confidence,
            });
        }
        let scale_in = if current > 0.0 {
            confidence / current
        } else {
            0.0
        };
        let scale_out = if current < 1.0 {
            (1.0 - confidence) / (1.0 - current)
        } else {
            0.0
        };
        for (w, wt) in self.worlds.iter().zip(self.weights.iter_mut()) {
            *wt *= if formula.eval(w.as_slice()) {
                scale_in
            } else {
                scale_out
            };
        }
        Ok(())
    }

    /// Definition 5 under the soft posterior: the most probable sensitive
    /// assignment and its probability.
    pub fn disclosure_risk(&self, space: &WorldSpace) -> Option<(f64, Atom)> {
        let mut best: Option<(f64, Atom)> = None;
        for b in 0..space.n_buckets() {
            for &p in space.members(b) {
                for &(v, _) in space.value_counts(b) {
                    let atom = Atom::new(p, v);
                    let prob = self.probability(&Formula::Atom(atom));
                    if best.as_ref().is_none_or(|(bp, _)| prob > *bp) {
                        best = Some((prob, atom));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;
    use wcbk_logic::{Knowledge, SimpleImplication};
    use wcbk_table::TupleId;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    /// Figure 3 male/female buckets.
    fn figure3() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2, 3, 4]), sv(&[0, 0, 1, 1, 2])),
            BucketSpec::new(persons(&[5, 6, 7, 8, 9]), sv(&[0, 0, 3, 4, 5])),
        ])
        .unwrap()
    }

    fn hannah_charlie() -> Formula {
        Knowledge::from_simple([SimpleImplication::new(
            Atom::new(TupleId(6), SValue(0)),
            Atom::new(TupleId(1), SValue(0)),
        )])
        .to_formula()
    }

    #[test]
    fn prior_matches_space() {
        let space = figure3();
        let post = SoftPosterior::new(&space, 10_000).unwrap();
        assert_eq!(Some(post.n_worlds() as u128), space.n_worlds());
        let charlie_flu = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        assert!((post.probability(&charlie_flu) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hard_update_equals_conditioning() {
        let space = figure3();
        let mut post = SoftPosterior::new(&space, 10_000).unwrap();
        let phi = hannah_charlie();
        post.update(&phi, 1.0).unwrap();
        let charlie_flu = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        // Exact: 10/19 from the paper.
        assert!((post.probability(&charlie_flu) - 10.0 / 19.0).abs() < 1e-12);
        assert!((post.probability(&phi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_op_update_at_prior_probability() {
        let space = figure3();
        let mut post = SoftPosterior::new(&space, 10_000).unwrap();
        let phi = hannah_charlie();
        let prior = post.probability(&phi);
        let charlie_flu = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        let before = post.probability(&charlie_flu);
        post.update(&phi, prior).unwrap();
        assert!((post.probability(&charlie_flu) - before).abs() < 1e-12);
    }

    #[test]
    fn partial_confidence_interpolates() {
        let space = figure3();
        let phi = hannah_charlie();
        let charlie_flu = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        let mut last = 0.0;
        // Disclosure about Charlie grows monotonically with confidence in φ
        // (φ raises Pr(Charlie=flu), so pushing Pr(φ) up can only help).
        for confidence in [0.2, 0.5, 0.8, 0.95, 1.0] {
            let mut post = SoftPosterior::new(&space, 10_000).unwrap();
            post.update(&phi, confidence).unwrap();
            let p = post.probability(&charlie_flu);
            assert!(p >= last - 1e-12, "confidence {confidence}: {p} < {last}");
            last = p;
        }
        assert!((last - 10.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_updates_hit_both_targets_last_wins() {
        let space = figure3();
        let mut post = SoftPosterior::new(&space, 10_000).unwrap();
        let ed_flu = Formula::Atom(Atom::new(TupleId(3), SValue(0)));
        let frank_flu = Formula::Atom(Atom::new(TupleId(4), SValue(0)));
        post.update(&ed_flu, 0.9).unwrap();
        post.update(&frank_flu, 0.9).unwrap();
        // The most recent constraint holds exactly; the earlier one drifted.
        assert!((post.probability(&frank_flu) - 0.9).abs() < 1e-12);
        assert!(post.probability(&ed_flu) < 0.9);
        // Weights stay a distribution.
        let total: f64 = post.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disclosure_risk_under_soft_knowledge() {
        let space = figure3();
        let mut post = SoftPosterior::new(&space, 10_000).unwrap();
        let (risk0, _) = post.disclosure_risk(&space).unwrap();
        assert!((risk0 - 0.4).abs() < 1e-12);
        post.update(&hannah_charlie(), 0.9).unwrap();
        let (risk1, atom) = post.disclosure_risk(&space).unwrap();
        assert!(risk1 > risk0);
        assert!(risk1 < 10.0 / 19.0 + 1e-12);
        // The lifted prediction is about Charlie having flu.
        assert_eq!(atom, Atom::new(TupleId(1), SValue(0)));
    }

    #[test]
    fn incompatible_and_invalid_updates_rejected() {
        let space = figure3();
        let mut post = SoftPosterior::new(&space, 10_000).unwrap();
        // Ed = Breast Cancer is impossible in the male bucket.
        let impossible = Formula::Atom(Atom::new(TupleId(3), SValue(3)));
        assert!(matches!(
            post.update(&impossible, 0.5),
            Err(SoftError::Incompatible { .. })
        ));
        assert!(matches!(
            post.update(&Formula::True, 1.5),
            Err(SoftError::BadConfidence(_))
        ));
        // Probability-0 demand on an impossible event is fine (no-op).
        post.update(&impossible, 0.0).unwrap();
    }

    #[test]
    fn limit_guard() {
        let space = figure3();
        assert!(matches!(
            SoftPosterior::new(&space, 10),
            Err(SoftError::TooLarge { .. })
        ));
    }
}
