//! Monte-Carlo approximate inference.
//!
//! Exact inference is #P-hard (Theorem 8); for spaces too large to
//! enumerate, conditional probabilities can be *estimated* by sampling
//! worlds — each world is an independent uniform draw obtained by shuffling
//! every bucket's value multiset. Conditioning uses rejection: worlds
//! violating the evidence are discarded. Estimates come with a standard
//! error so callers can size their sample, and the estimator is validated
//! against exact enumeration in the tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk_logic::Formula;
use wcbk_table::SValue;

use crate::WorldSpace;

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Standard error of the estimate (binomial approximation).
    pub std_error: f64,
    /// Samples that satisfied the conditioning event (the effective sample
    /// size for conditionals).
    pub accepted: usize,
}

/// Samples one world into `assignment` (indexed by `TupleId::index()`).
fn sample_world<R: Rng>(space: &WorldSpace, rng: &mut R, assignment: &mut [SValue]) {
    for b in 0..space.n_buckets() {
        // Build the multiset then Fisher–Yates it.
        let mut values: Vec<SValue> = Vec::with_capacity(space.members(b).len());
        for &(v, c) in space.value_counts(b) {
            for _ in 0..c {
                values.push(v);
            }
        }
        for i in (1..values.len()).rev() {
            let j = rng.gen_range(0..=i);
            values.swap(i, j);
        }
        for (&m, &v) in space.members(b).iter().zip(&values) {
            assignment[m.index()] = v;
        }
    }
}

/// Estimates `Pr(target | B ∧ given)` from `samples` world draws, rejecting
/// draws that violate `given`. Returns `None` when no draw satisfied the
/// evidence (the estimate is undefined).
pub fn estimate_conditional(
    space: &WorldSpace,
    target: &Formula,
    given: &Formula,
    samples: usize,
    seed: u64,
) -> Option<Estimate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = space
        .persons()
        .iter()
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(0);
    let mut assignment = vec![WorldSpace::UNASSIGNED; len];
    let mut accepted = 0usize;
    let mut hits = 0usize;
    for _ in 0..samples {
        sample_world(space, &mut rng, &mut assignment);
        if !given.eval(assignment.as_slice()) {
            continue;
        }
        accepted += 1;
        if target.eval(assignment.as_slice()) {
            hits += 1;
        }
    }
    if accepted == 0 {
        return None;
    }
    let p = hits as f64 / accepted as f64;
    let std_error = (p * (1.0 - p) / accepted as f64).sqrt();
    Some(Estimate {
        value: p,
        std_error,
        accepted,
    })
}

/// Estimates an unconditional probability (no rejection).
pub fn estimate_probability(
    space: &WorldSpace,
    formula: &Formula,
    samples: usize,
    seed: u64,
) -> Estimate {
    estimate_conditional(space, formula, &Formula::True, samples, seed)
        .expect("True always accepts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;
    use wcbk_logic::{Atom, Knowledge, SimpleImplication};
    use wcbk_table::TupleId;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    fn figure3() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2, 3, 4]), sv(&[0, 0, 1, 1, 2])),
            BucketSpec::new(persons(&[5, 6, 7, 8, 9]), sv(&[0, 0, 3, 4, 5])),
        ])
        .unwrap()
    }

    #[test]
    fn estimates_marginal_within_error() {
        let space = figure3();
        let f = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        let est = estimate_probability(&space, &f, 20_000, 7);
        assert!((est.value - 0.4).abs() < 5.0 * est.std_error.max(1e-3));
        assert_eq!(est.accepted, 20_000);
    }

    #[test]
    fn estimates_hannah_charlie_conditional() {
        let space = figure3();
        let phi = Knowledge::from_simple([SimpleImplication::new(
            Atom::new(TupleId(6), SValue(0)),
            Atom::new(TupleId(1), SValue(0)),
        )])
        .to_formula();
        let target = Formula::Atom(Atom::new(TupleId(1), SValue(0)));
        let est = estimate_conditional(&space, &target, &phi, 40_000, 11).unwrap();
        let exact = 10.0 / 19.0;
        assert!(
            (est.value - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "estimate {} vs exact {exact} (se {})",
            est.value,
            est.std_error
        );
        // Rejection rate ≈ 1 - 19/25.
        assert!(est.accepted > 25_000);
    }

    #[test]
    fn impossible_evidence_yields_none() {
        let space = figure3();
        let impossible = Formula::Atom(Atom::new(TupleId(3), SValue(3)));
        let target = Formula::True;
        assert_eq!(
            estimate_conditional(&space, &target, &impossible, 1000, 3),
            None
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let space = figure3();
        let f = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let a = estimate_probability(&space, &f, 5_000, 42);
        let b = estimate_probability(&space, &f, 5_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn error_shrinks_with_samples() {
        let space = figure3();
        let f = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let small = estimate_probability(&space, &f, 500, 1);
        let large = estimate_probability(&space, &f, 50_000, 1);
        assert!(large.std_error < small.std_error);
    }
}
