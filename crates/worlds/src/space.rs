//! The space of worlds consistent with a bucketization.

use std::collections::HashMap;

use wcbk_logic::Formula;
use wcbk_table::{SValue, TupleId};

use crate::multiset::multinomial;
use crate::Ratio;

/// Errors from world-space construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldsError {
    /// A bucket's member list and value multiset have different sizes.
    BucketArity {
        /// Index of the offending bucket.
        bucket: usize,
        /// Number of members.
        members: usize,
        /// Number of values.
        values: usize,
    },
    /// The same person appears in two buckets (or twice in one).
    DuplicatePerson(TupleId),
    /// The number of worlds does not fit in `u128`.
    TooManyWorlds,
    /// A formula mentions a person that is in no bucket.
    UnknownPerson(TupleId),
}

impl std::fmt::Display for WorldsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldsError::BucketArity {
                bucket,
                members,
                values,
            } => write!(
                f,
                "bucket {bucket} has {members} members but {values} sensitive values"
            ),
            WorldsError::DuplicatePerson(p) => {
                write!(f, "person {p} appears in more than one bucket slot")
            }
            WorldsError::TooManyWorlds => write!(f, "world count exceeds u128"),
            WorldsError::UnknownPerson(p) => {
                write!(f, "formula mentions person {p} not present in any bucket")
            }
        }
    }
}

impl std::error::Error for WorldsError {}

/// One bucket of a bucketization, as published: who is in it and the multiset
/// of sensitive values observed in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSpec {
    /// The persons `P_b` whose tuples fall in this bucket.
    pub members: Vec<TupleId>,
    /// The bucket's sensitive values (one per member, order irrelevant).
    pub values: Vec<SValue>,
}

impl BucketSpec {
    /// Creates a bucket spec.
    pub fn new(members: Vec<TupleId>, values: Vec<SValue>) -> Self {
        Self { members, values }
    }
}

#[derive(Debug, Clone)]
struct BucketInner {
    members: Vec<TupleId>,
    /// Distinct values with multiplicities, sorted by value.
    counts: Vec<(SValue, u64)>,
    /// Values sorted ascending (permutation scratch source).
    sorted_values: Vec<SValue>,
}

/// The uniform probability space over all tables consistent with a
/// bucketization (Section 2.2's random-worlds assumption).
///
/// A world is a total assignment of sensitive values to persons, one
/// per-bucket multiset permutation each. Worlds are represented as slices
/// indexed by `TupleId::index()`; slots for persons outside every bucket hold
/// the sentinel [`WorldSpace::UNASSIGNED`].
///
/// ```
/// use wcbk_logic::{Atom, Formula};
/// use wcbk_table::{SValue, TupleId};
/// use wcbk_worlds::{BucketSpec, Ratio, WorldSpace};
///
/// // One bucket of three people with values {flu, flu, cancer}.
/// let space = WorldSpace::new(vec![BucketSpec::new(
///     vec![TupleId(0), TupleId(1), TupleId(2)],
///     vec![SValue(0), SValue(0), SValue(1)],
/// )])?;
/// assert_eq!(space.n_worlds(), Some(3)); // 3!/2! distinct assignments
/// let t0_flu = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
/// assert_eq!(space.probability(&t0_flu)?, Ratio::new(2, 3));
/// # Ok::<(), wcbk_worlds::WorldsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorldSpace {
    buckets: Vec<BucketInner>,
    assignment_len: usize,
    bucket_of: HashMap<TupleId, usize>,
    /// `None` when the count overflows `u128` (the space still supports the
    /// float-weighted and sampling paths; only counting methods fail).
    n_worlds: Option<u128>,
}

impl WorldSpace {
    /// Sentinel value used in assignment slots not covered by any bucket.
    pub const UNASSIGNED: SValue = SValue(u32::MAX);

    /// Sentinel standing for "some value the formula does not mention" in
    /// the value-aggregated inference path ([`WorldSpace::probability_f64`]).
    /// Never equal to a real dictionary code in any well-formed table.
    pub const OTHER_VALUE: SValue = SValue(u32::MAX - 1);

    /// Builds the world space for the given buckets.
    pub fn new(specs: Vec<BucketSpec>) -> Result<Self, WorldsError> {
        let mut bucket_of = HashMap::new();
        let mut buckets = Vec::with_capacity(specs.len());
        let mut assignment_len = 0usize;
        let mut n_worlds: Option<u128> = Some(1);
        for (bi, spec) in specs.into_iter().enumerate() {
            if spec.members.len() != spec.values.len() {
                return Err(WorldsError::BucketArity {
                    bucket: bi,
                    members: spec.members.len(),
                    values: spec.values.len(),
                });
            }
            for &m in &spec.members {
                if bucket_of.insert(m, bi).is_some() {
                    return Err(WorldsError::DuplicatePerson(m));
                }
                assignment_len = assignment_len.max(m.index() + 1);
            }
            let mut sorted_values = spec.values.clone();
            sorted_values.sort_unstable();
            let mut counts: Vec<(SValue, u64)> = Vec::new();
            for &v in &sorted_values {
                match counts.last_mut() {
                    Some((last, c)) if *last == v => *c += 1,
                    _ => counts.push((v, 1)),
                }
            }
            let count_vec: Vec<u64> = counts.iter().map(|&(_, c)| c).collect();
            n_worlds = n_worlds
                .zip(multinomial(&count_vec))
                .and_then(|(acc, perms)| acc.checked_mul(perms));
            buckets.push(BucketInner {
                members: spec.members,
                counts,
                sorted_values,
            });
        }
        Ok(Self {
            buckets,
            assignment_len,
            bucket_of,
            n_worlds,
        })
    }

    /// Total number of worlds (product of per-bucket multinomials), or
    /// `None` when it overflows `u128` — enumeration/counting methods are
    /// unavailable then, but [`WorldSpace::probability_f64`] and the
    /// sampling estimators still work.
    pub fn n_worlds(&self) -> Option<u128> {
        self.n_worlds
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of persons across all buckets.
    pub fn n_persons(&self) -> usize {
        self.bucket_of.len()
    }

    /// All persons, sorted.
    pub fn persons(&self) -> Vec<TupleId> {
        let mut p: Vec<TupleId> = self.bucket_of.keys().copied().collect();
        p.sort_unstable();
        p
    }

    /// The bucket index containing person `p`.
    pub fn bucket_of(&self, p: TupleId) -> Option<usize> {
        self.bucket_of.get(&p).copied()
    }

    /// Members of bucket `b`.
    pub fn members(&self, b: usize) -> &[TupleId] {
        &self.buckets[b].members
    }

    /// Distinct sensitive values of bucket `b` with multiplicities, sorted by
    /// value.
    pub fn value_counts(&self, b: usize) -> &[(SValue, u64)] {
        &self.buckets[b].counts
    }

    /// The union of sensitive values over all buckets, sorted and distinct.
    pub fn value_universe(&self) -> Vec<SValue> {
        let mut vs: Vec<SValue> = self
            .buckets
            .iter()
            .flat_map(|b| b.counts.iter().map(|&(v, _)| v))
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Enumerates every world, invoking `visit` with the assignment slice
    /// (indexed by `TupleId::index()`).
    ///
    /// Exponential: guard with [`WorldSpace::n_worlds`] before calling.
    pub fn for_each_world<F: FnMut(&[SValue])>(&self, mut visit: F) {
        let mut assignment = vec![Self::UNASSIGNED; self.assignment_len];
        let mut scratch: Vec<Vec<SValue>> = self
            .buckets
            .iter()
            .map(|b| b.sorted_values.clone())
            .collect();
        self.enum_bucket(0, &mut assignment, &mut scratch, &mut visit);
    }

    fn enum_bucket<F: FnMut(&[SValue])>(
        &self,
        bi: usize,
        assignment: &mut Vec<SValue>,
        scratch: &mut [Vec<SValue>],
        visit: &mut F,
    ) {
        if bi == self.buckets.len() {
            visit(assignment);
            return;
        }
        // Iterate the distinct permutations of bucket bi's multiset in place.
        loop {
            for (slot, &m) in self.buckets[bi].members.iter().enumerate() {
                assignment[m.index()] = scratch[bi][slot];
            }
            self.enum_bucket(bi + 1, assignment, scratch, visit);
            if !crate::multiset::next_permutation(&mut scratch[bi]) {
                break;
            }
        }
    }

    /// Counts the worlds satisfying `formula` using *restricted enumeration*:
    /// only the persons the formula mentions are branched on; all other
    /// persons contribute a multinomial completion weight.
    ///
    /// Runs in `O(∏_b d_b^{m_b})` where `m_b` is the number of mentioned
    /// persons in bucket `b` and `d_b` its distinct-value count — exponential
    /// only in the formula footprint, not in the table size.
    pub fn count_models(&self, formula: &Formula) -> Result<u128, WorldsError> {
        // Sub-multinomial weights are bounded by the total world count, so a
        // representable total guarantees every intermediate weight fits.
        if self.n_worlds.is_none() {
            return Err(WorldsError::TooManyWorlds);
        }
        let mentioned = formula.persons();
        for &p in &mentioned {
            if !self.bucket_of.contains_key(&p) {
                return Err(WorldsError::UnknownPerson(p));
            }
        }
        // Group mentioned persons by bucket, tracking remaining counts.
        let mut per_bucket: Vec<Vec<TupleId>> = vec![Vec::new(); self.buckets.len()];
        for &p in &mentioned {
            per_bucket[self.bucket_of[&p]].push(p);
        }
        let mut remaining: Vec<Vec<u64>> = self
            .buckets
            .iter()
            .map(|b| b.counts.iter().map(|&(_, c)| c).collect())
            .collect();
        let order: Vec<TupleId> = per_bucket.iter().flatten().copied().collect();
        let mut assignment = vec![Self::UNASSIGNED; self.assignment_len];
        Ok(self.count_rec(formula, &order, 0, &mut assignment, &mut remaining))
    }

    fn count_rec(
        &self,
        formula: &Formula,
        order: &[TupleId],
        depth: usize,
        assignment: &mut Vec<SValue>,
        remaining: &mut [Vec<u64>],
    ) -> u128 {
        if depth == order.len() {
            if !formula.eval(assignment.as_slice()) {
                return 0;
            }
            // Weight: completions of all unmentioned members.
            let mut weight: u128 = 1;
            for (bi, b) in self.buckets.iter().enumerate() {
                let _ = b;
                let w = multinomial(&remaining[bi]).expect("sub-multinomial fits u128");
                weight = weight.checked_mul(w).expect("weight fits u128");
            }
            return weight;
        }
        let p = order[depth];
        let bi = self.bucket_of[&p];
        let mut total: u128 = 0;
        for vi in 0..self.buckets[bi].counts.len() {
            if remaining[bi][vi] == 0 {
                continue;
            }
            remaining[bi][vi] -= 1;
            assignment[p.index()] = self.buckets[bi].counts[vi].0;
            total += self.count_rec(formula, order, depth + 1, assignment, remaining);
            remaining[bi][vi] += 1;
        }
        assignment[p.index()] = Self::UNASSIGNED;
        total
    }

    /// `Pr(formula | B)` as an exact rational.
    pub fn probability(&self, formula: &Formula) -> Result<Ratio, WorldsError> {
        let count = self.count_models(formula)?;
        let total = self.n_worlds.ok_or(WorldsError::TooManyWorlds)?;
        Ok(Ratio::from_counts(count, total))
    }

    /// `Pr(formula | B)` computed in floating point by *value-aggregated*
    /// restricted enumeration: each mentioned person branches only over the
    /// values the formula mentions in that person's bucket, plus one
    /// aggregated "any other value" branch. Aggregation is sound because the
    /// formula's truth depends only on its atoms, and atoms cannot
    /// distinguish non-mentioned values; the urn bookkeeping lumps their
    /// probability mass into a single branch.
    ///
    /// Unlike [`WorldSpace::count_models`] this never forms multinomials,
    /// and branching is `O(∏_b (r_b + 1)^{m_b})` where `r_b` counts the
    /// *distinct mentioned values* in bucket `b` (not the bucket's domain) —
    /// so DP witnesses verify on the 45,222-row Adult bucketizations in
    /// milliseconds. Exact up to f64 rounding; agreement with the rational
    /// path is tested.
    pub fn probability_f64(&self, formula: &Formula) -> Result<f64, WorldsError> {
        let mentioned = formula.persons();
        for &p in &mentioned {
            if !self.bucket_of.contains_key(&p) {
                return Err(WorldsError::UnknownPerson(p));
            }
        }
        // Per-bucket mentioned values (with their multiplicities in the
        // bucket; a mentioned value absent from the bucket gets count 0 and
        // is simply never picked).
        let mut relevant: Vec<Vec<SValue>> = vec![Vec::new(); self.buckets.len()];
        for atom in formula.atoms() {
            let bi = self.bucket_of[&atom.person];
            if !relevant[bi].contains(&atom.value) {
                relevant[bi].push(atom.value);
            }
        }
        let mut rel_counts: Vec<Vec<(SValue, u64)>> = Vec::with_capacity(self.buckets.len());
        let mut other: Vec<u64> = Vec::with_capacity(self.buckets.len());
        for (bi, b) in self.buckets.iter().enumerate() {
            let rel: Vec<(SValue, u64)> = relevant[bi]
                .iter()
                .map(|&v| {
                    let count = b
                        .counts
                        .iter()
                        .find(|&&(bv, _)| bv == v)
                        .map(|&(_, c)| c)
                        .unwrap_or(0);
                    (v, count)
                })
                .collect();
            let rel_total: u64 = rel.iter().map(|&(_, c)| c).sum();
            other.push(b.members.len() as u64 - rel_total);
            rel_counts.push(rel);
        }

        let mut per_bucket: Vec<Vec<TupleId>> = vec![Vec::new(); self.buckets.len()];
        for &p in &mentioned {
            per_bucket[self.bucket_of[&p]].push(p);
        }
        // Slots left per bucket (denominator of the sequential pick).
        let mut slots: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.members.len() as u64)
            .collect();
        let order: Vec<TupleId> = per_bucket.iter().flatten().copied().collect();
        let mut assignment = vec![Self::UNASSIGNED; self.assignment_len];
        Ok(self.prob_rec(
            formula,
            &order,
            0,
            1.0,
            &mut assignment,
            &mut rel_counts,
            &mut other,
            &mut slots,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn prob_rec(
        &self,
        formula: &Formula,
        order: &[TupleId],
        depth: usize,
        weight: f64,
        assignment: &mut Vec<SValue>,
        rel_counts: &mut [Vec<(SValue, u64)>],
        other: &mut [u64],
        slots: &mut [u64],
    ) -> f64 {
        if depth == order.len() {
            return if formula.eval(assignment.as_slice()) {
                weight
            } else {
                0.0
            };
        }
        let p = order[depth];
        let bi = self.bucket_of[&p];
        let mut total = 0.0;
        let denom = slots[bi] as f64;
        slots[bi] -= 1;
        // Branch on each mentioned value individually…
        for vi in 0..rel_counts[bi].len() {
            let (v, c) = rel_counts[bi][vi];
            if c == 0 {
                continue;
            }
            let pick = c as f64 / denom;
            rel_counts[bi][vi].1 -= 1;
            assignment[p.index()] = v;
            total += self.prob_rec(
                formula,
                order,
                depth + 1,
                weight * pick,
                assignment,
                rel_counts,
                other,
                slots,
            );
            rel_counts[bi][vi].1 += 1;
        }
        // …and lump all non-mentioned values into one branch. The sentinel
        // never equals a real atom value, so formula evaluation stays exact.
        if other[bi] > 0 {
            let pick = other[bi] as f64 / denom;
            other[bi] -= 1;
            assignment[p.index()] = Self::OTHER_VALUE;
            total += self.prob_rec(
                formula,
                order,
                depth + 1,
                weight * pick,
                assignment,
                rel_counts,
                other,
                slots,
            );
            other[bi] += 1;
        }
        slots[bi] += 1;
        assignment[p.index()] = Self::UNASSIGNED;
        total
    }

    /// `Pr(target | B ∧ given)` in floating point (large-bucket capable);
    /// `None` when the evidence has probability 0.
    pub fn conditional_f64(
        &self,
        target: &Formula,
        given: &Formula,
    ) -> Result<Option<f64>, WorldsError> {
        let denom = self.probability_f64(given)?;
        if denom <= 0.0 {
            return Ok(None);
        }
        let joint = Formula::and([target.clone(), given.clone()]);
        Ok(Some(self.probability_f64(&joint)? / denom))
    }

    /// `Pr(target | B ∧ given)`, or `None` when `given` is inconsistent with
    /// the bucketization (`Pr(given | B) = 0`).
    pub fn conditional(
        &self,
        target: &Formula,
        given: &Formula,
    ) -> Result<Option<Ratio>, WorldsError> {
        let denom = self.count_models(given)?;
        if denom == 0 {
            return Ok(None);
        }
        let joint = Formula::and([target.clone(), given.clone()]);
        let num = self.count_models(&joint)?;
        Ok(Some(Ratio::from_counts(num, denom)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_logic::Atom;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    /// Two buckets: {t0,t1,t2} with values {0,0,1}; {t3,t4} with values {2,3}.
    fn demo_space() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2]), sv(&[0, 0, 1])),
            BucketSpec::new(persons(&[3, 4]), sv(&[2, 3])),
        ])
        .unwrap()
    }

    #[test]
    fn world_count_is_product_of_multinomials() {
        // 3!/2! = 3 for bucket 0, 2! = 2 for bucket 1.
        assert_eq!(demo_space().n_worlds(), Some(6));
    }

    #[test]
    fn enumeration_visits_each_world_once() {
        let space = demo_space();
        let mut seen = std::collections::HashSet::new();
        space.for_each_world(|w| {
            assert!(seen.insert(w.to_vec()));
        });
        assert_eq!(Some(seen.len() as u128), space.n_worlds());
    }

    #[test]
    fn atom_probability_is_frequency() {
        let space = demo_space();
        // Pr(t0 = 0) = 2/3 (value 0 appears twice among 3 slots).
        let f = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        assert_eq!(space.probability(&f).unwrap(), Ratio::new(2, 3));
        // Pr(t3 = 2) = 1/2.
        let f = Formula::Atom(Atom::new(TupleId(3), SValue(2)));
        assert_eq!(space.probability(&f).unwrap(), Ratio::new(1, 2));
        // Value not present in the bucket: probability 0.
        let f = Formula::Atom(Atom::new(TupleId(3), SValue(0)));
        assert_eq!(space.probability(&f).unwrap(), Ratio::ZERO);
    }

    #[test]
    fn count_models_matches_full_enumeration() {
        let space = demo_space();
        let formulas = vec![
            Formula::Atom(Atom::new(TupleId(0), SValue(0))),
            Formula::and([
                Formula::Atom(Atom::new(TupleId(0), SValue(0))),
                Formula::Atom(Atom::new(TupleId(3), SValue(3))),
            ]),
            Formula::implies(
                Formula::Atom(Atom::new(TupleId(4), SValue(2))),
                Formula::Atom(Atom::new(TupleId(2), SValue(1))),
            ),
            Formula::not(Formula::Atom(Atom::new(TupleId(1), SValue(0)))),
        ];
        for f in formulas {
            let mut brute = 0u128;
            space.for_each_world(|w| {
                if f.eval(w) {
                    brute += 1;
                }
            });
            assert_eq!(space.count_models(&f).unwrap(), brute, "formula {f}");
        }
    }

    #[test]
    fn conditional_probability() {
        let space = demo_space();
        // Pr(t0=0 | t1=1) : if t1 has the single 1, t0 surely has a 0.
        let target = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let given = Formula::Atom(Atom::new(TupleId(1), SValue(1)));
        assert_eq!(
            space.conditional(&target, &given).unwrap(),
            Some(Ratio::ONE)
        );
        // Conditioning on an impossible event yields None.
        let impossible = Formula::Atom(Atom::new(TupleId(1), SValue(9)));
        assert_eq!(space.conditional(&target, &impossible).unwrap(), None);
    }

    #[test]
    fn cross_bucket_independence() {
        let space = demo_space();
        let a = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let b = Formula::Atom(Atom::new(TupleId(3), SValue(2)));
        let pa = space.probability(&a).unwrap();
        let pb = space.probability(&b).unwrap();
        let pab = space.probability(&Formula::and([a, b])).unwrap();
        assert_eq!(pab, pa * pb);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = WorldSpace::new(vec![BucketSpec::new(persons(&[0, 1]), sv(&[0]))]).unwrap_err();
        assert!(matches!(err, WorldsError::BucketArity { .. }));
    }

    #[test]
    fn duplicate_person_rejected() {
        let err = WorldSpace::new(vec![
            BucketSpec::new(persons(&[0]), sv(&[0])),
            BucketSpec::new(persons(&[0]), sv(&[1])),
        ])
        .unwrap_err();
        assert_eq!(err, WorldsError::DuplicatePerson(TupleId(0)));
    }

    #[test]
    fn unknown_person_in_formula_rejected() {
        let space = demo_space();
        let f = Formula::Atom(Atom::new(TupleId(99), SValue(0)));
        assert_eq!(
            space.count_models(&f).unwrap_err(),
            WorldsError::UnknownPerson(TupleId(99))
        );
    }

    #[test]
    fn value_universe_sorted_distinct() {
        assert_eq!(demo_space().value_universe(), sv(&[0, 1, 2, 3]));
    }

    #[test]
    fn probability_f64_matches_rational() {
        let space = demo_space();
        let formulas = vec![
            Formula::Atom(Atom::new(TupleId(0), SValue(0))),
            Formula::and([
                Formula::Atom(Atom::new(TupleId(0), SValue(0))),
                Formula::Atom(Atom::new(TupleId(3), SValue(3))),
            ]),
            Formula::implies(
                Formula::Atom(Atom::new(TupleId(4), SValue(2))),
                Formula::Atom(Atom::new(TupleId(2), SValue(1))),
            ),
            Formula::not(Formula::Atom(Atom::new(TupleId(1), SValue(0)))),
        ];
        for f in formulas {
            let exact = space.probability(&f).unwrap().to_f64();
            let float = space.probability_f64(&f).unwrap();
            assert!((exact - float).abs() < 1e-12, "formula {f}");
        }
    }

    #[test]
    fn probability_f64_handles_huge_buckets() {
        // A bucket large enough that multinomial completions overflow u128:
        // 60 distinct values x 40 copies = 2400 tuples.
        let members: Vec<TupleId> = (0..2400u32).map(TupleId).collect();
        let values: Vec<SValue> = (0..2400u32).map(|i| SValue(i % 60)).collect();
        let space = WorldSpace::new(vec![BucketSpec::new(members, values)]).unwrap();
        assert_eq!(space.n_worlds(), None);
        // Counting paths refuse, the float path works.
        let f0 = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        assert!(matches!(
            space.count_models(&f0),
            Err(WorldsError::TooManyWorlds)
        ));
        let p = space.probability_f64(&f0).unwrap();
        assert!((p - 40.0 / 2400.0).abs() < 1e-12);
        // Smaller but still multinomial-heavy: 30 values x 12 copies = 360.
        let members: Vec<TupleId> = (0..360u32).map(TupleId).collect();
        let values: Vec<SValue> = (0..360u32).map(|i| SValue(i % 30)).collect();
        let space = WorldSpace::new(vec![BucketSpec::new(members, values)]).unwrap();
        // Pr(t0 = v0) = 12/360.
        let f = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let p = space.probability_f64(&f).unwrap();
        assert!((p - 12.0 / 360.0).abs() < 1e-12);
        // Two-person joint: Pr(t0 = v0 ∧ t1 = v0) = (12/360)(11/359).
        let f2 = Formula::and([
            Formula::Atom(Atom::new(TupleId(0), SValue(0))),
            Formula::Atom(Atom::new(TupleId(1), SValue(0))),
        ]);
        let p2 = space.probability_f64(&f2).unwrap();
        assert!((p2 - (12.0 / 360.0) * (11.0 / 359.0)).abs() < 1e-12);
    }

    #[test]
    fn conditional_f64_matches_rational() {
        let space = demo_space();
        let target = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let given = Formula::Atom(Atom::new(TupleId(1), SValue(1)));
        assert_eq!(space.conditional_f64(&target, &given).unwrap(), Some(1.0));
        let impossible = Formula::Atom(Atom::new(TupleId(1), SValue(9)));
        assert_eq!(space.conditional_f64(&target, &impossible).unwrap(), None);
    }

    #[test]
    fn empty_space_has_one_world() {
        let space = WorldSpace::new(vec![]).unwrap();
        assert_eq!(space.n_worlds(), Some(1));
        let mut n = 0;
        space.for_each_world(|_| n += 1);
        assert_eq!(n, 1);
    }
}
