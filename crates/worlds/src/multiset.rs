//! Multiset permutations.
//!
//! A bucket publishes a *multiset* of sensitive values; a world assigns that
//! multiset to the bucket's members. Distinct assignments are exactly the
//! distinct permutations of the multiset, and they are uniformly likely
//! (every distinct assignment is produced by the same number `∏_s n_b(s)!` of
//! raw permutations).

/// Advances `items` to its next lexicographic permutation.
///
/// Returns `false` (leaving `items` sorted ascending, i.e. wrapped around)
/// when `items` was the last permutation. Handles repeated elements
/// correctly, yielding each distinct arrangement exactly once when started
/// from sorted order.
pub fn next_permutation<T: Ord>(items: &mut [T]) -> bool {
    let n = items.len();
    if n < 2 {
        return false;
    }
    // Find the longest non-increasing suffix.
    let mut i = n - 1;
    while i > 0 && items[i - 1] >= items[i] {
        i -= 1;
    }
    if i == 0 {
        items.reverse();
        return false;
    }
    // items[i-1] is the pivot; find rightmost element greater than it.
    let mut j = n - 1;
    while items[j] <= items[i - 1] {
        j -= 1;
    }
    items.swap(i - 1, j);
    items[i..].reverse();
    true
}

/// Calls `visit` once per distinct permutation of `items` (which is consumed
/// as scratch space and must be handed in **sorted ascending** to guarantee
/// full coverage).
pub fn for_each_permutation<T: Ord, F: FnMut(&[T])>(items: &mut [T], mut visit: F) {
    debug_assert!(
        items.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    loop {
        visit(items);
        if !next_permutation(items) {
            return;
        }
    }
}

/// Number of distinct permutations of a multiset given by `counts`
/// (a multinomial coefficient), or `None` on `u128` overflow.
pub fn multinomial(counts: &[u64]) -> Option<u128> {
    let mut result: u128 = 1;
    let mut placed: u64 = 0;
    for &c in counts {
        for i in 1..=c {
            placed += 1;
            // result *= placed / i, computed exactly: result * placed is
            // always divisible by i! accumulated stepwise.
            result = result.checked_mul(placed as u128)?;
            result /= i as u128;
        }
    }
    Some(result)
}

/// Factorial as u128, or `None` on overflow.
pub fn factorial(n: u64) -> Option<u128> {
    let mut result: u128 = 1;
    for i in 2..=n as u128 {
        result = result.checked_mul(i)?;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutations_of_distinct_elements() {
        let mut v = vec![1, 2, 3];
        let mut seen = Vec::new();
        for_each_permutation(&mut v, |p| seen.push(p.to_vec()));
        assert_eq!(seen.len(), 6);
        let set: HashSet<_> = seen.iter().cloned().collect();
        assert_eq!(set.len(), 6);
        assert_eq!(seen[0], vec![1, 2, 3]);
        assert_eq!(seen[5], vec![3, 2, 1]);
    }

    #[test]
    fn permutations_of_multiset_are_distinct() {
        let mut v = vec![0, 0, 1, 1];
        let mut seen = Vec::new();
        for_each_permutation(&mut v, |p| seen.push(p.to_vec()));
        // 4!/(2!2!) = 6 distinct arrangements.
        assert_eq!(seen.len(), 6);
        let set: HashSet<_> = seen.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn permutation_count_matches_multinomial() {
        let cases: Vec<Vec<u64>> = vec![vec![3], vec![2, 2], vec![2, 1, 1], vec![1, 1, 1, 1]];
        for counts in cases {
            let mut items = Vec::new();
            for (code, &c) in counts.iter().enumerate() {
                items.extend(std::iter::repeat_n(code, c as usize));
            }
            let mut n = 0u128;
            for_each_permutation(&mut items, |_| n += 1);
            assert_eq!(Some(n), multinomial(&counts), "counts {counts:?}");
        }
    }

    #[test]
    fn singleton_and_empty() {
        let mut v: Vec<u32> = vec![];
        let mut n = 0;
        for_each_permutation(&mut v, |_| n += 1);
        assert_eq!(n, 1);
        let mut v = vec![42];
        let mut n = 0;
        for_each_permutation(&mut v, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn next_permutation_wraps_to_sorted() {
        let mut v = vec![3, 2, 1];
        assert!(!next_permutation(&mut v));
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn multinomial_values() {
        assert_eq!(multinomial(&[5]), Some(1));
        assert_eq!(multinomial(&[2, 2, 1]), Some(30));
        assert_eq!(multinomial(&[1, 1, 1]), Some(6));
        assert_eq!(multinomial(&[]), Some(1));
    }

    #[test]
    fn factorial_values_and_overflow() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(20), Some(2_432_902_008_176_640_000));
        assert!(factorial(34).is_some()); // largest factorial fitting u128
        assert!(factorial(35).is_none()); // overflows
    }
}
