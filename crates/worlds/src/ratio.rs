//! Exact rational arithmetic on `i128`.
//!
//! Used for the ground-truth probability computations on small instances.
//! All operations check for overflow and panic with a clear message if the
//! exact computation leaves `i128` range — the caller (tests, examples)
//! controls instance sizes, so this never fires in practice.

/// An exact rational number `num / den` with `den > 0`, always reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num / den`, reducing and normalizing the sign.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "Ratio denominator must be non-zero");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// Creates the integer `n`.
    pub fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// Creates `num / den` from unsigned counts.
    ///
    /// # Panics
    /// If either value exceeds `i128::MAX` or `den == 0`.
    pub fn from_counts(num: u128, den: u128) -> Ratio {
        let num = i128::try_from(num).expect("count exceeds i128 in exact arithmetic");
        let den = i128::try_from(den).expect("count exceeds i128 in exact arithmetic");
        Ratio::new(num, den)
    }

    /// Numerator (reduced form, sign carried here).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (reduced form, always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// If the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "cannot invert zero");
        Ratio::new(self.den, self.num)
    }

    fn checked_op(a: i128, b: i128, what: &str) -> i128 {
        a.checked_mul(b)
            .unwrap_or_else(|| panic!("exact rational overflow during {what}"))
    }
}

impl std::ops::Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // Reduce cross terms first to delay overflow.
        let g = gcd(self.den, rhs.den);
        let lden = self.den / g;
        let rden = rhs.den / g;
        let num = Ratio::checked_op(self.num, rden, "add")
            .checked_add(Ratio::checked_op(rhs.num, lden, "add"))
            .expect("exact rational overflow during add");
        let den = Ratio::checked_op(self.den, rden, "add");
        Ratio::new(num, den)
    }
}

impl std::ops::Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + Ratio::new(-rhs.num, rhs.den)
    }
}

impl std::ops::Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Ratio::checked_op(self.num / g1, rhs.num / g2, "mul");
        let den = Ratio::checked_op(self.den / g2, rhs.den / g1, "mul");
        Ratio::new(num, den)
    }
}

impl std::ops::Div for Ratio {
    type Output = Ratio;
    // Division by the reciprocal reuses the cross-reducing multiply.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> std::cmp::Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        let lhs = Ratio::checked_op(self.num, other.den, "cmp");
        let rhs = Ratio::checked_op(other.num, self.den, "cmp");
        lhs.cmp(&rhs)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from_int(2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(10, 19).max(Ratio::new(1, 2)), Ratio::new(10, 19));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(10, 19).to_string(), "10/19");
        assert_eq!(Ratio::from_int(3).to_string(), "3");
    }

    #[test]
    fn to_f64_close() {
        assert!((Ratio::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn from_counts() {
        assert_eq!(Ratio::from_counts(10, 20), Ratio::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn recip_zero_panics() {
        Ratio::ZERO.recip();
    }

    #[test]
    fn large_reduction_avoids_overflow() {
        // (2^100 / 2^101) * (2^101 / 2^100) = 1 without overflowing i128
        let big = 1i128 << 100;
        let a = Ratio::new(big, big * 2);
        let b = Ratio::new(big * 2, big);
        assert_eq!(a * b, Ratio::ONE);
    }
}
