//! The constructive side of Theorem 3 (completeness).
//!
//! Given full identification information, *any* predicate on tables can be
//! expressed as a finite conjunction of basic implications. The construction:
//! a predicate is equivalent to excluding the set of worlds where it fails,
//! and a single world `w` is excluded by the basic implication
//!
//! ```text
//! (∧_{p} t_p[S] = w(p))  →  (∨_{s ≠ w(p₀)} t_{p₀}[S] = s)
//! ```
//!
//! whose antecedent pins down every person's value (so it fires exactly in
//! `w`) and whose consequent is false in `w` (and `p₀` is chosen so a false
//! consequent exists). As the paper notes, this blows up exponentially in
//! general — the point of the theorem is expressiveness, not succinctness.

use wcbk_logic::{Atom, BasicImplication, Knowledge};
use wcbk_table::SValue;

use crate::{WorldSpace, WorldsError};

/// Errors specific to predicate compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletenessError {
    /// The predicate excludes every world — no knowledge formula consistent
    /// with the bucketization can express it.
    Unsatisfiable,
    /// A world must be excluded but every person's bucket has a single
    /// distinct value, so no falsifiable consequent exists. (Only possible
    /// when the world space has exactly one world, which reduces to
    /// `Unsatisfiable`.)
    NoFalsifiableConsequent,
    /// Underlying world-space failure.
    Worlds(WorldsError),
}

impl std::fmt::Display for CompletenessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompletenessError::Unsatisfiable => {
                write!(f, "predicate excludes every world consistent with B")
            }
            CompletenessError::NoFalsifiableConsequent => {
                write!(f, "no atom can be falsified: every bucket is constant")
            }
            CompletenessError::Worlds(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompletenessError {}

impl From<WorldsError> for CompletenessError {
    fn from(e: WorldsError) -> Self {
        CompletenessError::Worlds(e)
    }
}

/// Compiles `predicate` (over worlds of `space`) into a conjunction of basic
/// implications `φ` such that for every world `w` of the space,
/// `φ` holds in `w` iff `predicate(w)`.
///
/// The size of the result is the number of excluded worlds — exponential in
/// general (see the paper's discussion after Theorem 3).
pub fn compile_predicate<P: FnMut(&[SValue]) -> bool>(
    space: &WorldSpace,
    mut predicate: P,
) -> Result<Knowledge, CompletenessError> {
    let persons = space.persons();
    let mut implications: Vec<BasicImplication> = Vec::new();
    let mut any_world_kept = false;
    let mut failure: Option<CompletenessError> = None;

    space.for_each_world(|w| {
        if failure.is_some() {
            return;
        }
        if predicate(w) {
            any_world_kept = true;
            return;
        }
        // Build the excluding implication for this world.
        let antecedents: Vec<Atom> = persons
            .iter()
            .map(|&p| Atom::new(p, w[p.index()]))
            .collect();
        // Find a person whose bucket offers a value different from w(p).
        let consequent_atoms: Option<Vec<Atom>> = persons.iter().find_map(|&p| {
            let b = space.bucket_of(p).expect("person is in a bucket");
            let others: Vec<Atom> = space
                .value_counts(b)
                .iter()
                .map(|&(v, _)| v)
                .filter(|&v| v != w[p.index()])
                .map(|v| Atom::new(p, v))
                .collect();
            if others.is_empty() {
                None
            } else {
                Some(others)
            }
        });
        match consequent_atoms {
            Some(consequents) => {
                implications.push(
                    BasicImplication::new(antecedents, consequents)
                        .expect("both sides nonempty by construction"),
                );
            }
            None => failure = Some(CompletenessError::NoFalsifiableConsequent),
        }
    });

    if let Some(f) = failure {
        return Err(f);
    }
    if !any_world_kept {
        return Err(CompletenessError::Unsatisfiable);
    }
    Ok(Knowledge::from_implications(implications))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;
    use wcbk_table::TupleId;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    fn space() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2]), sv(&[0, 0, 1])),
            BucketSpec::new(persons(&[3, 4]), sv(&[2, 3])),
        ])
        .unwrap()
    }

    /// The compiled knowledge must hold in exactly the predicate's worlds.
    fn assert_equivalent<P: Fn(&[SValue]) -> bool>(space: &WorldSpace, pred: P) {
        let knowledge = compile_predicate(space, |w| pred(w)).unwrap();
        space.for_each_world(|w| {
            assert_eq!(
                knowledge.holds(&w.to_vec()),
                pred(w),
                "world {w:?} disagrees"
            );
        });
    }

    #[test]
    fn compiles_simple_atom_predicate() {
        assert_equivalent(&space(), |w| w[0] == SValue(0));
    }

    #[test]
    fn compiles_cross_bucket_predicate() {
        // "t0 and t3 do not both have their first value" — a correlation
        // not expressible with negated atoms alone.
        assert_equivalent(&space(), |w| !(w[0] == SValue(0) && w[3] == SValue(2)));
    }

    #[test]
    fn compiles_parity_style_predicate() {
        // An arbitrary "weird" predicate: value codes of t1 and t4 sum even.
        assert_equivalent(&space(), |w| (w[1].0 + w[4].0) % 2 == 0);
    }

    #[test]
    fn compiles_tautology_to_empty_knowledge() {
        let k = compile_predicate(&space(), |_| true).unwrap();
        assert!(k.is_empty());
    }

    #[test]
    fn unsatisfiable_predicate_rejected() {
        let err = compile_predicate(&space(), |_| false).unwrap_err();
        assert_eq!(err, CompletenessError::Unsatisfiable);
    }

    #[test]
    fn conditioning_on_compiled_knowledge_matches_direct_conditioning() {
        use wcbk_logic::Formula;
        let space = space();
        let pred = |w: &[SValue]| w[2] == SValue(1) || w[3] == SValue(3);
        let knowledge = compile_predicate(&space, pred).unwrap();

        // Direct: count worlds with predicate (and target) by enumeration.
        let mut n_pred = 0u128;
        let mut n_joint = 0u128;
        space.for_each_world(|w| {
            if pred(w) {
                n_pred += 1;
                if w[0] == SValue(0) {
                    n_joint += 1;
                }
            }
        });

        // Via language: Pr(t0=0 | B ∧ compiled).
        let target = Formula::Atom(Atom::new(TupleId(0), SValue(0)));
        let p = space
            .conditional(&target, &knowledge.to_formula())
            .unwrap()
            .unwrap();
        assert_eq!(p, crate::Ratio::from_counts(n_joint, n_pred));
    }

    #[test]
    fn single_world_space_cannot_exclude() {
        // One bucket, all values identical: exactly one world.
        let space = WorldSpace::new(vec![BucketSpec::new(persons(&[0, 1]), sv(&[7, 7]))]).unwrap();
        let err = compile_predicate(&space, |_| false).unwrap_err();
        // The only world cannot be excluded: no falsifiable consequent.
        assert_eq!(err, CompletenessError::NoFalsifiableConsequent);
    }
}
