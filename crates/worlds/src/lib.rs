//! # wcbk-worlds — exact random-worlds inference
//!
//! The paper's probability model (Section 2.2): given a published
//! bucketization `B`, the attacker considers all tables consistent with `B`
//! equally likely (*random worlds assumption* [Bacchus et al.]). A **world**
//! is one assignment of each bucket's sensitive-value multiset to its
//! members; since every distinct assignment arises from the same number of
//! permutations, worlds are uniform.
//!
//! This crate computes probabilities **exactly** over that distribution:
//!
//! * [`WorldSpace`] — the set of worlds of a bucketization, with full
//!   enumeration ([`WorldSpace::for_each_world`]) and *restricted*
//!   enumeration ([`WorldSpace::count_models`]) that only branches on the
//!   persons a formula mentions, weighting the remainder by multinomials.
//! * [`inference`] — `Pr(φ | B)`, `Pr(C | B ∧ φ)`, Definition 5 disclosure
//!   risk, and exhaustive maximum-disclosure search over `L^k` used to
//!   validate Theorem 9 on small instances.
//! * [`consistency`] — the NP-complete problem of Theorem 8: is a
//!   bucketization consistent with a conjunction of simple implications?
//!   (backtracking with forward checking), plus `#P`-style model counting.
//! * [`completeness`] — the constructive Theorem 3: compile an arbitrary
//!   predicate on tables into a conjunction of basic implications.
//! * [`Ratio`] — exact rational arithmetic on `i128` (the sanctioned crate
//!   list has no bignum crate; all exact computations here are small).
//! * [`multiset`] — multiset permutation iteration, the combinatorial core.
//!
//! Everything here is exponential in the worst case — that is the point
//! (Theorem 8). The polynomial-time algorithms live in `wcbk-core`; this
//! crate is their ground truth.

pub mod approx;
pub mod completeness;
pub mod consistency;
pub mod inference;
pub mod multiset;
mod ratio;
pub mod soft;
mod space;

pub use ratio::Ratio;
pub use space::{BucketSpec, WorldSpace, WorldsError};
