//! Exact disclosure computations (Definitions 5 and 6) by enumeration.
//!
//! These routines are exponential — they exist as ground truth for the
//! polynomial algorithms in `wcbk-core` and to validate Theorem 9 by
//! exhaustive search over the language on small instances.

use wcbk_logic::language::{all_atoms, all_simple_implications, for_each_subset_up_to};
use wcbk_logic::{Atom, BasicImplication, Formula, Knowledge, SimpleImplication};
use wcbk_table::SValue;

use crate::{Ratio, WorldSpace, WorldsError};

/// The outcome of a worst-case search: the maximizing knowledge, the predicted
/// atom, and the disclosure value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxDisclosure {
    /// The maximum disclosure value.
    pub value: Ratio,
    /// A maximizing formula `φ`.
    pub knowledge: Knowledge,
    /// The atom `t_p[S] = s` attaining the maximum prediction.
    pub atom: Atom,
}

/// Definition 5: the disclosure risk of `B` w.r.t. fixed knowledge `φ`,
/// `max_{t,s} Pr(t[S]=s | B ∧ φ)`, together with an arg-max atom.
///
/// Returns `None` when `φ` is inconsistent with the bucketization.
pub fn disclosure_risk(
    space: &WorldSpace,
    knowledge: &Knowledge,
) -> Result<Option<(Ratio, Atom)>, WorldsError> {
    let given = knowledge.to_formula();
    let denom = space.count_models(&given)?;
    if denom == 0 {
        return Ok(None);
    }
    let mut best: Option<(Ratio, Atom)> = None;
    for b in 0..space.n_buckets() {
        for &p in space.members(b) {
            for &(v, _) in space.value_counts(b) {
                let atom = Atom::new(p, v);
                let joint = Formula::and([Formula::Atom(atom), given.clone()]);
                let num = space.count_models(&joint)?;
                let prob = Ratio::from_counts(num, denom);
                if best.as_ref().is_none_or(|(b, _)| prob > *b) {
                    best = Some((prob, atom));
                }
            }
        }
    }
    Ok(best)
}

/// Definition 6 by brute force over **simple implications**: the maximum of
/// `Pr(t[S]=s | B ∧ φ)` over all conjunctions of at most `k` simple
/// implications (and all `t`, `s`).
///
/// By Theorem 9 this equals the maximum over all of `L^k_basic`. `limit`
/// bounds the number of candidate conjunctions examined
/// (`Err(TooManyWorlds)` is returned when exceeded, reusing the error type's
/// "too big to enumerate" meaning).
pub fn max_disclosure_over_simple(
    space: &WorldSpace,
    k: usize,
    limit: u128,
) -> Result<MaxDisclosure, WorldsError> {
    let persons = space.persons();
    let values = space.value_universe();
    let atoms = all_atoms(&persons, &values);
    let universe = all_simple_implications(&atoms);
    search_over(space, &universe, k, limit, |imps| {
        Knowledge::from_simple(imps.iter().copied())
    })
}

/// Worst case over the **negated atom** sublanguage (the ℓ-diversity model):
/// conjunctions of at most `k` statements `¬ t_p[S]=s`.
pub fn max_disclosure_over_negations(
    space: &WorldSpace,
    k: usize,
    limit: u128,
) -> Result<MaxDisclosure, WorldsError> {
    let persons = space.persons();
    let values = space.value_universe();
    let atoms = all_atoms(&persons, &values);
    search_over(space, &atoms, k, limit, |negated| {
        Knowledge::from_implications(negated.iter().map(|a| {
            let witness = values
                .iter()
                .copied()
                .find(|&w| w != a.value)
                .unwrap_or(SValue(a.value.0 + 1));
            BasicImplication::negated_atom(a.person, a.value, witness)
                .expect("witness differs by construction")
        }))
    })
}

fn search_over<T: Copy, F: Fn(&[T]) -> Knowledge>(
    space: &WorldSpace,
    universe: &[T],
    k: usize,
    limit: u128,
    to_knowledge: F,
) -> Result<MaxDisclosure, WorldsError> {
    let mut n_candidates: u128 = 0;
    for size in 0..=k {
        n_candidates =
            n_candidates.saturating_add(wcbk_logic::language::binomial(universe.len(), size));
    }
    if n_candidates > limit {
        return Err(WorldsError::TooManyWorlds);
    }

    let mut best: Option<MaxDisclosure> = None;
    let mut error: Option<WorldsError> = None;
    for_each_subset_up_to(universe, k, true, |subset| {
        if error.is_some() {
            return;
        }
        let knowledge = to_knowledge(subset);
        match disclosure_risk(space, &knowledge) {
            Ok(Some((value, atom))) => {
                if best.as_ref().is_none_or(|b| value > b.value) {
                    best = Some(MaxDisclosure {
                        value,
                        knowledge,
                        atom,
                    });
                }
            }
            Ok(None) => {} // inconsistent with B: not admissible knowledge
            Err(e) => error = Some(e),
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    Ok(best.expect("empty knowledge is always consistent"))
}

/// Cost-weighted Definition 5: `max_{t,s} cost(s) · Pr(t[S]=s | B ∧ φ)`
/// for fixed knowledge `φ` (the §6 "cost-based disclosure" direction).
/// `costs` is indexed by sensitive-value code; missing entries weigh 1.
pub fn cost_disclosure_risk(
    space: &WorldSpace,
    knowledge: &Knowledge,
    costs: &[f64],
) -> Result<Option<(f64, Atom)>, WorldsError> {
    let given = knowledge.to_formula();
    let denom = space.count_models(&given)?;
    if denom == 0 {
        return Ok(None);
    }
    let mut best: Option<(f64, Atom)> = None;
    for b in 0..space.n_buckets() {
        for &p in space.members(b) {
            for &(v, _) in space.value_counts(b) {
                let atom = Atom::new(p, v);
                let joint = Formula::and([Formula::Atom(atom), given.clone()]);
                let num = space.count_models(&joint)?;
                let weight = costs.get(v.index()).copied().unwrap_or(1.0);
                let value = weight * num as f64 / denom as f64;
                if best.as_ref().is_none_or(|(bv, _)| value > *bv) {
                    best = Some((value, atom));
                }
            }
        }
    }
    Ok(best)
}

/// Convenience: `Pr(atom | B ∧ φ)` for a single target atom.
pub fn atom_probability_given(
    space: &WorldSpace,
    atom: Atom,
    knowledge: &Knowledge,
) -> Result<Option<Ratio>, WorldsError> {
    space.conditional(&Formula::Atom(atom), &knowledge.to_formula())
}

/// Evaluates the same-consequent simple-implication form used by the DP:
/// `Pr(A | B ∧ ∧_i (A_i → A))` computed exactly.
pub fn same_consequent_disclosure(
    space: &WorldSpace,
    antecedents: &[Atom],
    consequent: Atom,
) -> Result<Option<Ratio>, WorldsError> {
    let knowledge = Knowledge::from_simple(
        antecedents
            .iter()
            .map(|&a| SimpleImplication::new(a, consequent)),
    );
    atom_probability_given(space, consequent, &knowledge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;
    use wcbk_table::TupleId;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    fn persons(ids: &[u32]) -> Vec<TupleId> {
        ids.iter().map(|&i| TupleId(i)).collect()
    }

    /// The Figure 3 bucketization: males {Flu,Flu,LC,LC,Mumps} = {0,0,1,1,2},
    /// females {Flu,Flu,BC,OC,HD} = {0,0,3,4,5}.
    /// Persons 0..4 male bucket (Bob,Charlie,Dave,Ed,Frank),
    /// 5..9 female (Gloria,Hannah,Irma,Jessica,Karen).
    fn figure3() -> WorldSpace {
        WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2, 3, 4]), sv(&[0, 0, 1, 1, 2])),
            BucketSpec::new(persons(&[5, 6, 7, 8, 9]), sv(&[0, 0, 3, 4, 5])),
        ])
        .unwrap()
    }

    #[test]
    fn no_knowledge_risk_is_top_frequency() {
        let space = figure3();
        let (risk, _) = disclosure_risk(&space, &Knowledge::none())
            .unwrap()
            .unwrap();
        assert_eq!(risk, Ratio::new(2, 5));
    }

    #[test]
    fn hannah_charlie_example_is_ten_nineteenths() {
        // Section 1 / 2.3: φ = (t_Hannah=flu → t_Charlie=flu) lifts
        // Pr(t_Charlie = flu) from 2/5 to 10/19. Hannah is person 6,
        // Charlie person 1, flu is value 0.
        let space = figure3();
        let phi = Knowledge::from_simple([SimpleImplication::new(
            Atom::new(TupleId(6), SValue(0)),
            Atom::new(TupleId(1), SValue(0)),
        )]);
        let p = atom_probability_given(&space, Atom::new(TupleId(1), SValue(0)), &phi)
            .unwrap()
            .unwrap();
        assert_eq!(p, Ratio::new(10, 19));
    }

    #[test]
    fn ed_ruling_out_mumps_then_flu() {
        // Section 1: Ed (person 3, male bucket). Ruling out mumps:
        // Pr(lung cancer) = 1/2; also ruling out flu: certainty.
        let space = figure3();
        let lung = Atom::new(TupleId(3), SValue(1));
        let not_mumps = Knowledge::from_implications([BasicImplication::negated_atom(
            TupleId(3),
            SValue(2),
            SValue(0),
        )
        .unwrap()]);
        let p = atom_probability_given(&space, lung, &not_mumps)
            .unwrap()
            .unwrap();
        assert_eq!(p, Ratio::new(1, 2));

        let mut both = not_mumps.clone();
        both.push(BasicImplication::negated_atom(TupleId(3), SValue(0), SValue(1)).unwrap());
        let p = atom_probability_given(&space, lung, &both)
            .unwrap()
            .unwrap();
        assert_eq!(p, Ratio::ONE);
    }

    #[test]
    fn max_disclosure_k1_on_figure3_is_two_thirds() {
        // The paper's prose claims 10/19, but its own language admits the
        // negation-equivalent implication (t_p=lung → t_p=flu) with
        // disclosure (2/5)/(3/5) = 2/3 > 10/19. Exhaustive search over a
        // reduced variant (one bucket suffices to exhibit the max) confirms
        // 2/3; the full-table search is exercised in integration tests.
        let space = WorldSpace::new(vec![BucketSpec::new(
            persons(&[0, 1, 2, 3, 4]),
            sv(&[0, 0, 1, 1, 2]),
        )])
        .unwrap();
        let best = max_disclosure_over_simple(&space, 1, 2_000_000).unwrap();
        assert_eq!(best.value, Ratio::new(2, 3));
    }

    #[test]
    fn negation_search_matches_frequency_formula() {
        // Bucket {0,0,1,2}: best single negation rules out value 1 (or 2)
        // for the target person: 2/(4-1) = 2/3.
        let space = WorldSpace::new(vec![BucketSpec::new(
            persons(&[0, 1, 2, 3]),
            sv(&[0, 0, 1, 2]),
        )])
        .unwrap();
        let best = max_disclosure_over_negations(&space, 1, 1_000_000).unwrap();
        assert_eq!(best.value, Ratio::new(2, 3));
        let best2 = max_disclosure_over_negations(&space, 2, 1_000_000).unwrap();
        assert_eq!(best2.value, Ratio::ONE);
    }

    #[test]
    fn implications_dominate_negations() {
        let space = WorldSpace::new(vec![
            BucketSpec::new(persons(&[0, 1, 2]), sv(&[0, 1, 2])),
            BucketSpec::new(persons(&[3, 4]), sv(&[0, 1])),
        ])
        .unwrap();
        for k in 0..=2 {
            let imp = max_disclosure_over_simple(&space, k, 10_000_000).unwrap();
            let neg = max_disclosure_over_negations(&space, k, 10_000_000).unwrap();
            assert!(imp.value >= neg.value, "k={k}");
        }
    }

    #[test]
    fn limit_guard_trips() {
        let space = figure3();
        assert_eq!(
            max_disclosure_over_simple(&space, 3, 10).unwrap_err(),
            WorldsError::TooManyWorlds
        );
    }

    #[test]
    fn same_consequent_helper_agrees_with_manual() {
        let space = figure3();
        let consequent = Atom::new(TupleId(1), SValue(0));
        let p = same_consequent_disclosure(&space, &[Atom::new(TupleId(6), SValue(0))], consequent)
            .unwrap()
            .unwrap();
        assert_eq!(p, Ratio::new(10, 19));
    }
}
