//! Property-based validation of the exact engine: restricted enumeration,
//! backtracking consistency, the completeness compiler and the rational
//! arithmetic all agree with full world enumeration.

use proptest::prelude::*;

use wcbk_logic::{Atom, Formula, Knowledge, SimpleImplication};
use wcbk_table::{SValue, TupleId};
use wcbk_worlds::consistency::{count_satisfying_worlds, is_consistent};
use wcbk_worlds::multiset::{multinomial, next_permutation};
use wcbk_worlds::{BucketSpec, Ratio, WorldSpace};

/// Strategy: a small world space (1..=3 buckets, 1..=4 tuples each, values
/// in 0..3).
fn small_space() -> impl Strategy<Value = WorldSpace> {
    prop::collection::vec(prop::collection::vec(0u32..3, 1..=4), 1..=3).prop_map(|groups| {
        let mut next = 0u32;
        let specs: Vec<BucketSpec> = groups
            .into_iter()
            .map(|vals| {
                let members: Vec<TupleId> = (0..vals.len())
                    .map(|_| {
                        let t = TupleId(next);
                        next += 1;
                        t
                    })
                    .collect();
                BucketSpec::new(members, vals.into_iter().map(SValue).collect())
            })
            .collect();
        WorldSpace::new(specs).unwrap()
    })
}

/// Strategy: a random simple implication over the space's persons/values.
fn implications(n_persons: u32) -> impl Strategy<Value = Vec<SimpleImplication>> {
    prop::collection::vec((0..n_persons, 0u32..3, 0..n_persons, 0u32..3), 0..=3).prop_map(|raw| {
        raw.into_iter()
            .map(|(pa, va, pc, vc)| {
                SimpleImplication::new(
                    Atom::new(TupleId(pa), SValue(va)),
                    Atom::new(TupleId(pc), SValue(vc)),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Restricted enumeration (count_models) == full enumeration, for
    /// arbitrary conjunctions of implications.
    #[test]
    fn count_models_matches_full_enumeration(space in small_space(), seed_imps in implications(12)) {
        let imps: Vec<SimpleImplication> = seed_imps
            .into_iter()
            .map(|mut imp| {
                // Remap persons into range.
                let n = space.n_persons() as u32;
                imp.antecedent.person = TupleId(imp.antecedent.person.0 % n);
                imp.consequent.person = TupleId(imp.consequent.person.0 % n);
                imp
            })
            .collect();
        let knowledge = Knowledge::from_simple(imps.iter().copied());
        let formula = knowledge.to_formula();
        let restricted = space.count_models(&formula).unwrap();
        let mut full = 0u128;
        space.for_each_world(|w| {
            if formula.eval(w) {
                full += 1;
            }
        });
        prop_assert_eq!(restricted, full);

        // The backtracking counter agrees too, and decision == (count > 0).
        let via_backtracking = count_satisfying_worlds(&space, &imps).unwrap();
        prop_assert_eq!(via_backtracking, full);
        prop_assert_eq!(is_consistent(&space, &imps).unwrap(), full > 0);
    }

    /// The value-aggregated float path equals the rational path on random
    /// implication conjunctions (soundness of the "other value" lumping).
    #[test]
    fn probability_f64_matches_rational_on_random_formulas(
        space in small_space(),
        seed_imps in implications(12),
    ) {
        let imps: Vec<SimpleImplication> = seed_imps
            .into_iter()
            .map(|mut imp| {
                let n = space.n_persons() as u32;
                imp.antecedent.person = TupleId(imp.antecedent.person.0 % n);
                imp.consequent.person = TupleId(imp.consequent.person.0 % n);
                imp
            })
            .collect();
        let formula = Knowledge::from_simple(imps.iter().copied()).to_formula();
        let exact = space.probability(&formula).unwrap().to_f64();
        let float = space.probability_f64(&formula).unwrap();
        prop_assert!((exact - float).abs() < 1e-12, "exact {exact} vs float {float}");
    }

    /// World counts equal the product of multinomials, and enumeration
    /// yields exactly that many distinct worlds.
    #[test]
    fn world_count_matches_enumeration(space in small_space()) {
        let mut seen = std::collections::HashSet::new();
        space.for_each_world(|w| { seen.insert(w.to_vec()); });
        prop_assert_eq!(Some(seen.len() as u128), space.n_worlds());
    }

    /// Per-bucket marginals: Pr(t = s) = n_b(s)/n_b for every person/value.
    #[test]
    fn atom_marginals_are_frequencies(space in small_space()) {
        for b in 0..space.n_buckets() {
            let n = space.members(b).len() as i128;
            for &p in space.members(b) {
                for &(v, c) in space.value_counts(b) {
                    let f = Formula::Atom(Atom::new(p, v));
                    let pr = space.probability(&f).unwrap();
                    prop_assert_eq!(pr, Ratio::new(c as i128, n));
                }
            }
        }
    }

    /// The Theorem 3 compiler produces knowledge equivalent to the predicate
    /// on every world.
    #[test]
    fn completeness_compiler_equivalence(space in small_space(), target in 0u32..3) {
        prop_assume!(space.n_worlds().is_some_and(|n| n <= 2000));
        let persons = space.persons();
        let p0 = persons[0];
        let pred = move |w: &[SValue]| w[p0.index()] != SValue(target);
        match wcbk_worlds::completeness::compile_predicate(&space, pred) {
            Ok(knowledge) => {
                space.for_each_world(|w| {
                    assert_eq!(knowledge.holds(&w.to_vec()), pred(w));
                });
            }
            Err(wcbk_worlds::completeness::CompletenessError::Unsatisfiable) => {
                // Predicate false everywhere: person 0 always has `target`.
                space.for_each_world(|w| assert!(!pred(w)));
            }
            Err(wcbk_worlds::completeness::CompletenessError::NoFalsifiableConsequent) => {
                // Only possible when every bucket is constant.
                for b in 0..space.n_buckets() {
                    assert_eq!(space.value_counts(b).len(), 1);
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Multiset permutation machinery: distinct count == multinomial.
    #[test]
    fn permutation_count_is_multinomial(vals in prop::collection::vec(0u32..4, 1..=7)) {
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut counts: Vec<u64> = Vec::new();
        for w in sorted.chunk_by(|a, b| a == b) {
            counts.push(w.len() as u64);
        }
        let expected = multinomial(&counts).unwrap();
        let mut n = 0u128;
        let mut items = sorted.clone();
        loop {
            n += 1;
            if !next_permutation(&mut items) {
                break;
            }
        }
        prop_assert_eq!(n, expected);
        prop_assert_eq!(items, sorted); // wrapped back to start
    }

    /// Rational arithmetic laws on small operands.
    #[test]
    fn ratio_field_laws(a in -50i128..50, b in 1i128..20, c in -50i128..50, d in 1i128..20) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) - y, x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
        // Ordering consistency with f64.
        if x != y {
            prop_assert_eq!(x < y, x.to_f64() < y.to_f64());
        }
        // Distributivity.
        let z = Ratio::new(d, b);
        prop_assert_eq!(x * (y + z), x * y + x * z);
    }

    /// Conditional probabilities: chain rule Pr(A ∧ B) = Pr(A|B)·Pr(B).
    #[test]
    fn chain_rule_holds(space in small_space(), pa in 0u32..12, va in 0u32..3, pb in 0u32..12, vb in 0u32..3) {
        let n = space.n_persons() as u32;
        let a = Formula::Atom(Atom::new(TupleId(pa % n), SValue(va)));
        let b = Formula::Atom(Atom::new(TupleId(pb % n), SValue(vb)));
        let p_b = space.probability(&b).unwrap();
        let joint = space.probability(&Formula::and([a.clone(), b.clone()])).unwrap();
        match space.conditional(&a, &b).unwrap() {
            Some(cond) => prop_assert_eq!(cond * p_b, joint),
            None => prop_assert!(p_b.is_zero()),
        }
    }
}
