//! Attribute metadata: names and privacy roles.

use crate::TableError;

/// The privacy role an attribute plays during publishing.
///
/// The paper's model (Section 2) distinguishes the single sensitive attribute
/// `S` from non-sensitive attributes that an attacker may learn externally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Directly identifying (e.g. name); always fully masked before release.
    Identifier,
    /// Externally linkable (e.g. zip, age, sex); coarsened by generalization.
    QuasiIdentifier,
    /// The sensitive attribute `S` (e.g. disease); permuted within buckets.
    Sensitive,
    /// Neither identifying nor sensitive; released as-is.
    Insensitive,
}

impl AttributeKind {
    /// Whether the attribute is released in some (possibly coarsened) form.
    pub fn is_published(self) -> bool {
        !matches!(self, AttributeKind::Identifier)
    }
}

/// A named attribute with a privacy role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, kind: AttributeKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's privacy role.
    pub fn kind(&self) -> AttributeKind {
        self.kind
    }
}

/// An ordered list of attributes with exactly one sensitive attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    sensitive: usize,
}

impl Schema {
    /// Builds a schema, validating attribute-name uniqueness and that exactly
    /// one attribute is [`AttributeKind::Sensitive`].
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, TableError> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(TableError::DuplicateAttribute(a.name().to_owned()));
            }
        }
        let sensitive_indices: Vec<usize> = attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AttributeKind::Sensitive)
            .map(|(i, _)| i)
            .collect();
        if sensitive_indices.len() != 1 {
            return Err(TableError::SensitiveAttributeCount(sensitive_indices.len()));
        }
        Ok(Self {
            sensitive: sensitive_indices[0],
            attributes,
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Column index of the (unique) sensitive attribute.
    pub fn sensitive_index(&self) -> usize {
        self.sensitive
    }

    /// Column index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, TableError> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| TableError::UnknownAttribute(name.to_owned()))
    }

    /// Column indices of all quasi-identifier attributes, in column order.
    pub fn quasi_identifier_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AttributeKind::QuasiIdentifier)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("Name", AttributeKind::Identifier),
            Attribute::new("Zip", AttributeKind::QuasiIdentifier),
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap()
    }

    #[test]
    fn sensitive_index_is_found() {
        assert_eq!(demo_schema().sensitive_index(), 3);
    }

    #[test]
    fn quasi_identifiers_in_order() {
        assert_eq!(demo_schema().quasi_identifier_indices(), vec![1, 2]);
    }

    #[test]
    fn index_of_known_and_unknown() {
        let s = demo_schema();
        assert_eq!(s.index_of("Age").unwrap(), 2);
        assert!(matches!(
            s.index_of("Salary"),
            Err(TableError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn zero_sensitive_rejected() {
        let r = Schema::new(vec![Attribute::new("A", AttributeKind::QuasiIdentifier)]);
        assert!(matches!(r, Err(TableError::SensitiveAttributeCount(0))));
    }

    #[test]
    fn two_sensitive_rejected() {
        let r = Schema::new(vec![
            Attribute::new("A", AttributeKind::Sensitive),
            Attribute::new("B", AttributeKind::Sensitive),
        ]);
        assert!(matches!(r, Err(TableError::SensitiveAttributeCount(2))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Attribute::new("A", AttributeKind::QuasiIdentifier),
            Attribute::new("A", AttributeKind::Sensitive),
        ]);
        assert!(matches!(r, Err(TableError::DuplicateAttribute(_))));
    }

    #[test]
    fn identifier_not_published() {
        assert!(!AttributeKind::Identifier.is_published());
        assert!(AttributeKind::Sensitive.is_published());
    }
}
