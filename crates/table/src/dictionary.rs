//! String interner used for per-column dictionary encoding.

use std::collections::HashMap;

/// A bidirectional mapping between strings and dense `u32` codes.
///
/// Codes are assigned in first-seen order starting from 0, so a dictionary of
/// `n` distinct values uses exactly the codes `0..n`. Downstream algorithms
/// rely on this density (e.g. histograms indexed by code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-populated with `values` in order.
    ///
    /// Duplicate entries map to the first occurrence's code.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = Self::new();
        for v in values {
            dict.intern(v.as_ref());
        }
        dict
    }

    /// Returns the code for `value`, inserting it if absent.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary exceeds u32 codes");
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        code
    }

    /// Returns the code for `value` if it has been interned.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Returns the string for `code`, or `None` if the code is out of range.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Returns the string for `code`, panicking on out-of-range codes.
    ///
    /// Intended for codes that were produced by this dictionary.
    pub fn resolve(&self, code: u32) -> &str {
        self.get(code).expect("dictionary code out of range")
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }

    /// All interned values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("flu"), 0);
        assert_eq!(d.intern("cancer"), 1);
        assert_eq!(d.intern("flu"), 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn code_and_get_are_inverse() {
        let mut d = Dictionary::new();
        for v in ["a", "b", "c"] {
            d.intern(v);
        }
        for v in ["a", "b", "c"] {
            let c = d.code(v).unwrap();
            assert_eq!(d.get(c), Some(v));
        }
        assert_eq!(d.code("missing"), None);
        assert_eq!(d.get(99), None);
    }

    #[test]
    fn from_values_dedups() {
        let d = Dictionary::from_values(["x", "y", "x", "z"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code("z"), Some(2));
    }

    #[test]
    fn iter_in_code_order() {
        let d = Dictionary::from_values(["m", "n"]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "m"), (1, "n")]);
    }

    #[test]
    fn resolve_known_code() {
        let d = Dictionary::from_values(["only"]);
        assert_eq!(d.resolve(0), "only");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resolve_unknown_code_panics() {
        let d = Dictionary::new();
        d.resolve(0);
    }
}
