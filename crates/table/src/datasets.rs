//! Built-in example datasets.
//!
//! [`hospital_table`] reproduces Figure 1 of the paper — the running example
//! used throughout Sections 1–3 (Bob, Charlie, …, Karen). The 5-anonymous
//! bucketization of Figures 2/3 groups the five males (zip 1485*, age 2*) into
//! one bucket and the five females into another; that grouping is exposed as
//! [`hospital_bucket_of`] so downstream crates can rebuild Figure 3 exactly.

use crate::{Attribute, AttributeKind, Schema, Table, TableBuilder, TupleId};

/// Rows of Figure 1 in order: (Name, Zip, Age, Sex, Disease).
pub const HOSPITAL_ROWS: [[&str; 5]; 10] = [
    ["Bob", "14850", "23", "M", "Flu"],
    ["Charlie", "14850", "24", "M", "Flu"],
    ["Dave", "14850", "25", "M", "Lung Cancer"],
    ["Ed", "14850", "27", "M", "Lung Cancer"],
    ["Frank", "14853", "29", "M", "Mumps"],
    ["Gloria", "14850", "21", "F", "Flu"],
    ["Hannah", "14850", "22", "F", "Flu"],
    ["Irma", "14853", "24", "F", "Breast Cancer"],
    ["Jessica", "14853", "26", "F", "Ovarian Cancer"],
    ["Karen", "14853", "28", "F", "Heart Disease"],
];

/// The schema of the hospital example: Name is identifying, Zip/Age/Sex are
/// quasi-identifiers, Disease is sensitive.
pub fn hospital_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("Name", AttributeKind::Identifier),
        Attribute::new("Zip", AttributeKind::QuasiIdentifier),
        Attribute::new("Age", AttributeKind::QuasiIdentifier),
        Attribute::new("Sex", AttributeKind::QuasiIdentifier),
        Attribute::new("Disease", AttributeKind::Sensitive),
    ])
    .expect("hospital schema is valid")
}

/// Builds the original table `T` of Figure 1.
pub fn hospital_table() -> Table {
    let mut b = TableBuilder::new(hospital_schema());
    for row in &HOSPITAL_ROWS {
        b.push_row(row).expect("static rows match schema");
    }
    b.build()
}

/// The bucket (0 = males, 1 = females) each tuple falls into under the
/// 5-anonymous bucketization of Figures 2/3.
pub fn hospital_bucket_of(t: TupleId) -> usize {
    if t.index() < 5 {
        0
    } else {
        1
    }
}

/// Tuple id of a named person in the hospital table.
pub fn hospital_person(table: &Table, name: &str) -> Option<TupleId> {
    let col = table.column_by_name("Name").ok()?;
    (0..table.n_rows())
        .find(|&r| col.value(r) == name)
        .map(|r| TupleId(r as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_table_has_ten_tuples() {
        let t = hospital_table();
        assert_eq!(t.n_rows(), 10);
        assert_eq!(t.sensitive_cardinality(), 6);
    }

    #[test]
    fn ed_has_lung_cancer() {
        let t = hospital_table();
        let ed = hospital_person(&t, "Ed").unwrap();
        assert_eq!(
            t.sensitive_value(ed),
            t.sensitive_code("Lung Cancer").unwrap()
        );
    }

    #[test]
    fn buckets_split_by_sex() {
        let t = hospital_table();
        let sex = t.column_by_name("Sex").unwrap();
        for r in 0..t.n_rows() {
            let expected = if sex.value(r) == "M" { 0 } else { 1 };
            assert_eq!(hospital_bucket_of(TupleId(r as u32)), expected);
        }
    }

    #[test]
    fn unknown_person_is_none() {
        let t = hospital_table();
        assert!(hospital_person(&t, "Zelda").is_none());
    }

    #[test]
    fn male_bucket_histogram_matches_figure_3() {
        // Males: Flu x2, Lung Cancer x2, Mumps x1.
        let t = hospital_table();
        let mut counts = std::collections::HashMap::new();
        for r in 0..5 {
            *counts.entry(t.value(r, 4).to_owned()).or_insert(0) += 1;
        }
        assert_eq!(counts["Flu"], 2);
        assert_eq!(counts["Lung Cancer"], 2);
        assert_eq!(counts["Mumps"], 1);
    }
}
