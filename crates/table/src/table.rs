//! Columnar, dictionary-encoded tables.

use crate::{Dictionary, SValue, Schema, TableError, TupleId};

/// One dictionary-encoded column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    dict: Dictionary,
    codes: Vec<u32>,
}

impl Column {
    fn new() -> Self {
        Self {
            dict: Dictionary::new(),
            codes: Vec::new(),
        }
    }

    /// The column's dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Raw codes, one per row.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The code at `row`.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The decoded string at `row`.
    pub fn value(&self, row: usize) -> &str {
        self.dict.resolve(self.codes[row])
    }

    /// Number of distinct values appearing in the column.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Reassembles a column from a dictionary and pre-encoded codes — the
    /// inverse of reading [`Column::dictionary`] and [`Column::codes`], used
    /// when a persisted column block is loaded back. Every code must be in
    /// the dictionary's range.
    pub fn from_parts(dict: Dictionary, codes: Vec<u32>) -> Result<Self, TableError> {
        let n = dict.len() as u32;
        if let Some(&bad) = codes.iter().find(|&&c| c >= n) {
            return Err(TableError::InvalidParts(format!(
                "code {bad} out of range for a dictionary of {n} values"
            )));
        }
        Ok(Self { dict, codes })
    }
}

/// A dictionary-encoded table: the publisher's private table `T`.
///
/// Rows are persons ([`TupleId`] is the row position); columns follow the
/// [`Schema`]. Construction goes through [`TableBuilder`] (or the CSV loader)
/// so every row is validated against the schema arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The column at schema position `index`.
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// The column for the attribute called `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, TableError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The sensitive column.
    pub fn sensitive_column(&self) -> &Column {
        &self.columns[self.schema.sensitive_index()]
    }

    /// The sensitive value of tuple `t`.
    #[inline]
    pub fn sensitive_value(&self, t: TupleId) -> SValue {
        SValue(self.sensitive_column().code(t.index()))
    }

    /// The decoded string value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> &str {
        self.columns[col].value(row)
    }

    /// Cardinality of the sensitive domain as observed in the table.
    pub fn sensitive_cardinality(&self) -> usize {
        self.sensitive_column().cardinality()
    }

    /// Iterates over all tuple ids `t0..t(n-1)`.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.n_rows as u32).map(TupleId)
    }

    /// Decodes an entire row into owned strings (for display / export).
    pub fn row(&self, row: usize) -> Vec<String> {
        self.columns
            .iter()
            .map(|c| c.value(row).to_owned())
            .collect()
    }

    /// Looks up the sensitive-domain code for a value string.
    pub fn sensitive_code(&self, value: &str) -> Option<SValue> {
        self.sensitive_column().dictionary().code(value).map(SValue)
    }

    /// Reassembles a table from a schema and pre-encoded columns — the
    /// inverse of reading the accessors, used when a persisted table is
    /// loaded back. The column count must match the schema arity and every
    /// column must have the same number of rows; the result is `==` to the
    /// table the parts were read from.
    pub fn from_parts(schema: Schema, columns: Vec<Column>) -> Result<Self, TableError> {
        if columns.len() != schema.arity() {
            return Err(TableError::InvalidParts(format!(
                "{} columns for a schema of arity {}",
                columns.len(),
                schema.arity()
            )));
        }
        let n_rows = columns.first().map_or(0, |c| c.codes.len());
        if let Some((i, c)) = columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.codes.len() != n_rows)
        {
            return Err(TableError::InvalidParts(format!(
                "column {i} has {} rows, expected {n_rows}",
                c.codes.len()
            )));
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }
}

/// Incremental [`Table`] constructor.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl TableBuilder {
    /// Starts a builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::new()).collect();
        Self {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Appends one row of string fields; the arity must match the schema.
    pub fn push_row<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<TupleId, TableError> {
        if fields.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.arity(),
                found: fields.len(),
                row: self.n_rows,
            });
        }
        for (col, field) in self.columns.iter_mut().zip(fields) {
            let code = col.dict.intern(field.as_ref());
            col.codes.push(code);
        }
        let id = TupleId(self.n_rows as u32);
        self.n_rows += 1;
        Ok(id)
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The schema this builder validates rows against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finishes construction.
    pub fn build(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            n_rows: self.n_rows,
        }
    }
}

/// Default number of rows per code chunk in [`ChunkedTableBuilder`] —
/// matches the roll-up scan's chunk granularity so a streamed-in table is
/// already blocked the way the scanner will read it.
pub const DEFAULT_BUILDER_CHUNK_ROWS: usize = 65_536;

/// One column under chunked construction: the dictionary plus sealed
/// fixed-size code blocks. Once a block fills it is never touched again —
/// unlike a single growing `Vec<u32>`, no realloc ever re-copies codes that
/// are already encoded.
#[derive(Debug)]
struct ChunkedCodes {
    dict: Dictionary,
    chunks: Vec<Vec<u32>>,
}

impl ChunkedCodes {
    fn push(&mut self, code: u32, chunk_rows: usize) {
        match self.chunks.last_mut() {
            Some(chunk) if chunk.len() < chunk_rows => chunk.push(code),
            _ => {
                let mut chunk = Vec::with_capacity(chunk_rows);
                chunk.push(code);
                self.chunks.push(chunk);
            }
        }
    }
}

/// Streaming [`Table`] constructor: rows are dictionary-encoded into
/// fixed-size per-column code blocks **as they arrive**, so callers reading
/// from a wire or a file never materialize the decoded rows (no
/// `Vec<Vec<String>>` staging) and the already-encoded codes are never
/// re-copied by `Vec` growth. [`ChunkedTableBuilder::build`] assembles the
/// blocks into contiguous columns with one exact-capacity pass; the result
/// is **identical** (`==`) to pushing the same rows through
/// [`TableBuilder`].
#[derive(Debug)]
pub struct ChunkedTableBuilder {
    schema: Schema,
    columns: Vec<ChunkedCodes>,
    chunk_rows: usize,
    n_rows: usize,
}

impl ChunkedTableBuilder {
    /// Starts a chunked builder for `schema` with the default block size
    /// ([`DEFAULT_BUILDER_CHUNK_ROWS`]).
    pub fn new(schema: Schema) -> Self {
        Self::with_chunk_rows(schema, DEFAULT_BUILDER_CHUNK_ROWS)
    }

    /// Starts a chunked builder with an explicit rows-per-block size
    /// (`0` is treated as `1`). The block size only shapes memory traffic;
    /// the built table never depends on it.
    pub fn with_chunk_rows(schema: Schema, chunk_rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| ChunkedCodes {
                dict: Dictionary::new(),
                chunks: Vec::new(),
            })
            .collect();
        Self {
            schema,
            columns,
            chunk_rows: chunk_rows.max(1),
            n_rows: 0,
        }
    }

    /// Appends one row of string fields; the arity must match the schema.
    pub fn push_row<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<TupleId, TableError> {
        if fields.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.arity(),
                found: fields.len(),
                row: self.n_rows,
            });
        }
        for (col, field) in self.columns.iter_mut().zip(fields) {
            let code = col.dict.intern(field.as_ref());
            col.push(code, self.chunk_rows);
        }
        let id = TupleId(self.n_rows as u32);
        self.n_rows += 1;
        Ok(id)
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The schema this builder validates rows against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Assembles the sealed blocks into contiguous columns (one
    /// exact-capacity linear pass per column) and finishes construction.
    pub fn build(self) -> Table {
        let n_rows = self.n_rows;
        let columns = self
            .columns
            .into_iter()
            .map(|col| {
                let mut codes = Vec::with_capacity(n_rows);
                for chunk in &col.chunks {
                    codes.extend_from_slice(chunk);
                }
                Column {
                    dict: col.dict,
                    codes,
                }
            })
            .collect();
        Table {
            schema: self.schema,
            columns,
            n_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, AttributeKind};

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(&["23", "Flu"]).unwrap();
        b.push_row(&["24", "Flu"]).unwrap();
        b.push_row(&["25", "Cancer"]).unwrap();
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_tuple_ids() {
        let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
        let mut b = TableBuilder::new(schema);
        assert_eq!(b.push_row(&["x"]).unwrap(), TupleId(0));
        assert_eq!(b.push_row(&["y"]).unwrap(), TupleId(1));
        assert_eq!(b.n_rows(), 2);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
        let mut b = TableBuilder::new(schema);
        let err = b.push_row(&["a", "b"]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { .. }));
    }

    #[test]
    fn values_decode_back() {
        let t = demo_table();
        assert_eq!(t.value(0, 0), "23");
        assert_eq!(t.value(2, 1), "Cancer");
        assert_eq!(t.row(1), vec!["24".to_owned(), "Flu".to_owned()]);
    }

    #[test]
    fn sensitive_accessors() {
        let t = demo_table();
        assert_eq!(t.sensitive_cardinality(), 2);
        assert_eq!(t.sensitive_value(TupleId(0)), t.sensitive_value(TupleId(1)));
        assert_ne!(t.sensitive_value(TupleId(0)), t.sensitive_value(TupleId(2)));
        assert_eq!(t.sensitive_code("Flu"), Some(t.sensitive_value(TupleId(0))));
        assert_eq!(t.sensitive_code("Plague"), None);
    }

    #[test]
    fn shared_codes_for_equal_values() {
        let t = demo_table();
        let disease = t.column_by_name("Disease").unwrap();
        assert_eq!(disease.code(0), disease.code(1));
        assert_eq!(disease.cardinality(), 2);
    }

    #[test]
    fn tuple_ids_enumerates_all_rows() {
        let t = demo_table();
        let ids: Vec<_> = t.tuple_ids().collect();
        assert_eq!(ids, vec![TupleId(0), TupleId(1), TupleId(2)]);
    }

    #[test]
    fn empty_table_properties() {
        let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
        let t = TableBuilder::new(schema).build();
        assert!(t.is_empty());
        assert_eq!(t.sensitive_cardinality(), 0);
    }

    /// The chunked builder is bit-identical to the row builder for the same
    /// input, at every block size — including sizes that split the stream
    /// mid-column and the degenerate `0` (treated as 1).
    #[test]
    fn chunked_builder_matches_row_builder_across_chunk_sizes() {
        let schema = Schema::new(vec![
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Zip", AttributeKind::QuasiIdentifier),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap();
        let rows: Vec<[String; 3]> = (0..157)
            .map(|i| {
                [
                    format!("{}", 20 + i % 7),
                    format!("53{}", i % 11),
                    format!("D{}", i % 5),
                ]
            })
            .collect();
        let mut reference = TableBuilder::new(schema.clone());
        for row in &rows {
            reference.push_row(row).unwrap();
        }
        let reference = reference.build();
        for chunk_rows in [0, 1, 2, 3, 7, 64, 157, 1000] {
            let mut b = ChunkedTableBuilder::with_chunk_rows(schema.clone(), chunk_rows);
            for row in &rows {
                b.push_row(row).unwrap();
            }
            assert_eq!(b.n_rows(), rows.len());
            assert_eq!(b.build(), reference, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn chunked_builder_rejects_arity_mismatch() {
        let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
        let mut b = ChunkedTableBuilder::new(schema);
        assert_eq!(b.push_row(&["x"]).unwrap(), TupleId(0));
        let err = b.push_row(&["a", "b"]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { .. }));
        assert!(b.build().n_rows() == 1);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let t = demo_table();
        // Disassemble into (dictionary, codes) parts and reassemble.
        let columns: Vec<Column> = (0..t.schema().arity())
            .map(|i| {
                let c = t.column(i);
                Column::from_parts(c.dictionary().clone(), c.codes().to_vec()).unwrap()
            })
            .collect();
        let rebuilt = Table::from_parts(t.schema().clone(), columns).unwrap();
        assert_eq!(rebuilt, t);

        // Out-of-range code.
        let bad = Column::from_parts(Dictionary::from_values(["a"]), vec![0, 1]);
        assert!(matches!(bad, Err(TableError::InvalidParts(_))));
        // Arity mismatch.
        let bad = Table::from_parts(t.schema().clone(), Vec::new());
        assert!(matches!(bad, Err(TableError::InvalidParts(_))));
        // Ragged columns.
        let c0 = Column::from_parts(Dictionary::from_values(["x"]), vec![0, 0]).unwrap();
        let c1 = Column::from_parts(Dictionary::from_values(["y"]), vec![0]).unwrap();
        let bad = Table::from_parts(t.schema().clone(), vec![c0, c1]);
        assert!(matches!(bad, Err(TableError::InvalidParts(_))));
    }

    #[test]
    fn chunked_builder_empty_build() {
        let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
        let t = ChunkedTableBuilder::new(schema).build();
        assert!(t.is_empty());
    }
}
