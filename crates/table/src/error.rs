//! Error type for table construction and I/O.

use std::fmt;

/// Errors produced by the table substrate.
#[derive(Debug)]
pub enum TableError {
    /// A row had a different number of fields than the schema has attributes.
    ArityMismatch {
        /// Attributes in the schema.
        expected: usize,
        /// Fields in the offending row.
        found: usize,
        /// Zero-based row number (data rows, header excluded).
        row: usize,
    },
    /// The schema does not contain exactly one sensitive attribute.
    SensitiveAttributeCount(usize),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// Duplicate attribute name in a schema.
    DuplicateAttribute(String),
    /// Reconstructing a table from pre-encoded parts failed validation
    /// (codes out of dictionary range, ragged columns, arity mismatch).
    InvalidParts(String),
    /// Malformed CSV input.
    Csv {
        /// One-based line number where the problem was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch {
                expected,
                found,
                row,
            } => write!(
                f,
                "row {row} has {found} fields but the schema has {expected} attributes"
            ),
            TableError::SensitiveAttributeCount(n) => write!(
                f,
                "schema must contain exactly one sensitive attribute, found {n}"
            ),
            TableError::UnknownAttribute(name) => {
                write!(f, "attribute {name:?} not found in schema")
            }
            TableError::DuplicateAttribute(name) => {
                write!(f, "attribute {name:?} appears more than once in schema")
            }
            TableError::InvalidParts(m) => write!(f, "invalid table parts: {m}"),
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::ArityMismatch {
            expected: 5,
            found: 4,
            row: 3,
        };
        assert!(e.to_string().contains("row 3"));
        let e = TableError::SensitiveAttributeCount(2);
        assert!(e.to_string().contains("exactly one"));
        let e = TableError::UnknownAttribute("Disease".into());
        assert!(e.to_string().contains("Disease"));
        let e = TableError::Csv {
            line: 9,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 9"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = TableError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
