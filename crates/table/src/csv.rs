//! Minimal RFC-4180 CSV reader/writer.
//!
//! The sanctioned dependency set does not include a CSV crate, so this module
//! implements the subset needed by the workspace: quoted fields, embedded
//! separators/quotes/newlines, CR/LF handling, and streaming record reads.

use std::io::{BufRead, Write};

use crate::{Table, TableBuilder, TableError};

/// Streaming CSV record reader over any [`BufRead`].
#[derive(Debug)]
pub struct CsvReader<R> {
    inner: R,
    delimiter: u8,
    line: usize,
    buf: Vec<u8>,
}

impl<R: BufRead> CsvReader<R> {
    /// Creates a comma-separated reader.
    pub fn new(inner: R) -> Self {
        Self::with_delimiter(inner, b',')
    }

    /// Creates a reader with a custom single-byte delimiter.
    pub fn with_delimiter(inner: R, delimiter: u8) -> Self {
        Self {
            inner,
            delimiter,
            line: 0,
            buf: Vec::new(),
        }
    }

    /// One-based line number of the last record read.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Reads the next record, or `None` at end of input.
    ///
    /// A record may span multiple physical lines when a quoted field contains
    /// newlines. Blank lines are skipped.
    pub fn next_record(&mut self) -> Result<Option<Vec<String>>, TableError> {
        loop {
            self.buf.clear();
            let n = self.inner.read_until(b'\n', &mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line += 1;
            // Keep pulling physical lines while inside an unterminated quote.
            while has_open_quote(&self.buf) {
                let n = self.inner.read_until(b'\n', &mut self.buf)?;
                if n == 0 {
                    return Err(TableError::Csv {
                        line: self.line,
                        message: "unterminated quoted field at end of input".into(),
                    });
                }
                self.line += 1;
            }
            trim_trailing_newline(&mut self.buf);
            if self.buf.is_empty() {
                continue; // skip blank line
            }
            return parse_record(&self.buf, self.delimiter, self.line).map(Some);
        }
    }

    /// Reads all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<Vec<String>>, TableError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Push-based record splitter for CSV arriving in arbitrary byte slices
/// (e.g. decoded HTTP chunks), with the exact record semantics of
/// [`CsvReader`]: records may span physical lines inside quoted fields,
/// blank lines are skipped, and a trailing line without a newline is still
/// a record at [`finish`](Self::finish).
#[derive(Debug)]
pub struct RecordSplitter {
    delimiter: u8,
    buf: Vec<u8>,
    pos: usize,
    /// Physical lines of the record being assembled (quoted newlines).
    pending: Vec<u8>,
    line: usize,
}

impl Default for RecordSplitter {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordSplitter {
    /// Creates a comma-separated splitter.
    pub fn new() -> Self {
        Self {
            delimiter: b',',
            buf: Vec::new(),
            pos: 0,
            pending: Vec::new(),
            line: 0,
        }
    }

    /// One-based line number of the last physical line consumed.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Appends raw input bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete record, or `Ok(None)` when more input is
    /// needed — call again after [`push`](Self::push), or call
    /// [`finish`](Self::finish) at end of input.
    pub fn next_record(&mut self) -> Result<Option<Vec<String>>, TableError> {
        loop {
            let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            self.pending
                .extend_from_slice(&self.buf[self.pos..self.pos + nl + 1]);
            self.pos += nl + 1;
            self.line += 1;
            // Keep pulling physical lines while inside an open quote — the
            // same rule CsvReader applies when a quoted field spans lines.
            if has_open_quote(&self.pending) {
                continue;
            }
            let mut record = std::mem::take(&mut self.pending);
            trim_trailing_newline(&mut record);
            if record.is_empty() {
                continue; // skip blank line
            }
            return parse_record(&record, self.delimiter, self.line).map(Some);
        }
    }

    /// Ends the input: a trailing line without a newline is still a record;
    /// ending inside an open quote is the same error [`CsvReader`] reports
    /// at EOF.
    pub fn finish(&mut self) -> Result<Option<Vec<String>>, TableError> {
        if self.pos < self.buf.len() {
            self.pending.extend_from_slice(&self.buf[self.pos..]);
            self.pos = self.buf.len();
            self.line += 1;
        }
        let mut record = std::mem::take(&mut self.pending);
        if record.is_empty() {
            return Ok(None);
        }
        if has_open_quote(&record) {
            return Err(TableError::Csv {
                line: self.line,
                message: "unterminated quoted field at end of input".into(),
            });
        }
        trim_trailing_newline(&mut record);
        if record.is_empty() {
            return Ok(None);
        }
        parse_record(&record, self.delimiter, self.line).map(Some)
    }
}

fn trim_trailing_newline(buf: &mut Vec<u8>) {
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
}

/// Whether the raw line ends inside an open quoted field (so the record
/// continues on the next physical line).
fn has_open_quote(buf: &[u8]) -> bool {
    let mut in_quotes = false;
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'"' {
            if in_quotes && i + 1 < buf.len() && buf[i + 1] == b'"' {
                i += 1; // escaped quote
            } else {
                in_quotes = !in_quotes;
            }
        }
        i += 1;
    }
    in_quotes
}

fn parse_record(raw: &[u8], delimiter: u8, line: usize) -> Result<Vec<String>, TableError> {
    let mut fields = Vec::new();
    let mut field = Vec::new();
    let mut i = 0;
    let n = raw.len();
    while i <= n {
        if i == n {
            fields.push(bytes_to_string(&field, line)?);
            break;
        }
        let b = raw[i];
        if b == b'"' {
            if !field.is_empty() {
                return Err(TableError::Csv {
                    line,
                    message: "quote inside unquoted field".into(),
                });
            }
            // Quoted field.
            i += 1;
            loop {
                if i >= n {
                    return Err(TableError::Csv {
                        line,
                        message: "unterminated quoted field".into(),
                    });
                }
                if raw[i] == b'"' {
                    if i + 1 < n && raw[i + 1] == b'"' {
                        field.push(b'"');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    field.push(raw[i]);
                    i += 1;
                }
            }
            if i < n && raw[i] != delimiter {
                return Err(TableError::Csv {
                    line,
                    message: "garbage after closing quote".into(),
                });
            }
            fields.push(bytes_to_string(&field, line)?);
            field.clear();
            if i == n {
                break;
            }
            i += 1; // skip delimiter
            if i == n {
                fields.push(String::new()); // trailing empty field
                break;
            }
        } else if b == delimiter {
            fields.push(bytes_to_string(&field, line)?);
            field.clear();
            i += 1;
            if i == n {
                fields.push(String::new());
                break;
            }
        } else {
            field.push(b);
            i += 1;
        }
    }
    Ok(fields)
}

fn bytes_to_string(bytes: &[u8], line: usize) -> Result<String, TableError> {
    String::from_utf8(bytes.to_vec()).map_err(|_| TableError::Csv {
        line,
        message: "invalid UTF-8".into(),
    })
}

/// CSV record writer over any [`Write`].
#[derive(Debug)]
pub struct CsvWriter<W> {
    inner: W,
    delimiter: u8,
}

impl<W: Write> CsvWriter<W> {
    /// Creates a comma-separated writer.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            delimiter: b',',
        }
    }

    /// Writes one record, quoting fields that need it.
    pub fn write_record<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<(), TableError> {
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.inner.write_all(&[self.delimiter])?;
            }
            let f = f.as_ref();
            let needs_quote = f
                .bytes()
                .any(|b| b == self.delimiter || b == b'"' || b == b'\n' || b == b'\r');
            if needs_quote {
                self.inner.write_all(b"\"")?;
                self.inner.write_all(f.replace('"', "\"\"").as_bytes())?;
                self.inner.write_all(b"\"")?;
            } else {
                self.inner.write_all(f.as_bytes())?;
            }
        }
        self.inner.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), TableError> {
        self.inner.flush()?;
        Ok(())
    }
}

/// Reads a whole table from CSV given a schema.
///
/// When `has_header` is set, the first record is validated against the schema
/// attribute names (order-sensitive).
pub fn read_table<R: BufRead>(
    reader: R,
    schema: crate::Schema,
    has_header: bool,
) -> Result<Table, TableError> {
    let mut csv = CsvReader::new(reader);
    let mut builder = TableBuilder::new(schema);
    if has_header {
        if let Some(header) = csv.next_record()? {
            for (i, name) in header.iter().enumerate() {
                if i >= builder.schema().arity() {
                    break;
                }
                let expected = builder.schema().attribute(i).name();
                if name.trim() != expected {
                    return Err(TableError::Csv {
                        line: csv.line(),
                        message: format!("header field {i} is {name:?}, expected {expected:?}"),
                    });
                }
            }
        }
    }
    while let Some(rec) = csv.next_record()? {
        let trimmed: Vec<&str> = rec.iter().map(|s| s.trim()).collect();
        builder.push_row(&trimmed)?;
    }
    Ok(builder.build())
}

/// Writes a whole table (with header) to CSV.
pub fn write_table<W: Write>(writer: W, table: &Table) -> Result<(), TableError> {
    let mut csv = CsvWriter::new(std::io::BufWriter::new(writer));
    let header: Vec<&str> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name())
        .collect();
    csv.write_record(&header)?;
    for row in 0..table.n_rows() {
        let fields = table.row(row);
        csv.write_record(&fields)?;
    }
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, AttributeKind, Schema};

    fn read_str(s: &str) -> Vec<Vec<String>> {
        CsvReader::new(s.as_bytes()).read_all().unwrap()
    }

    #[test]
    fn plain_fields() {
        assert_eq!(
            read_str("a,b,c\n1,2,3\n"),
            vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]
        );
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let recs = read_str("\"a,b\",\"say \"\"hi\"\"\"\n");
        assert_eq!(recs, vec![vec!["a,b".to_owned(), "say \"hi\"".to_owned()]]);
    }

    #[test]
    fn quoted_field_with_embedded_newline() {
        let recs = read_str("\"line1\nline2\",x\n");
        assert_eq!(recs, vec![vec!["line1\nline2".to_owned(), "x".to_owned()]]);
    }

    #[test]
    fn crlf_and_blank_lines() {
        let recs = read_str("a,b\r\n\r\nc,d\r\n");
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn trailing_empty_field() {
        assert_eq!(read_str("a,\n"), vec![vec!["a".to_owned(), String::new()]]);
        assert_eq!(read_str(",\n"), vec![vec![String::new(), String::new()]]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = CsvReader::new("\"abc\n".as_bytes()).read_all().unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn garbage_after_quote_is_error() {
        let err = CsvReader::new("\"abc\"x,y\n".as_bytes())
            .read_all()
            .unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn writer_round_trips() {
        let mut out = Vec::new();
        {
            let mut w = CsvWriter::new(&mut out);
            w.write_record(&["plain", "with,comma", "with\"quote", "with\nnewline"])
                .unwrap();
            w.flush().unwrap();
        }
        let recs = CsvReader::new(out.as_slice()).read_all().unwrap();
        assert_eq!(
            recs,
            vec![vec![
                "plain".to_owned(),
                "with,comma".to_owned(),
                "with\"quote".to_owned(),
                "with\nnewline".to_owned(),
            ]]
        );
    }

    #[test]
    fn table_round_trip() {
        let schema = Schema::new(vec![
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = crate::TableBuilder::new(schema.clone());
        b.push_row(&["23", "Flu"]).unwrap();
        b.push_row(&["25", "Lung Cancer"]).unwrap();
        let table = b.build();

        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        let back = read_table(bytes.as_slice(), schema, true).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn header_mismatch_is_error() {
        let schema = Schema::new(vec![
            Attribute::new("Age", AttributeKind::QuasiIdentifier),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap();
        let err = read_table("Wrong,Disease\n1,Flu\n".as_bytes(), schema, true).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    /// Runs the splitter over `input` delivered in `step`-byte slices.
    fn split_str(input: &str, step: usize) -> Result<Vec<Vec<String>>, TableError> {
        let mut splitter = RecordSplitter::new();
        let mut out = Vec::new();
        for piece in input.as_bytes().chunks(step.max(1)) {
            splitter.push(piece);
            while let Some(rec) = splitter.next_record()? {
                out.push(rec);
            }
        }
        if let Some(rec) = splitter.finish()? {
            out.push(rec);
        }
        Ok(out)
    }

    #[test]
    fn record_splitter_matches_csv_reader_at_any_chunking() {
        let inputs = [
            "a,b,c\n1,2,3\n",
            "a,b\r\n\r\nc,d\r\n",
            "\"a,b\",\"say \"\"hi\"\"\"\n",
            "\"line1\nline2\",x\nnext,row\n",
            "trailing,no_newline",
            "a,\n,\n",
            "\n\n\nonly,after,blanks\n",
        ];
        for input in inputs {
            let expected = CsvReader::new(input.as_bytes()).read_all().unwrap();
            for step in 1..=input.len() {
                assert_eq!(
                    split_str(input, step).unwrap(),
                    expected,
                    "input {input:?} at step {step}"
                );
            }
        }
    }

    #[test]
    fn record_splitter_errors_match_csv_reader() {
        for input in ["\"abc\n", "\"abc\"x,y\n", "\"open quote, no end"] {
            let expected = CsvReader::new(input.as_bytes()).read_all();
            let got = split_str(input, 1);
            assert_eq!(
                expected.is_err(),
                got.is_err(),
                "input {input:?}: reader {expected:?} vs splitter {got:?}"
            );
        }
    }

    #[test]
    fn custom_delimiter() {
        let recs = CsvReader::with_delimiter("a|b\n".as_bytes(), b'|')
            .read_all()
            .unwrap();
        assert_eq!(recs, vec![vec!["a", "b"]]);
    }
}
