//! # wcbk-table — tabular data substrate
//!
//! The data model underlying the worst-case background-knowledge framework of
//! Martin et al., *Worst-Case Background Knowledge for Privacy-Preserving Data
//! Publishing* (ICDE 2007).
//!
//! A [`Table`] is a set of tuples, each corresponding to a unique individual.
//! Every tuple has exactly one **sensitive** attribute (e.g. `Disease`) with a
//! finite domain and one or more **non-sensitive** attributes (identifiers,
//! quasi-identifiers, or insensitive attributes). Values are dictionary-encoded
//! per column: each [`Column`] stores `u32` codes into its own [`Dictionary`],
//! which keeps the combinatorial algorithms downstream allocation-free.
//!
//! The crate also provides:
//!
//! * [`Schema`] / [`Attribute`] / [`AttributeKind`] — attribute metadata,
//! * [`TableBuilder`] and the streaming [`ChunkedTableBuilder`] — the latter
//!   encodes rows into fixed-size code blocks as they arrive, so CSV bodies
//!   can be turned into columns without staging decoded rows in memory,
//! * a small, dependency-free RFC-4180 CSV reader/writer ([`csv`]),
//! * [`datasets`] — the paper's running hospital example (Figure 1).
//!
//! Shared vocabulary types [`TupleId`] (a row of the original table — the
//! paper's "person `p`") and [`SValue`] (a dictionary code of the sensitive
//! domain `S`) live here so that every other crate in the workspace agrees on
//! them.

pub mod csv;
pub mod datasets;
mod dictionary;
mod error;
mod schema;
mod table;

pub use dictionary::Dictionary;
pub use error::TableError;
pub use schema::{Attribute, AttributeKind, Schema};
pub use table::{ChunkedTableBuilder, Column, Table, TableBuilder, DEFAULT_BUILDER_CHUNK_ROWS};

/// Identifies a tuple (person) of the original table by row position.
///
/// The paper assumes each record corresponds to a unique individual, so a row
/// index doubles as the person identity `p ∈ P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The row position as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A value of the sensitive domain `S`, as a dictionary code of the sensitive
/// column.
///
/// The paper overloads `S` to mean both the sensitive attribute and its finite
/// domain; an `SValue` is an element of that domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SValue(pub u32);

impl SValue {
    /// The dictionary code as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_roundtrip() {
        let t = TupleId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "t7");
    }

    #[test]
    fn svalue_roundtrip() {
        let s = SValue(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s.to_string(), "s3");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TupleId(1) < TupleId(2));
        assert!(SValue(0) < SValue(9));
    }
}
