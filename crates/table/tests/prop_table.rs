//! Property tests for the table substrate: CSV round-trips under arbitrary
//! content, dictionary code/value bijection, builder/table consistency.

use proptest::prelude::*;

use wcbk_table::csv::{read_table, write_table, CsvReader, CsvWriter};
use wcbk_table::{Attribute, AttributeKind, Dictionary, Schema, TableBuilder};

/// Any printable-ish cell content, including separators, quotes, newlines.
fn cell() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z'),
            Just(','),
            Just('"'),
            Just('\n'),
            Just(' '),
            prop::char::range('0', '9'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSV writer → reader round-trips arbitrary records.
    #[test]
    fn csv_round_trip(records in prop::collection::vec(prop::collection::vec(cell(), 1..=5), 0..=10)) {
        // All records must share an arity for table semantics, but raw CSV
        // round-trip works per record regardless.
        let mut bytes = Vec::new();
        {
            let mut w = CsvWriter::new(&mut bytes);
            for rec in &records {
                w.write_record(rec).unwrap();
            }
            w.flush().unwrap();
        }
        let read = CsvReader::new(bytes.as_slice()).read_all().unwrap();
        // Empty single-field records serialize to blank lines which the
        // reader (by design) skips; filter the expectation accordingly.
        let expected: Vec<Vec<String>> = records
            .iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .cloned()
            .collect();
        prop_assert_eq!(read, expected);
    }

    /// Table → CSV → table round-trips (fixed arity, trimmed cells without
    /// leading/trailing whitespace because `read_table` trims).
    #[test]
    fn table_round_trip(rows in prop::collection::vec((cell(), cell()), 1..=12)) {
        let schema = Schema::new(vec![
            Attribute::new("Q", AttributeKind::QuasiIdentifier),
            Attribute::new("S", AttributeKind::Sensitive),
        ]).unwrap();
        let mut builder = TableBuilder::new(schema.clone());
        for (q, s) in &rows {
            // read_table trims whitespace; normalize to match.
            let q = format!("q{}", q.replace(['\n', ' '], "_"));
            let s = format!("s{}", s.replace(['\n', ' '], "_"));
            builder.push_row(&[q.as_str(), s.as_str()]).unwrap();
        }
        let table = builder.build();
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        let back = read_table(bytes.as_slice(), schema, true).unwrap();
        prop_assert_eq!(back, table);
    }

    /// Dictionary: interning is idempotent and code/value form a bijection.
    #[test]
    fn dictionary_bijection(values in prop::collection::vec(cell(), 0..=30)) {
        let mut dict = Dictionary::new();
        let codes: Vec<u32> = values.iter().map(|v| dict.intern(v)).collect();
        for (v, &c) in values.iter().zip(&codes) {
            prop_assert_eq!(dict.code(v), Some(c));
            prop_assert_eq!(dict.get(c), Some(v.as_str()));
            prop_assert_eq!(dict.intern(v), c);
        }
        let distinct: std::collections::HashSet<&String> = values.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// Sensitive codes are dense and shared across equal values.
    #[test]
    fn sensitive_codes_dense(values in prop::collection::vec(0u8..6, 1..=25)) {
        let schema = Schema::new(vec![Attribute::new("S", AttributeKind::Sensitive)]).unwrap();
        let mut builder = TableBuilder::new(schema);
        for v in &values {
            builder.push_row(&[format!("v{v}")]).unwrap();
        }
        let table = builder.build();
        let card = table.sensitive_cardinality();
        let distinct: std::collections::HashSet<u8> = values.iter().copied().collect();
        prop_assert_eq!(card, distinct.len());
        for t in table.tuple_ids() {
            prop_assert!((table.sensitive_value(t).0 as usize) < card);
        }
    }
}
