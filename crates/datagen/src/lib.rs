//! # wcbk-datagen — evaluation workloads
//!
//! The paper evaluates on the UCI Adult dataset (45,222 tuples after
//! removing missing values) projected onto Age, Marital Status, Race, Gender
//! and Occupation (sensitive, 14 values). That file is not redistributable
//! inside this repository, so [`adult`] provides:
//!
//! * [`adult::synthetic_adult`] — a seeded generator producing a table with
//!   the same schema, the same attribute cardinalities, marginals matched to
//!   the published Adult summary statistics, and mild attribute correlations
//!   (occupation↔gender, marital-status↔age). The disclosure experiments
//!   depend only on per-bucket sensitive histograms, so matching
//!   cardinality and skew preserves the paper's curve shapes (DESIGN.md §5
//!   documents this substitution).
//! * [`adult::adult_from_reader`] — a loader for the genuine `adult.data`
//!   file for users who have it.
//!
//! [`workload`] generates parametrized random bucketizations (bucket count,
//! bucket size, domain size, Zipf skew) for property tests, scaling
//! benchmarks and the hardness demonstrations.

pub mod adult;
pub mod dist;
pub mod workload;
