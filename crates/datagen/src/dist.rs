//! Small discrete-distribution toolkit (the sanctioned crate list has no
//! `rand_distr`, so weighted and Zipf sampling are implemented here).

use rand::Rng;

/// A discrete distribution over `0..n` sampled by inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct Discrete {
    /// Cumulative weights, last entry = total.
    cdf: Vec<f64>,
}

impl Discrete {
    /// Builds from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Self { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero outcomes (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an outcome index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        // partition_point: first index with cdf[i] > x.
        self.cdf
            .partition_point(|&c| c <= x)
            .min(self.cdf.len() - 1)
    }
}

/// Zipf weights `1 / r^s` for ranks `1..=n` (s = 0 gives uniform).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|r| (r as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_weights() {
        let d = Discrete::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[4] - 0.2).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        let uniform = zipf_weights(4, 0.0);
        assert!(uniform.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_rejected() {
        Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Discrete::new(&zipf_weights(10, 1.5));
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..20).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..20).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
