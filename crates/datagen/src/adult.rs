//! Synthetic Adult dataset (and a loader for the real one).
//!
//! The paper: "We only consider the projection of the Adult Database onto
//! five attributes — Age, Marital Status, Race, Gender and Occupation. The
//! dataset has 45,222 tuples after removing tuples with missing values. We
//! treat Occupation as the sensitive attribute; its domain consists of
//! fourteen values."
//!
//! The generator reproduces the published marginal counts of the cleaned
//! Adult dataset (hard-coded below) and two mild, well-known correlations —
//! occupation skews by gender, marital status shifts with age — so that the
//! per-bucket occupation histograms induced by the generalization lattice
//! have realistic skew. DESIGN.md §5 records this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder, TableError};

use crate::dist::Discrete;

/// The fourteen occupation values with approximate cleaned-Adult counts.
pub const OCCUPATIONS: [(&str, f64); 14] = [
    ("Prof-specialty", 6172.0),
    ("Craft-repair", 6112.0),
    ("Exec-managerial", 5992.0),
    ("Adm-clerical", 5611.0),
    ("Sales", 5504.0),
    ("Other-service", 4923.0),
    ("Machine-op-inspct", 3022.0),
    ("Transport-moving", 2355.0),
    ("Handlers-cleaners", 2072.0),
    ("Farming-fishing", 1490.0),
    ("Tech-support", 1446.0),
    ("Protective-serv", 983.0),
    ("Priv-house-serv", 242.0),
    ("Armed-Forces", 14.0),
];

/// Per-occupation male-share multipliers (approximate; applied to the base
/// weights conditioned on gender and renormalized).
const MALE_SHARE: [f64; 14] = [
    0.64, // Prof-specialty
    0.95, // Craft-repair
    0.71, // Exec-managerial
    0.33, // Adm-clerical
    0.65, // Sales
    0.45, // Other-service
    0.73, // Machine-op-inspct
    0.94, // Transport-moving
    0.88, // Handlers-cleaners
    0.92, // Farming-fishing
    0.64, // Tech-support
    0.87, // Protective-serv
    0.05, // Priv-house-serv
    0.95, // Armed-Forces
];

/// Age-band multipliers per occupation (bands: 17–36, 37–56, 57–76, ≥77 —
/// matching the paper's 20-year generalization intervals).
/// In the real Adult data the occupation mix shifts strongly with age —
/// entry-level service work among the young, management in mid-career, and
/// a small, highly concentrated mix among working seniors. Each band has a
/// clearly dominant occupation (service work for the young, professional /
/// executive roles mid-career, farming among working seniors): that
/// within-bucket dominance-with-a-gap is the heterogeneity that separates
/// the implication and negation curves in Figure 5.
const AGE_BAND_FACTOR: [[f64; 4]; 14] = [
    [0.50, 1.50, 1.20, 0.80], // Prof-specialty
    [1.00, 1.10, 1.00, 0.25], // Craft-repair
    [0.30, 1.20, 1.50, 0.80], // Exec-managerial
    [1.30, 1.00, 0.90, 0.45], // Adm-clerical
    [1.60, 0.90, 0.90, 1.00], // Sales
    [3.00, 0.80, 0.80, 0.80], // Other-service
    [1.00, 1.10, 0.90, 0.15], // Machine-op-inspct
    [0.70, 1.10, 1.10, 0.25], // Transport-moving
    [2.20, 0.90, 0.60, 0.15], // Handlers-cleaners
    [1.20, 0.90, 1.10, 7.00], // Farming-fishing
    [1.20, 1.20, 0.70, 0.10], // Tech-support
    [0.80, 1.20, 1.00, 0.15], // Protective-serv
    [1.50, 0.70, 0.90, 3.00], // Priv-house-serv
    [1.50, 1.20, 0.20, 0.00], // Armed-Forces
];

/// The age band index used by [`AGE_BAND_FACTOR`].
fn age_band(age: u32) -> usize {
    match age {
        0..=36 => 0,
        37..=56 => 1,
        57..=76 => 2,
        _ => 3,
    }
}

/// The seven marital-status values with approximate counts.
pub const MARITAL_STATUSES: [(&str, f64); 7] = [
    ("Married-civ-spouse", 21055.0),
    ("Never-married", 14598.0),
    ("Divorced", 6297.0),
    ("Separated", 1411.0),
    ("Widowed", 1277.0),
    ("Married-spouse-absent", 552.0),
    ("Married-AF-spouse", 32.0),
];

/// The five race values with approximate counts.
pub const RACES: [(&str, f64); 5] = [
    ("White", 38903.0),
    ("Black", 4228.0),
    ("Asian-Pac-Islander", 1303.0),
    ("Amer-Indian-Eskimo", 435.0),
    ("Other", 353.0),
];

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct AdultConfig {
    /// Number of rows to generate (paper: 45,222).
    pub n_rows: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for AdultConfig {
    fn default() -> Self {
        Self {
            n_rows: 45_222,
            seed: 20070419, // the paper's arXiv date
        }
    }
}

/// The Adult projection schema used throughout the experiments.
pub fn adult_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("Age", AttributeKind::QuasiIdentifier),
        Attribute::new("Marital-Status", AttributeKind::QuasiIdentifier),
        Attribute::new("Race", AttributeKind::QuasiIdentifier),
        Attribute::new("Gender", AttributeKind::QuasiIdentifier),
        Attribute::new("Occupation", AttributeKind::Sensitive),
    ])
    .expect("adult schema is valid")
}

/// Age density: piecewise-linear approximation of the Adult age histogram —
/// a sharp rise from 17, a plateau through the 20s–40s, and a long tail to
/// 90.
fn age_weights() -> Vec<f64> {
    (17..=90u32)
        .map(|age| {
            let a = age as f64;
            if a <= 23.0 {
                0.4 + 0.6 * (a - 17.0) / 6.0
            } else if a <= 37.0 {
                1.0
            } else if a <= 60.0 {
                1.0 - 0.7 * (a - 37.0) / 23.0
            } else {
                0.3 * (1.0 - (a - 60.0) / 35.0).max(0.05)
            }
        })
        .collect()
}

/// Marital-status weights conditioned on age bracket.
fn marital_weights(age: u32) -> Vec<f64> {
    let base: Vec<f64> = MARITAL_STATUSES.iter().map(|&(_, w)| w).collect();
    let mut w = base;
    if age < 25 {
        w[0] *= 0.25; // Married-civ-spouse rare when young
        w[1] *= 3.0; // Never-married dominant
        w[2] *= 0.2; // Divorced rare
        w[4] *= 0.02; // Widowed negligible
    } else if age < 40 {
        w[1] *= 1.0;
        w[4] *= 0.1;
    } else if age < 60 {
        w[1] *= 0.35;
        w[2] *= 1.6;
        w[4] *= 0.6;
    } else {
        w[1] *= 0.2;
        w[2] *= 1.4;
        w[4] *= 6.0; // Widowed common when old
    }
    w
}

/// Occupation weights conditioned on gender and age band.
fn occupation_weights(male: bool, age: u32) -> Vec<f64> {
    let band = age_band(age);
    OCCUPATIONS
        .iter()
        .zip(MALE_SHARE)
        .zip(AGE_BAND_FACTOR)
        .map(|((&(_, w), share), bands)| {
            let gender_factor = if male { share } else { 1.0 - share };
            w * gender_factor * bands[band]
        })
        .collect()
}

/// Generates the synthetic Adult table.
pub fn synthetic_adult(config: AdultConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let age_dist = Discrete::new(&age_weights());
    let race_dist = Discrete::new(&RACES.map(|(_, w)| w));
    // ~67.5% male, per the Adult summary.
    let male_p = 0.675;
    // Occupation distributions indexed by (gender, age band).
    let occupation_dists: Vec<Vec<Discrete>> = [true, false]
        .iter()
        .map(|&male| {
            [17u32, 30, 50, 70]
                .iter()
                .map(|&age| Discrete::new(&occupation_weights(male, age)))
                .collect()
        })
        .collect();
    // Marital distributions precomputed per distinct age: the CDF depends
    // only on the age, so hoisting the construction out of the row loop
    // leaves the sampling stream (and thus every generated table)
    // unchanged while making million-row generation allocation-free per
    // row.
    let marital_dists: Vec<Discrete> = (17u32..=17 + age_weights().len() as u32 - 1)
        .map(|age| Discrete::new(&marital_weights(age)))
        .collect();

    let mut builder = TableBuilder::new(adult_schema());
    let mut age_buf = String::new();
    for _ in 0..config.n_rows {
        let age = 17 + age_dist.sample(&mut rng) as u32;
        let male = rng.gen_bool(male_p);
        let marital = marital_dists[(age - 17) as usize].sample(&mut rng);
        let race = race_dist.sample(&mut rng);
        let occupation = occupation_dists[usize::from(!male)][age_band(age)].sample(&mut rng);
        age_buf.clear();
        {
            use std::fmt::Write as _;
            let _ = write!(age_buf, "{age}");
        }
        builder
            .push_row(&[
                age_buf.as_str(),
                MARITAL_STATUSES[marital].0,
                RACES[race].0,
                if male { "Male" } else { "Female" },
                OCCUPATIONS[occupation].0,
            ])
            .expect("generated row matches schema");
    }
    builder.build()
}

/// Loads the genuine UCI `adult.data` file (comma-separated, no header),
/// projecting onto the five experiment attributes and dropping rows with
/// missing (`?`) values in them — reproducing the paper's 45,222-row
/// cleaning when given the concatenated `adult.data` + `adult.test`.
pub fn adult_from_reader<R: std::io::BufRead>(reader: R) -> Result<Table, TableError> {
    // adult.data column positions.
    const AGE: usize = 0;
    const MARITAL: usize = 5;
    const OCCUPATION: usize = 6;
    const RACE: usize = 8;
    const SEX: usize = 9;
    let mut csv = wcbk_table::csv::CsvReader::new(reader);
    let mut builder = TableBuilder::new(adult_schema());
    while let Some(record) = csv.next_record()? {
        if record.len() < 10 {
            continue; // ragged trailer lines in the UCI file
        }
        let fields: Vec<&str> = [AGE, MARITAL, RACE, SEX, OCCUPATION]
            .iter()
            .map(|&i| record[i].trim())
            .collect();
        if fields.iter().any(|f| *f == "?" || f.is_empty()) {
            continue;
        }
        builder.push_row(&fields)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        synthetic_adult(AdultConfig {
            n_rows: 8000,
            seed: 11,
        })
    }

    #[test]
    fn schema_and_cardinalities_match_paper() {
        let t = small();
        assert_eq!(t.n_rows(), 8000);
        assert_eq!(t.schema().sensitive_index(), 4);
        assert_eq!(t.sensitive_cardinality(), 14);
        assert!(t.column_by_name("Marital-Status").unwrap().cardinality() <= 7);
        assert!(t.column_by_name("Race").unwrap().cardinality() <= 5);
        assert_eq!(t.column_by_name("Gender").unwrap().cardinality(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_adult(AdultConfig {
            n_rows: 500,
            seed: 5,
        });
        let b = synthetic_adult(AdultConfig {
            n_rows: 500,
            seed: 5,
        });
        assert_eq!(a, b);
        let c = synthetic_adult(AdultConfig {
            n_rows: 500,
            seed: 6,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn occupation_marginals_roughly_match() {
        let t = small();
        let occ = t.sensitive_column();
        let mut counts = vec![0usize; occ.cardinality()];
        for row in 0..t.n_rows() {
            counts[occ.code(row) as usize] += 1;
        }
        // Prof-specialty should be among the most common, Armed-Forces rare.
        let prof = occ
            .dictionary()
            .code("Prof-specialty")
            .map(|c| counts[c as usize]);
        let armed = occ
            .dictionary()
            .code("Armed-Forces")
            .map(|c| counts[c as usize]);
        let prof = prof.unwrap_or(0);
        let armed = armed.unwrap_or(0);
        assert!(prof > 600, "Prof-specialty count {prof}");
        assert!(armed < 40, "Armed-Forces count {armed}");
    }

    #[test]
    fn age_range_is_17_to_90() {
        let t = small();
        let ages: Vec<i64> = (0..t.n_rows())
            .map(|r| t.value(r, 0).parse::<i64>().unwrap())
            .collect();
        assert!(ages.iter().all(|&a| (17..=90).contains(&a)));
        assert!(ages.iter().any(|&a| a < 30));
        assert!(ages.iter().any(|&a| a > 60));
    }

    #[test]
    fn correlations_present() {
        let t = small();
        let marital = t.column_by_name("Marital-Status").unwrap();
        let gender = t.column_by_name("Gender").unwrap();
        let occ = t.sensitive_column();
        let mut young_never = 0;
        let mut young = 0;
        let mut old_widowed = 0;
        let mut old = 0;
        let mut craft_male = 0;
        let mut craft = 0;
        for row in 0..t.n_rows() {
            let age: i64 = t.value(row, 0).parse().unwrap();
            if age < 25 {
                young += 1;
                if marital.value(row) == "Never-married" {
                    young_never += 1;
                }
            }
            if age >= 65 {
                old += 1;
                if marital.value(row) == "Widowed" {
                    old_widowed += 1;
                }
            }
            if occ.value(row) == "Craft-repair" {
                craft += 1;
                if gender.value(row) == "Male" {
                    craft_male += 1;
                }
            }
        }
        assert!(young_never as f64 / young as f64 > 0.6);
        assert!(old_widowed as f64 / old as f64 > 0.1);
        assert!(craft_male as f64 / craft as f64 > 0.8);
    }

    #[test]
    fn loader_parses_adult_format() {
        let data = "\
39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K
38, Private, 215646, HS-grad, 9, Divorced, ?, Not-in-family, White, Male, 0, 0, 40, United-States, <=50K
28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty, Wife, Black, Female, 0, 0, 40, Cuba, <=50K
";
        let t = adult_from_reader(data.as_bytes()).unwrap();
        // Row with '?' occupation dropped.
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(0, 0), "39");
        assert_eq!(t.value(0, 4), "Adm-clerical");
        assert_eq!(t.value(2, 2), "Black");
    }
}
