//! Random bucketization workloads for tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk_core::{Bucket, Bucketization, HistogramSet};
use wcbk_table::{SValue, TupleId};

use crate::dist::{zipf_weights, Discrete};

/// Parameters for random bucketization generation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of buckets `|B|`.
    pub n_buckets: usize,
    /// Bucket sizes drawn uniformly from this inclusive range.
    pub bucket_size: (usize, usize),
    /// Sensitive-domain cardinality `|S|`.
    pub n_values: usize,
    /// Zipf exponent for value skew inside buckets (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n_buckets: 16,
            bucket_size: (4, 64),
            n_values: 14,
            skew: 1.0,
            seed: 7,
        }
    }
}

/// Generates a random bucketization: each bucket gets a uniformly random
/// size and values drawn from a per-bucket Zipf over a shuffled value order
/// (so different buckets favour different values).
pub fn random_bucketization(config: WorkloadConfig) -> Bucketization {
    assert!(config.n_buckets > 0, "need at least one bucket");
    assert!(
        config.bucket_size.0 >= 1 && config.bucket_size.0 <= config.bucket_size.1,
        "invalid bucket size range"
    );
    assert!(config.n_values >= 1, "need at least one sensitive value");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let weights = zipf_weights(config.n_values, config.skew);
    let dist = Discrete::new(&weights);

    let mut buckets = Vec::with_capacity(config.n_buckets);
    let mut next_tuple = 0u32;
    for _ in 0..config.n_buckets {
        let size = rng.gen_range(config.bucket_size.0..=config.bucket_size.1);
        // Shuffle which concrete value each Zipf rank maps to in this bucket.
        let mut value_of_rank: Vec<u32> = (0..config.n_values as u32).collect();
        shuffle(&mut value_of_rank, &mut rng);
        let members: Vec<TupleId> = (0..size)
            .map(|_| {
                let t = TupleId(next_tuple);
                next_tuple += 1;
                t
            })
            .collect();
        let values: Vec<SValue> = (0..size)
            .map(|_| SValue(value_of_rank[dist.sample(&mut rng)]))
            .collect();
        buckets.push(Bucket::new(members, &values));
    }
    Bucketization::from_buckets(buckets, config.n_values as u32)
        .expect("generated buckets are valid")
}

/// Fisher–Yates shuffle (avoiding the `rand` `SliceRandom` trait keeps the
/// dependency surface to `Rng` only).
fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// The histogram-only view of [`random_bucketization`]'s workload —
/// bit-identical histograms for identical configs, handed over without
/// bucket membership. This is the natural input for histogram-only
/// consumers — the criteria surfaces, `DisclosureEngine::incremental_set` —
/// which never look at membership.
pub fn random_histogram_set(config: WorkloadConfig) -> HistogramSet {
    HistogramSet::from_bucketization(&random_bucketization(config))
}

/// A family of increasingly fine/coarse workloads for scaling benchmarks:
/// `sizes` bucket counts, all other parameters shared.
pub fn scaling_series(bucket_counts: &[usize], base: WorkloadConfig) -> Vec<Bucketization> {
    bucket_counts
        .iter()
        .map(|&n| {
            random_bucketization(WorkloadConfig {
                n_buckets: n,
                seed: base.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..base
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let b = random_bucketization(WorkloadConfig {
            n_buckets: 10,
            bucket_size: (3, 7),
            n_values: 5,
            skew: 1.2,
            seed: 42,
        });
        assert_eq!(b.n_buckets(), 10);
        assert_eq!(b.domain_size(), 5);
        for bucket in b.buckets() {
            assert!((3..=7).contains(&(bucket.n() as usize)));
        }
    }

    #[test]
    fn histogram_set_matches_bucketization_draws() {
        let config = WorkloadConfig {
            n_buckets: 12,
            bucket_size: (2, 9),
            n_values: 7,
            skew: 1.4,
            seed: 99,
        };
        let b = random_bucketization(config);
        let h = random_histogram_set(config);
        assert_eq!(h.n_buckets(), b.n_buckets());
        assert_eq!(h.domain_size(), b.domain_size());
        for (hist, bucket) in h.histograms().iter().zip(b.buckets()) {
            assert_eq!(hist, bucket.histogram());
        }
    }

    #[test]
    fn tuple_ids_are_globally_unique() {
        let b = random_bucketization(WorkloadConfig::default());
        let mut seen = std::collections::HashSet::new();
        for bucket in b.buckets() {
            for &t in bucket.members() {
                assert!(seen.insert(t));
            }
        }
        assert_eq!(seen.len() as u64, b.n_tuples());
    }

    #[test]
    fn skew_increases_top_ratio() {
        let uniform = random_bucketization(WorkloadConfig {
            skew: 0.0,
            n_buckets: 8,
            bucket_size: (200, 200),
            ..WorkloadConfig::default()
        });
        let skewed = random_bucketization(WorkloadConfig {
            skew: 2.0,
            n_buckets: 8,
            bucket_size: (200, 200),
            ..WorkloadConfig::default()
        });
        assert!(skewed.max_frequency_ratio() > uniform.max_frequency_ratio());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let a = random_bucketization(cfg);
        let b = random_bucketization(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_series_sizes() {
        let series = scaling_series(&[2, 8, 32], WorkloadConfig::default());
        let sizes: Vec<usize> = series.iter().map(|b| b.n_buckets()).collect();
        assert_eq!(sizes, vec![2, 8, 32]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        random_bucketization(WorkloadConfig {
            n_buckets: 0,
            ..WorkloadConfig::default()
        });
    }
}
