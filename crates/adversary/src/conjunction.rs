//! The paper's `L_k` conjunction language behind the [`AdversaryModel`]
//! trait — the reference implementation every other model is measured
//! against.

use std::sync::Arc;

use wcbk_core::minimize1::Minimize1Table;
use wcbk_core::minimize2::{minimize2, BucketCosts};
use wcbk_core::{CoreError, DisclosureEngine, HistogramSet};

use crate::{AdversaryModel, ModelWitness};

/// Worst-case disclosure under conjunctions of `k` basic implications,
/// computed by the MINIMIZE1/2 dynamic programs through the shared
/// [`DisclosureEngine`] cache.
///
/// The bound is **bit-identical** to `engine.max_disclosure_value_set` —
/// this type adds no arithmetic of its own, so routing audits through the
/// trait cannot perturb any pinned value.
pub struct ConjunctionModel {
    engine: Arc<DisclosureEngine>,
}

impl ConjunctionModel {
    /// Wraps a shared engine; `k` is the engine's attacker power.
    pub fn new(engine: Arc<DisclosureEngine>) -> Self {
        Self { engine }
    }
}

impl AdversaryModel for ConjunctionModel {
    fn name(&self) -> &'static str {
        "conjunction"
    }

    fn k(&self) -> usize {
        self.engine.k()
    }

    fn max_disclosure(&self, set: &HistogramSet) -> Result<f64, CoreError> {
        self.engine.max_disclosure_value_set(set)
    }

    fn witness(&self, set: &HistogramSet) -> Result<ModelWitness, CoreError> {
        allocation_witness(&self.engine, set)
    }
}

/// Reconstructs the optimal MINIMIZE2 atom allocation and renders it as a
/// bucket-level witness: which bucket hosts the predicted (modal) value and
/// how the `k` implications are spread over the buckets' rarest values.
///
/// Shared by [`ConjunctionModel`] and [`crate::SequentialModel`], whose
/// per-release language is the same.
pub(crate) fn allocation_witness(
    engine: &DisclosureEngine,
    set: &HistogramSet,
) -> Result<ModelWitness, CoreError> {
    if set.n_buckets() == 0 {
        return Err(CoreError::EmptyBucketization);
    }
    let k = engine.k();
    let costs: Vec<BucketCosts> = set.histograms().iter().map(|h| engine.costs(h)).collect();
    let result = minimize2(&costs, k);
    let host = result
        .allocation
        .iter()
        .find(|a| a.has_consequent)
        .map(|a| a.bucket)
        .unwrap_or(0);
    let hist = &set.histograms()[host];
    let modal = hist.value_at(0).expect("buckets are non-empty");
    let predicts = format!(
        "bucket {host}: t[S] = {modal} (modal value, {} of {} tuples)",
        hist.frequency(0),
        hist.n()
    );
    let mut knowing = Vec::new();
    for alloc in &result.allocation {
        if alloc.atoms == 0 {
            continue;
        }
        let table = Minimize1Table::build(&set.histograms()[alloc.bucket], k);
        // The DP only allocates atoms where MINIMIZE1 is feasible, so the
        // profile reconstruction cannot fail.
        let profile = table
            .profile(alloc.atoms)
            .expect("optimal allocation is feasible");
        let spread: Vec<String> = profile.iter().map(|c| c.to_string()).collect();
        knowing.push(format!(
            "bucket {}: {} implication(s) ruling out rare values, {} per person",
            alloc.bucket,
            alloc.atoms,
            spread.join("+")
        ));
    }
    if knowing.is_empty() {
        knowing.push("no background knowledge (k = 0)".to_string());
    }
    Ok(ModelWitness { predicts, knowing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::figure3_set;

    /// Figure 3 pinned values: k = 0 → 0.4, k = 1 → 2/3.
    #[test]
    fn figure3_pinned_values() {
        let set = figure3_set();
        let m0 = ConjunctionModel::new(Arc::new(DisclosureEngine::new(0)));
        assert!((m0.max_disclosure(&set).unwrap() - 0.4).abs() < 1e-15);
        let m1 = ConjunctionModel::new(Arc::new(DisclosureEngine::new(1)));
        assert!((m1.max_disclosure(&set).unwrap() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn bound_is_bit_identical_to_engine() {
        let set = figure3_set();
        for k in 0..5 {
            let engine = Arc::new(DisclosureEngine::new(k));
            let model = ConjunctionModel::new(Arc::clone(&engine));
            let via_trait = model.max_disclosure(&set).unwrap();
            let direct = engine.max_disclosure_value_set(&set).unwrap();
            assert_eq!(via_trait.to_bits(), direct.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn witness_names_host_bucket_and_spends_all_atoms() {
        let set = figure3_set();
        let model = ConjunctionModel::new(Arc::new(DisclosureEngine::new(1)));
        let w = model.witness(&set).unwrap();
        assert!(w.predicts.contains("t[S]"), "{}", w.predicts);
        let spent: usize = w
            .knowing
            .iter()
            .filter_map(|s| {
                s.split("bucket ")
                    .nth(1)
                    .and_then(|rest| rest.split(": ").nth(1))
                    .and_then(|rest| rest.split(' ').next())
                    .and_then(|n| n.parse::<usize>().ok())
            })
            .sum();
        assert_eq!(spent, 1, "{:?}", w.knowing);
    }

    #[test]
    fn k0_witness_has_no_knowledge_clause() {
        let set = figure3_set();
        let model = ConjunctionModel::new(Arc::new(DisclosureEngine::new(0)));
        let w = model.witness(&set).unwrap();
        assert_eq!(w.knowing, vec!["no background knowledge (k = 0)"]);
    }

    #[test]
    fn witness_is_deterministic() {
        let set = figure3_set();
        let model = ConjunctionModel::new(Arc::new(DisclosureEngine::new(2)));
        assert_eq!(model.witness(&set).unwrap(), model.witness(&set).unwrap());
    }
}
