//! A minimality/utility-aware attacker: leakage from publishing the
//! anonymization algorithm itself.

use wcbk_core::{CoreError, HistogramSet, SensitiveHistogram};

use crate::{AdversaryModel, ModelWitness};

/// An adversary who knows the published grouping was produced by a
/// *minimal* (utility-maximizing) algorithm.
///
/// Minimality attacks (in the tradition of Wong et al.'s m-confidentiality
/// analysis, arXiv 0909.1127 §2) exploit that a publisher who generalizes
/// as little as possible reveals which sensitive values could **not** have
/// forced the grouping: strength `k` lets the adversary argue away the `k`
/// rarest sensitive values of a bucket (they are too infrequent to have
/// constrained a minimal algorithm), never touching the modal value. The
/// bucket bound is therefore
///
/// ```text
///   f / (n − tail_k)   where tail_k = Σ of the min(k, d−1) smallest
///                      distinct-value counts, d = distinct values,
/// ```
///
/// and the set bound is the maximum over buckets. At `k = 0` this is the
/// no-knowledge ratio `f / n`; once `k ≥ d − 1` only the modal value
/// survives and the bucket discloses fully.
pub struct MinimalityModel {
    k: usize,
}

impl MinimalityModel {
    /// An adversary who can argue away `k` rare values per bucket.
    pub fn new(k: usize) -> Self {
        Self { k }
    }

    /// How many rare values the adversary eliminates in one bucket.
    fn eliminated(&self, hist: &SensitiveHistogram) -> usize {
        self.k.min(hist.distinct().saturating_sub(1))
    }

    /// The per-bucket bound after eliminating the rare tail.
    fn bucket_value(&self, hist: &SensitiveHistogram) -> f64 {
        let counts = hist.key();
        let elim = self.eliminated(hist);
        let tail: u64 = counts[counts.len() - elim..].iter().sum();
        hist.frequency(0) as f64 / (hist.n() - tail) as f64
    }

    /// The bucket index attaining the bound (first argmax, deterministic).
    fn argmax(&self, set: &HistogramSet) -> usize {
        let mut best = 0;
        let mut best_v = f64::MIN;
        for (i, hist) in set.histograms().iter().enumerate() {
            let v = self.bucket_value(hist);
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }
}

impl AdversaryModel for MinimalityModel {
    fn name(&self) -> &'static str {
        "minimality"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn max_disclosure(&self, set: &HistogramSet) -> Result<f64, CoreError> {
        if set.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        Ok(set
            .histograms()
            .iter()
            .map(|h| self.bucket_value(h))
            .fold(0.0, f64::max))
    }

    fn witness(&self, set: &HistogramSet) -> Result<ModelWitness, CoreError> {
        if set.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let b = self.argmax(set);
        let hist = &set.histograms()[b];
        let modal = hist.value_at(0).expect("buckets are non-empty");
        let elim = self.eliminated(hist);
        let knowing = if elim == 0 {
            vec!["no algorithm-publication leverage (k = 0)".to_string()]
        } else {
            vec![format!(
                "the published algorithm is minimal, ruling out the {elim} rarest value(s) \
                 of bucket {b}"
            )]
        };
        Ok(ModelWitness {
            predicts: format!(
                "bucket {b}: t[S] = {modal} (modal value, {} of {} tuples)",
                hist.frequency(0),
                hist.n()
            ),
            knowing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::figure3_set;
    use proptest::prelude::*;
    use wcbk_table::SValue;

    /// Worked example on the Figure 3 histograms. At `k = 1` each bucket
    /// loses its single rarest value: male (2,2,1) → 2/4, female (2,1,1,1)
    /// → 2/4, bound 0.5. At `k = 2` the male bucket argues away both
    /// non-modal values (d − 1 = 2), leaving only the modal value:
    /// 2/2 = 1.0.
    #[test]
    fn figure3_worked_example() {
        let set = figure3_set();
        assert!((MinimalityModel::new(1).max_disclosure(&set).unwrap() - 0.5).abs() < 1e-15);
        assert!((MinimalityModel::new(2).max_disclosure(&set).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn k0_is_frequency_ratio() {
        let set = figure3_set();
        let m = MinimalityModel::new(0);
        assert!((m.max_disclosure(&set).unwrap() - set.max_frequency_ratio()).abs() < 1e-15);
    }

    #[test]
    fn elimination_never_touches_the_modal_value() {
        // A two-value bucket: no matter how large k is, at most one value
        // can be argued away, so the bound caps at 1.0 without dividing by
        // zero.
        let hist = SensitiveHistogram::from_counts([(SValue(0), 3u64), (SValue(1), 2)]);
        let set = HistogramSet::new(vec![hist], 2).unwrap();
        for k in 0..10 {
            let v = MinimalityModel::new(k).max_disclosure(&set).unwrap();
            assert!(v.is_finite() && v <= 1.0);
        }
        assert!((MinimalityModel::new(9).max_disclosure(&set).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn witness_reports_elimination_count() {
        let set = figure3_set();
        let w = MinimalityModel::new(1).witness(&set).unwrap();
        assert!(w.knowing[0].contains("1 rarest"), "{}", w.knowing[0]);
        let w0 = MinimalityModel::new(0).witness(&set).unwrap();
        assert!(w0.knowing[0].contains("k = 0"), "{}", w0.knowing[0]);
    }

    fn histogram_strategy() -> impl Strategy<Value = SensitiveHistogram> {
        prop::collection::vec((0u32..6, 1u64..9), 1..6).prop_map(|counts| {
            // Collapse duplicate value codes before building — `from_counts`
            // treats each pair as a distinct value.
            let mut tally = std::collections::BTreeMap::<u32, u64>::new();
            for (v, c) in counts {
                *tally.entry(v).or_insert(0) += c;
            }
            SensitiveHistogram::from_counts(tally.into_iter().map(|(v, c)| (SValue(v), c)))
        })
    }

    proptest! {
        /// Merging two buckets (one generalization step) never increases
        /// the bound.
        #[test]
        fn merge_monotone(a in histogram_strategy(), b in histogram_strategy(), k in 0usize..5) {
            let model = MinimalityModel::new(k);
            let split = HistogramSet::new(vec![a.clone(), b.clone()], 6).unwrap();
            let merged_hist = SensitiveHistogram::from_counts(
                a.iter_counts().chain(b.iter_counts()).fold(
                    std::collections::BTreeMap::<u32, u64>::new(),
                    |mut acc, (v, c)| {
                        *acc.entry(v.0).or_insert(0) += c;
                        acc
                    },
                )
                .into_iter()
                .map(|(v, c)| (SValue(v), c)),
            );
            let merged = HistogramSet::new(vec![merged_hist], 6).unwrap();
            let v_split = model.max_disclosure(&split).unwrap();
            let v_merged = model.max_disclosure(&merged).unwrap();
            prop_assert!(v_merged <= v_split + 1e-12, "merged {v_merged} > split {v_split}");
        }

        /// Bounds stay probabilities and grow with `k`.
        #[test]
        fn bounded_and_monotone_in_k(h in histogram_strategy()) {
            let set = HistogramSet::new(vec![h], 6).unwrap();
            let mut prev = 0.0;
            for k in 0..6 {
                let v = MinimalityModel::new(k).max_disclosure(&set).unwrap();
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= prev - 1e-15);
                prev = v;
            }
        }
    }
}
