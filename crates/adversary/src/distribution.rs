//! Worst-case distribution-based background knowledge, adapted from Wong
//! et al., "Anonymization with Worst-Case Distribution-Based Background
//! Knowledge" (arXiv 0909.1127).

use wcbk_core::{CoreError, HistogramSet, SensitiveHistogram};

use crate::{AdversaryModel, ModelWitness};

/// An adversary who holds a prior distribution over the sensitive domain
/// and whose strength `k` bounds how far that prior may deviate from the
/// published bucket frequencies.
///
/// Following the worst-case analysis of arXiv 0909.1127, the most damaging
/// admissible prior concentrates its deviation budget on one bucket's modal
/// value: with strength `k` the adversary may tilt the prior *odds* of the
/// modal value by a factor of `k + 1`, giving posterior confidence
///
/// ```text
///   (k+1) · f
///   ─────────────────   where f = n_b(s⁰_b), n = n_b.
///   (k+1) · f + (n−f)
/// ```
///
/// The bound is the maximum of that tilt over all buckets. At `k = 0` it
/// degenerates to the no-knowledge frequency ratio `f / n`, and it is
/// monotone in `k` (more tilt never hurts the adversary). Merging buckets
/// never increases the bound: the merged odds `f/(n−f)` are a mediant of
/// the parts' odds, so the bound is safe to evaluate on rolled-up
/// histograms.
pub struct DistributionModel {
    k: usize,
}

impl DistributionModel {
    /// An adversary of strength `k` (odds tilt factor `k + 1`).
    pub fn new(k: usize) -> Self {
        Self { k }
    }

    /// The tilted posterior for one bucket.
    fn bucket_value(&self, hist: &SensitiveHistogram) -> f64 {
        let f = hist.frequency(0) as f64;
        let rest = (hist.n() - hist.frequency(0)) as f64;
        let tilt = (self.k + 1) as f64;
        tilt * f / (tilt * f + rest)
    }

    /// The bucket index attaining the bound (first argmax, deterministic).
    fn argmax(&self, set: &HistogramSet) -> usize {
        let mut best = 0;
        let mut best_v = f64::MIN;
        for (i, hist) in set.histograms().iter().enumerate() {
            let v = self.bucket_value(hist);
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }
}

impl AdversaryModel for DistributionModel {
    fn name(&self) -> &'static str {
        "distribution"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn max_disclosure(&self, set: &HistogramSet) -> Result<f64, CoreError> {
        if set.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        Ok(set
            .histograms()
            .iter()
            .map(|h| self.bucket_value(h))
            .fold(0.0, f64::max))
    }

    fn witness(&self, set: &HistogramSet) -> Result<ModelWitness, CoreError> {
        if set.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let b = self.argmax(set);
        let hist = &set.histograms()[b];
        let modal = hist.value_at(0).expect("buckets are non-empty");
        Ok(ModelWitness {
            predicts: format!(
                "bucket {b}: t[S] = {modal} (modal value, {} of {} tuples)",
                hist.frequency(0),
                hist.n()
            ),
            knowing: vec![format!(
                "a prior tilting the odds of {modal} in bucket {b} by a factor of {}",
                self.k + 1
            )],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::figure3_set;
    use proptest::prelude::*;
    use wcbk_table::SValue;

    /// Worked example on the paper's running Figure 3 histograms: both
    /// buckets have modal frequency 2 of 5, so at strength 1 the tilted
    /// posterior is `2·2 / (2·2 + 3) = 4/7`, and at strength 4 it is
    /// `5·2 / (5·2 + 3) = 10/13`.
    #[test]
    fn figure3_worked_example() {
        let set = figure3_set();
        let m1 = DistributionModel::new(1);
        assert!((m1.max_disclosure(&set).unwrap() - 4.0 / 7.0).abs() < 1e-15);
        let m4 = DistributionModel::new(4);
        assert!((m4.max_disclosure(&set).unwrap() - 10.0 / 13.0).abs() < 1e-15);
    }

    #[test]
    fn k0_is_frequency_ratio() {
        let set = figure3_set();
        let m = DistributionModel::new(0);
        assert!((m.max_disclosure(&set).unwrap() - set.max_frequency_ratio()).abs() < 1e-15);
    }

    #[test]
    fn homogeneous_bucket_discloses_fully() {
        let hist = SensitiveHistogram::from_counts([(SValue(0), 7u64)]);
        let set = HistogramSet::new(vec![hist], 3).unwrap();
        for k in 0..4 {
            let v = DistributionModel::new(k).max_disclosure(&set).unwrap();
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn witness_names_the_argmax_bucket() {
        let skewed = SensitiveHistogram::from_counts([(SValue(0), 9u64), (SValue(1), 1)]);
        let flat = SensitiveHistogram::from_counts([(SValue(0), 1u64), (SValue(1), 1)]);
        let set = HistogramSet::new(vec![flat, skewed], 2).unwrap();
        let w = DistributionModel::new(1).witness(&set).unwrap();
        assert!(w.predicts.starts_with("bucket 1:"), "{}", w.predicts);
        assert!(w.knowing[0].contains("factor of 2"), "{}", w.knowing[0]);
    }

    fn histogram_strategy() -> impl Strategy<Value = SensitiveHistogram> {
        prop::collection::vec((0u32..6, 1u64..9), 1..6).prop_map(|counts| {
            // Collapse duplicate value codes before building — `from_counts`
            // treats each pair as a distinct value.
            let mut tally = std::collections::BTreeMap::<u32, u64>::new();
            for (v, c) in counts {
                *tally.entry(v).or_insert(0) += c;
            }
            SensitiveHistogram::from_counts(tally.into_iter().map(|(v, c)| (SValue(v), c)))
        })
    }

    proptest! {
        /// Merging two buckets (one generalization step) never increases
        /// the bound — the roll-up monotonicity the lattice search relies
        /// on.
        #[test]
        fn merge_monotone(a in histogram_strategy(), b in histogram_strategy(), k in 0usize..5) {
            let model = DistributionModel::new(k);
            let split = HistogramSet::new(vec![a.clone(), b.clone()], 6).unwrap();
            let merged_hist = SensitiveHistogram::from_counts(
                a.iter_counts().chain(b.iter_counts()).fold(
                    std::collections::BTreeMap::<u32, u64>::new(),
                    |mut acc, (v, c)| {
                        *acc.entry(v.0).or_insert(0) += c;
                        acc
                    },
                )
                .into_iter()
                .map(|(v, c)| (SValue(v), c)),
            );
            let merged = HistogramSet::new(vec![merged_hist], 6).unwrap();
            let v_split = model.max_disclosure(&split).unwrap();
            let v_merged = model.max_disclosure(&merged).unwrap();
            prop_assert!(v_merged <= v_split + 1e-12, "merged {v_merged} > split {v_split}");
        }

        /// Bounds stay probabilities and grow with `k`.
        #[test]
        fn bounded_and_monotone_in_k(h in histogram_strategy()) {
            let set = HistogramSet::new(vec![h], 6).unwrap();
            let mut prev = 0.0;
            for k in 0..6 {
                let v = DistributionModel::new(k).max_disclosure(&set).unwrap();
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= prev - 1e-15);
                prev = v;
            }
        }
    }
}
