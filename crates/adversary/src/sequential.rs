//! Linkage-aware sequential release, after Riboni et al., "Preserving
//! Privacy in Sequential Data Release against Background Knowledge
//! Attacks" (arXiv 1010.0924).

use std::sync::Arc;

use wcbk_core::{CoreError, DisclosureEngine, HistogramSet};

use crate::conjunction::allocation_witness;
use crate::{AdversaryModel, CompositionStyle, ModelWitness};

/// The conjunction adversary who additionally **links tuples across
/// releases** of the same dataset.
///
/// A single release bounds exactly like [`crate::ConjunctionModel`] — the
/// language per release is the paper's `L_k`. The difference is
/// composition: arXiv 1010.0924's attacker knows that the same individual
/// appears in every release, so two groupings jointly confine each tuple
/// to the *intersection* of its buckets. The effective published grouping
/// after `m` releases is therefore the **common refinement** of the `m`
/// bucketizations — typically far finer (and more disclosive) than any
/// single release — rather than the union of their bucket histograms.
///
/// This type only advertises that composition rule
/// ([`CompositionStyle::CommonRefinement`]); the refinement itself is
/// computed by the session layer, which owns tuple membership, and the
/// refined set is priced here through the shared engine.
pub struct SequentialModel {
    engine: Arc<DisclosureEngine>,
}

impl SequentialModel {
    /// Wraps a shared engine; `k` is the engine's attacker power.
    pub fn new(engine: Arc<DisclosureEngine>) -> Self {
        Self { engine }
    }
}

impl AdversaryModel for SequentialModel {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn k(&self) -> usize {
        self.engine.k()
    }

    fn max_disclosure(&self, set: &HistogramSet) -> Result<f64, CoreError> {
        self.engine.max_disclosure_value_set(set)
    }

    fn witness(&self, set: &HistogramSet) -> Result<ModelWitness, CoreError> {
        allocation_witness(&self.engine, set)
    }

    fn composition(&self) -> CompositionStyle {
        CompositionStyle::CommonRefinement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::figure3_set;
    use crate::ConjunctionModel;

    /// Per-release, the sequential adversary is exactly the conjunction
    /// adversary — only composition differs.
    #[test]
    fn single_release_matches_conjunction_bitwise() {
        let set = figure3_set();
        for k in 0..5 {
            let engine = Arc::new(DisclosureEngine::new(k));
            let seq = SequentialModel::new(Arc::clone(&engine));
            let conj = ConjunctionModel::new(Arc::clone(&engine));
            assert_eq!(
                seq.max_disclosure(&set).unwrap().to_bits(),
                conj.max_disclosure(&set).unwrap().to_bits()
            );
            assert_eq!(seq.witness(&set).unwrap(), conj.witness(&set).unwrap());
        }
    }

    #[test]
    fn advertises_common_refinement() {
        let model = SequentialModel::new(Arc::new(DisclosureEngine::new(1)));
        assert_eq!(model.composition(), CompositionStyle::CommonRefinement);
    }

    /// The motivating example from arXiv 1010.0924 §1, transplanted to the
    /// Figure 3 population: two releases that are individually safe can be
    /// jointly disclosive once tuples are linked. Release A groups by sex
    /// (buckets of 5), release B groups by age band; their common
    /// refinement has a singleton cell, which discloses fully at any k.
    #[test]
    fn refinement_is_more_disclosive_than_either_release() {
        use wcbk_core::SensitiveHistogram;
        use wcbk_table::SValue;

        // Ten tuples t0..t9 with diseases
        //   t0=d0 t1=d0 t2=d1 t3=d1 t4=d2   t5=d1 t6=d1 t7=d2 t8=d2 t9=d0.
        let engine = Arc::new(DisclosureEngine::new(1));
        let model = SequentialModel::new(Arc::clone(&engine));
        // Release A: {t0..t4} and {t5..t9} — each bucket shape (2,2,1).
        let a = HistogramSet::new(
            vec![
                SensitiveHistogram::from_counts([
                    (SValue(0), 2u64),
                    (SValue(1), 2),
                    (SValue(2), 1),
                ]),
                SensitiveHistogram::from_counts([
                    (SValue(0), 1u64),
                    (SValue(1), 2),
                    (SValue(2), 2),
                ]),
            ],
            3,
        )
        .unwrap();
        // Release B: {t0,t5,t6,t7,t8} and {t1,t2,t3,t4,t9} — also (2,2,1).
        let b = HistogramSet::new(
            vec![
                SensitiveHistogram::from_counts([
                    (SValue(0), 1u64),
                    (SValue(1), 2),
                    (SValue(2), 2),
                ]),
                SensitiveHistogram::from_counts([
                    (SValue(0), 2u64),
                    (SValue(1), 2),
                    (SValue(2), 1),
                ]),
            ],
            3,
        )
        .unwrap();
        // Common refinement: {t0}, {t1..t4}, {t5..t8}, {t9} — two
        // singleton cells.
        let refined = HistogramSet::new(
            vec![
                SensitiveHistogram::from_counts([(SValue(0), 1u64)]),
                SensitiveHistogram::from_counts([
                    (SValue(0), 1u64),
                    (SValue(1), 2),
                    (SValue(2), 1),
                ]),
                SensitiveHistogram::from_counts([(SValue(1), 2u64), (SValue(2), 2)]),
                SensitiveHistogram::from_counts([(SValue(0), 1u64)]),
            ],
            3,
        )
        .unwrap();
        let va = model.max_disclosure(&a).unwrap();
        let vb = model.max_disclosure(&b).unwrap();
        let vr = model.max_disclosure(&refined).unwrap();
        assert!(va < 1.0 && vb < 1.0, "per-release bounds: {va}, {vb}");
        assert!((vr - 1.0).abs() < 1e-15, "refined bound: {vr}");
    }
}
