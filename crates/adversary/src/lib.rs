//! Pluggable adversary models — knowledge languages as disclosure bounds.
//!
//! The source paper fixes one knowledge language: `L_k`, conjunctions of `k`
//! basic implications, whose worst-case disclosure the MINIMIZE1/2 dynamic
//! programs compute exactly. This crate makes the attacker itself a plugin:
//! an [`AdversaryModel`] maps a published [`HistogramSet`] to the worst-case
//! probability that *some* adversary expressible in the model's language
//! predicts *some* tuple's sensitive value, together with a human-readable
//! witness of an attacker achieving the bound.
//!
//! Four models ship behind the trait, selected by [`ModelId`]:
//!
//! * [`ConjunctionModel`] — the paper's `L_k` language, routed through the
//!   shared [`DisclosureEngine`]. This is the reference implementation: its
//!   bound is bit-identical to calling the engine directly.
//! * [`DistributionModel`] — worst-case *distribution-based* knowledge in
//!   the spirit of Wong et al. (arXiv 0909.1127): the adversary holds a
//!   prior over the sensitive domain and strength `k` lets them tilt the
//!   prior odds of a bucket's modal value by a factor of `k + 1`.
//! * [`MinimalityModel`] — a minimality/utility-aware attacker that models
//!   leakage from publishing the anonymization *algorithm* itself: knowing
//!   the publisher generalized as little as possible lets the adversary rule
//!   out the `k` rarest sensitive values of a bucket.
//! * [`SequentialModel`] — linkage-aware sequential release after Riboni et
//!   al. (arXiv 1010.0924): per-release bounds match the conjunction
//!   language, but multiple releases compose by **common refinement** of the
//!   bucketizations (tuple-correlation tracking) instead of the
//!   union-of-buckets audit; see [`CompositionStyle`].
//!
//! # Bound semantics
//!
//! `max_disclosure` returns a probability in `[0, 1]`: the supremum over
//! adversaries expressible in the model's language (with power parameter
//! `k`) of the posterior confidence in the most vulnerable prediction. All
//! models agree at `k = 0` with the no-knowledge bound
//! `max_b n_b(s⁰_b) / n_b`, and every model's bound is monotone in `k`.
//! Bounds are deterministic functions of the histogram multiset — the same
//! set always yields the same bits, which is what lets the serve layer cache
//! and replay audits byte-for-byte.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use wcbk_core::{CoreError, DisclosureEngine, HistogramSet};

mod conjunction;
mod distribution;
mod minimality;
mod sequential;

pub use conjunction::ConjunctionModel;
pub use distribution::DistributionModel;
pub use minimality::MinimalityModel;
pub use sequential::SequentialModel;

/// How audits over multiple releases of the same dataset compose under a
/// model's knowledge language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositionStyle {
    /// Releases compose as the union of their bucket histograms: the
    /// adversary attacks the weakest bucket across all releases. This is
    /// the paper's composition audit, and it is incremental — appending a
    /// release only costs the new buckets' MINIMIZE1 tables.
    UnionOfBuckets,
    /// Releases compose as the **common refinement** of their groupings:
    /// the adversary links each tuple across releases, so the effective
    /// buckets are the nonempty intersections of per-release buckets
    /// (Riboni et al., arXiv 1010.0924).
    CommonRefinement,
}

/// A human-readable certificate of an adversary achieving the bound.
///
/// Unlike the core `DisclosureWitness` (which names concrete tuples of a
/// materialized bucketization), a model witness describes the attack at the
/// bucket/value level, since a [`HistogramSet`] carries no tuple
/// membership. The strings are deterministic functions of the set, so
/// witnesses replay byte-for-byte across restarts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelWitness {
    /// The prediction the adversary makes with the bound's confidence.
    pub predicts: String,
    /// The background knowledge that gets them there, one clause per line.
    pub knowing: Vec<String>,
}

/// A knowledge language with a computable worst-case disclosure bound.
///
/// Implementations must be deterministic: the same [`HistogramSet`] must
/// produce bit-identical bounds and witnesses on every call, on every
/// thread. All shipped models satisfy `value(k=0) = max_frequency_ratio`
/// and monotonicity in `k`.
pub trait AdversaryModel: Send + Sync {
    /// The model's stable registry name (`"conjunction"`, …).
    fn name(&self) -> &'static str;

    /// The attacker power parameter this instance was resolved with.
    fn k(&self) -> usize;

    /// Worst-case disclosure over a published histogram set, in `[0, 1]`.
    fn max_disclosure(&self, set: &HistogramSet) -> Result<f64, CoreError>;

    /// Reconstructs an adversary achieving [`Self::max_disclosure`].
    fn witness(&self, set: &HistogramSet) -> Result<ModelWitness, CoreError>;

    /// How sequential releases compose under this language.
    fn composition(&self) -> CompositionStyle {
        CompositionStyle::UnionOfBuckets
    }
}

/// Registry identifier for the shipped adversary models.
///
/// `Copy` + `Default` so it can ride inside `SearchConfig` without breaking
/// its value semantics; the default is the paper's conjunction language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelId {
    /// The paper's `L_k` conjunctions of basic implications.
    #[default]
    Conjunction,
    /// Worst-case distribution-based knowledge (arXiv 0909.1127).
    Distribution,
    /// Minimality/utility-aware algorithm-publication leakage.
    Minimality,
    /// Linkage-aware sequential release (arXiv 1010.0924).
    Sequential,
}

/// Every registered model, in registry order.
pub const MODEL_IDS: [ModelId; 4] = [
    ModelId::Conjunction,
    ModelId::Distribution,
    ModelId::Minimality,
    ModelId::Sequential,
];

/// Every registered model name, aligned with [`MODEL_IDS`].
pub const MODEL_NAMES: [&str; 4] = ["conjunction", "distribution", "minimality", "sequential"];

impl ModelId {
    /// The model's stable registry name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Conjunction => "conjunction",
            ModelId::Distribution => "distribution",
            ModelId::Minimality => "minimality",
            ModelId::Sequential => "sequential",
        }
    }

    /// The registry index (position in [`MODEL_IDS`] / [`MODEL_NAMES`]),
    /// used by per-model metric families.
    pub fn index(self) -> usize {
        match self {
            ModelId::Conjunction => 0,
            ModelId::Distribution => 1,
            ModelId::Minimality => 2,
            ModelId::Sequential => 3,
        }
    }

    /// Instantiates the model at the engine's attacker power. Engine-backed
    /// models (conjunction, sequential) share the passed engine's MINIMIZE1
    /// cache; the closed-form models only borrow its `k`.
    pub fn resolve(self, engine: Arc<DisclosureEngine>) -> Arc<dyn AdversaryModel> {
        match self {
            ModelId::Conjunction => Arc::new(ConjunctionModel::new(engine)),
            ModelId::Distribution => Arc::new(DistributionModel::new(engine.k())),
            ModelId::Minimality => Arc::new(MinimalityModel::new(engine.k())),
            ModelId::Sequential => Arc::new(SequentialModel::new(engine)),
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ModelId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "conjunction" => Ok(ModelId::Conjunction),
            "distribution" => Ok(ModelId::Distribution),
            "minimality" => Ok(ModelId::Minimality),
            "sequential" => Ok(ModelId::Sequential),
            other => Err(format!(
                "unknown adversary model {other:?} (expected one of: {})",
                MODEL_NAMES.join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_core::SensitiveHistogram;
    use wcbk_table::SValue;

    /// The paper's Figure 3 histograms: male bucket (2, 2, 1), female
    /// bucket (2, 1, 1, 1), three diseases in the domain.
    pub(crate) fn figure3_set() -> HistogramSet {
        let male =
            SensitiveHistogram::from_counts([(SValue(0), 2u64), (SValue(1), 2), (SValue(2), 1)]);
        let female = SensitiveHistogram::from_counts([
            (SValue(0), 2u64),
            (SValue(1), 1),
            (SValue(2), 1),
            (SValue(3), 1),
        ]);
        HistogramSet::new(vec![male, female], 4).unwrap()
    }

    #[test]
    fn registry_round_trips_names() {
        for (id, name) in MODEL_IDS.iter().zip(MODEL_NAMES) {
            assert_eq!(id.name(), name);
            assert_eq!(name.parse::<ModelId>().unwrap(), *id);
            assert_eq!(id.to_string(), name);
            assert_eq!(MODEL_IDS[id.index()], *id);
        }
        assert!("l-diversity".parse::<ModelId>().is_err());
        let err = "bogus".parse::<ModelId>().unwrap_err();
        assert!(err.contains("conjunction") && err.contains("sequential"));
    }

    #[test]
    fn default_is_conjunction() {
        assert_eq!(ModelId::default(), ModelId::Conjunction);
    }

    #[test]
    fn resolve_matches_registry() {
        let engine = Arc::new(DisclosureEngine::new(2));
        for id in MODEL_IDS {
            let model = id.resolve(Arc::clone(&engine));
            assert_eq!(model.name(), id.name());
            assert_eq!(model.k(), 2);
        }
    }

    #[test]
    fn all_models_agree_at_k0_with_frequency_ratio() {
        let set = figure3_set();
        let engine = Arc::new(DisclosureEngine::new(0));
        for id in MODEL_IDS {
            let model = id.resolve(Arc::clone(&engine));
            let v = model.max_disclosure(&set).unwrap();
            assert!(
                (v - set.max_frequency_ratio()).abs() < 1e-15,
                "{}: {v} != {}",
                id,
                set.max_frequency_ratio()
            );
        }
    }

    #[test]
    fn all_models_monotone_in_k() {
        let set = figure3_set();
        for id in MODEL_IDS {
            let mut prev = 0.0;
            for k in 0..6 {
                let engine = Arc::new(DisclosureEngine::new(k));
                let v = id
                    .resolve(Arc::clone(&engine))
                    .max_disclosure(&set)
                    .unwrap();
                assert!(v >= prev - 1e-15, "{id} not monotone at k={k}");
                assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }
    }

    #[test]
    fn composition_styles() {
        let engine = Arc::new(DisclosureEngine::new(1));
        for id in MODEL_IDS {
            let style = id.resolve(Arc::clone(&engine)).composition();
            if id == ModelId::Sequential {
                assert_eq!(style, CompositionStyle::CommonRefinement);
            } else {
                assert_eq!(style, CompositionStyle::UnionOfBuckets);
            }
        }
    }
}
