//! Crash-injection matrix for the durable catalog.
//!
//! A crash is a *prefix* of the bytes the store wrote: the kernel persists
//! `write` + `fsync` in order, so killing the process at any instant leaves
//! the WAL truncated at some byte boundary (possibly mid-frame) and the
//! catalog either old, new, or accompanied by a stale `catalog.tmp`. These
//! tests manufacture **every** such state mechanically — truncate the WAL
//! at every byte, cross old/new catalogs with old/new WALs — and assert the
//! reopened store always equals the longest acknowledged-operation prefix:
//! no torn records surface, nothing acknowledged is lost, and the store
//! stays writable afterwards.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use wcbk_store::{DatasetStore, StoreOptions};

/// A fresh scratch directory (removed on drop) under the target tmpdir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wcbk-crash-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn join(&self, sub: &str) -> PathBuf {
        self.0.join(sub)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = fs::remove_dir_all(to);
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// What the world should look like: fingerprint → (payload, releases).
type Expected = BTreeMap<u64, (Vec<u8>, Vec<Vec<u8>>)>;

fn assert_state(store: &DatasetStore, expected: &Expected) {
    let mut fps = store.fingerprints();
    fps.sort_unstable();
    let want: Vec<u64> = expected.keys().copied().collect();
    assert_eq!(fps, want, "dataset set mismatch");
    for (fp, (payload, releases)) in expected {
        let got = store.get(*fp).expect("registered dataset present");
        assert_eq!(&got.payload, payload, "payload of {fp:#x}");
        assert_eq!(&got.releases, releases, "releases of {fp:#x}");
    }
}

/// One scripted acknowledged operation and the state it must leave behind.
type Step = (&'static str, Box<dyn Fn(&DatasetStore)>, Expected);

/// The acknowledged-op script every test replays: each step mutates the
/// store and returns the expected post-state.
fn script() -> Vec<Step> {
    let p1 = b"payload-one".to_vec();
    let p2 = b"payload-two, a little longer".to_vec();
    let r1 = b"release-a".to_vec();
    let r2 = b"release-b!".to_vec();
    let mut s0 = Expected::new();
    s0.insert(0x11, (p1.clone(), vec![]));
    let mut s1 = s0.clone();
    s1.get_mut(&0x11).unwrap().1.push(r1.clone());
    let mut s2 = s1.clone();
    s2.insert(0x22, (p2.clone(), vec![]));
    let mut s3 = s2.clone();
    s3.get_mut(&0x11).unwrap().1.push(r2.clone());
    let mut s4 = s3.clone();
    s4.remove(&0x22);
    vec![
        (
            "register 0x11",
            Box::new({
                let p1 = p1.clone();
                move |s: &DatasetStore| assert!(s.register(0x11, &p1).unwrap())
            }) as Box<dyn Fn(&DatasetStore)>,
            s0,
        ),
        (
            "release a on 0x11",
            Box::new(move |s| assert_eq!(s.append_release(0x11, &r1).unwrap(), 1)),
            s1,
        ),
        (
            "register 0x22",
            Box::new(move |s| assert!(s.register(0x22, &p2).unwrap())),
            s2,
        ),
        (
            "release b on 0x11",
            Box::new(move |s| assert_eq!(s.append_release(0x11, &r2).unwrap(), 2)),
            s3,
        ),
        (
            "delete 0x22",
            Box::new(|s| assert!(s.delete(0x22).unwrap())),
            s4,
        ),
    ]
}

/// No-auto-checkpoint options so every scripted op stays in the WAL.
fn wal_only() -> StoreOptions {
    StoreOptions {
        checkpoint_bytes: u64::MAX,
    }
}

/// The headline matrix: run the script, note the WAL length after every
/// acknowledged op, then for **every byte length** of the final WAL, crash
/// there (truncate a copy), reopen, and demand exactly the state of the
/// last op whose full frame survived — and that the survivor still accepts
/// new writes.
#[test]
fn wal_truncated_at_every_byte_recovers_longest_acknowledged_prefix() {
    let scratch = Scratch::new("matrix");
    let live = scratch.join("live");
    {
        let _store = DatasetStore::open_with(&live, wal_only()).unwrap();
        // Empty-store baseline: a crash before the first op.
        assert_eq!(fs::metadata(live.join("wal")).unwrap().len(), 0);
    }
    let mut wal_len_after: Vec<(u64, Expected)> = vec![(0, Expected::new())];
    {
        let store = DatasetStore::open_with(&live, wal_only()).unwrap();
        for (what, op, expected) in script() {
            op(&store);
            let len = fs::metadata(live.join("wal")).unwrap().len();
            assert!(
                len > wal_len_after.last().unwrap().0,
                "{what} did not grow the WAL"
            );
            wal_len_after.push((len, expected));
        }
    }
    let wal = fs::read(live.join("wal")).unwrap();
    for cut in 0..=wal.len() as u64 {
        let crashed = scratch.join("crashed");
        copy_dir(&live, &crashed);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(crashed.join("wal"))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        // The state must be that of the last op fully on disk at `cut`.
        let expected = wal_len_after
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, e)| e)
            .unwrap();
        let store = DatasetStore::open_with(&crashed, wal_only()).unwrap();
        assert_state(&store, expected);
        // Still writable: a post-crash registration lands durably.
        assert!(store.register(0x99, b"post-crash").unwrap());
        drop(store);
        let reopened = DatasetStore::open_with(&crashed, wal_only()).unwrap();
        assert_eq!(reopened.get(0x99).unwrap().payload, b"post-crash");
    }
}

/// A crash *between* the checkpoint's catalog rename and the WAL reset
/// leaves a new catalog next to a WAL full of already-applied records.
/// Replay must skip them (their sequence numbers are stale) and end in the
/// identical state, still writable at the right sequence.
#[test]
fn crash_between_catalog_rename_and_wal_reset_is_idempotent() {
    let scratch = Scratch::new("rename");
    let live = scratch.join("live");
    let final_state;
    {
        let store = DatasetStore::open_with(&live, wal_only()).unwrap();
        let script = script();
        final_state = script.last().unwrap().2.clone();
        for (_, op, _) in &script {
            op(&store);
        }
    }
    // Keep the pre-checkpoint WAL, then checkpoint a copy to get the
    // post-rename catalog; combining them is exactly the torn interleaving.
    let wal_bytes = fs::read(live.join("wal")).unwrap();
    {
        let store = DatasetStore::open_with(&live, wal_only()).unwrap();
        store.checkpoint().unwrap();
    }
    let torn = scratch.join("torn");
    copy_dir(&live, &torn);
    fs::write(torn.join("wal"), &wal_bytes).unwrap();
    let store = DatasetStore::open_with(&torn, wal_only()).unwrap();
    assert_state(&store, &final_state);
    assert_eq!(store.stats().replayed_records, 0, "stale records reapplied");
    // Sequence numbering survived the skip: new ops commit and replay.
    assert_eq!(store.append_release(0x11, b"release-c").unwrap(), 3);
    drop(store);
    let reopened = DatasetStore::open_with(&torn, wal_only()).unwrap();
    assert_eq!(reopened.get(0x11).unwrap().releases.len(), 3);
}

/// A crash mid-`catalog.tmp` write (before the rename) leaves a garbage
/// temp file; the store must ignore and clear it, serving the old
/// catalog + WAL state untouched.
#[test]
fn stale_catalog_tmp_is_ignored_and_cleared() {
    let scratch = Scratch::new("tmp");
    let live = scratch.join("live");
    let final_state;
    {
        let store = DatasetStore::open_with(&live, wal_only()).unwrap();
        let script = script();
        final_state = script.last().unwrap().2.clone();
        for (_, op, _) in &script {
            op(&store);
        }
    }
    fs::write(live.join("catalog.tmp"), b"\xde\xad\xbe\xef half a catalog").unwrap();
    let store = DatasetStore::open_with(&live, wal_only()).unwrap();
    assert_state(&store, &final_state);
    assert!(!live.join("catalog.tmp").exists(), "stale tmp not cleared");
}

/// Garbage appended past the last good frame (a torn append of arbitrary
/// junk) is dropped on replay and the log stays appendable — the reclaimed
/// tail must not corrupt the *next* record.
#[test]
fn garbage_wal_tail_is_dropped_and_log_stays_appendable() {
    let scratch = Scratch::new("garbage");
    let live = scratch.join("live");
    let final_state;
    {
        let store = DatasetStore::open_with(&live, wal_only()).unwrap();
        let script = script();
        final_state = script.last().unwrap().2.clone();
        for (_, op, _) in &script {
            op(&store);
        }
    }
    let mut wal = fs::read(live.join("wal")).unwrap();
    wal.extend_from_slice(&[0xab; 33]);
    fs::write(live.join("wal"), &wal).unwrap();
    let store = DatasetStore::open_with(&live, wal_only()).unwrap();
    assert_state(&store, &final_state);
    assert_eq!(store.stats().truncated_bytes, 33);
    assert!(store.register(0x33, b"after-garbage").unwrap());
    drop(store);
    let reopened = DatasetStore::open_with(&live, wal_only()).unwrap();
    assert_eq!(reopened.get(0x33).unwrap().payload, b"after-garbage");
}

/// With `checkpoint_bytes: 0` every commit checkpoints; crashing after any
/// op (simulated: the files as they are, since the WAL is always empty
/// post-commit) reopens to the full state with zero replay — the catalog
/// alone carries it.
#[test]
fn checkpoint_every_commit_leaves_nothing_in_the_wal() {
    let scratch = Scratch::new("ckpt");
    let live = scratch.join("live");
    let opts = || StoreOptions {
        checkpoint_bytes: 0,
    };
    let final_state;
    {
        let store = DatasetStore::open_with(&live, opts()).unwrap();
        let script = script();
        final_state = script.last().unwrap().2.clone();
        for (_, op, _) in &script {
            op(&store);
            assert_eq!(fs::metadata(live.join("wal")).unwrap().len(), 0);
        }
    }
    let store = DatasetStore::open_with(&live, opts()).unwrap();
    assert_state(&store, &final_state);
    assert_eq!(store.stats().replayed_records, 0);
}
