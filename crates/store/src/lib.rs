//! # wcbk-store — the embedded, crash-safe dataset catalog
//!
//! The dataset-handle API made "register once, audit forever" the service
//! contract, but a process holds its catalog in memory: a restart forgets
//! every handle and the sequential-release audit trail behind
//! `audit_composition`. This crate is the persistence layer that removes
//! that asterisk — **std-only, no dependencies**, one directory on disk:
//!
//! ```text
//! <data-dir>/
//!   wal          append-only write-ahead log (length+checksum framed)
//!   catalog      page-based checkpoint of the full catalog state
//!   catalog.tmp  transient; a crashed checkpoint leaves one, open removes it
//! ```
//!
//! ## Durability model
//!
//! Every mutation is one **transaction** through [`DatasetStore`]:
//!
//! 1. a WAL record (monotone sequence number + operation + body) is framed
//!    as `[len][checksum][payload]` and appended to the log,
//! 2. the log is `fsync`ed — only now is the operation acknowledged,
//! 3. the operation is applied to the in-memory catalog,
//! 4. once the log outgrows a threshold, a **checkpoint** rewrites the
//!    page-based catalog file atomically (write `catalog.tmp`, `fsync`,
//!    rename over `catalog`, `fsync` the directory) and truncates the log.
//!
//! On [`DatasetStore::open`] the catalog file is loaded (it records the
//! sequence number it is current through) and the WAL is **replayed**:
//! records with stale sequence numbers are skipped (a crash between
//! checkpoint-rename and log-truncate re-reads them harmlessly), and the
//! first torn or corrupt frame — a crash mid-append — truncates the log
//! tail. The result is exactly the acknowledged history: an operation
//! whose `fsync` never returned may be missing, but nothing torn is ever
//! visible and nothing acknowledged is ever lost.
//!
//! The store maps `dataset_fingerprint` keys to opaque payload bytes plus
//! an append-only list of release records — *what* those bytes encode is
//! the caller's business (`wcbk-serve` stores encoded column blocks and
//! release nodes), which keeps this crate dependency-free and the format
//! honest: bytes in, the same bytes out, across any crash.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod codec;
mod error;
mod store;
mod wal;

pub use error::StoreError;
pub use store::{DatasetStore, StoreOptions, StoreStats, StoredDataset};
