//! The transaction manager: the public face of the crate.
//!
//! [`DatasetStore`] serializes every mutation through one lock and runs the
//! four-step transaction described in the crate docs: frame a WAL record,
//! `fsync`, apply to the in-memory catalog, and checkpoint once the log
//! outgrows its threshold. Reads never touch disk — the catalog lives in
//! memory after open, which is the right trade for a service whose working
//! set is the catalog itself.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::catalog::{self, Entry};
use crate::codec::{Reader, Writer};
use crate::wal::Wal;
use crate::StoreError;

const OP_REGISTER: u8 = 1;
const OP_RELEASE: u8 = 2;
const OP_DELETE: u8 = 3;

/// Tuning knobs for [`DatasetStore::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Checkpoint (rewrite the catalog, truncate the WAL) once the log
    /// exceeds this many bytes. Zero checkpoints after every transaction.
    pub checkpoint_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        // Datasets dominate WAL volume; 1 MiB keeps replay short without
        // checkpointing on every release append.
        Self {
            checkpoint_bytes: 1 << 20,
        }
    }
}

/// Counters exposed through the service `/stats` endpoint.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Datasets currently in the catalog.
    pub datasets: u64,
    /// Release records across all datasets.
    pub releases: u64,
    /// Records currently sitting in the WAL (drops to zero at checkpoint).
    pub wal_records: u64,
    /// Bytes currently in the WAL.
    pub wal_bytes: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
    /// WAL records replayed (and applied) during open.
    pub replayed_records: u64,
    /// Torn-tail bytes truncated during open.
    pub truncated_bytes: u64,
    /// WAL appends since open — unlike `wal_records`, never zeroed by a
    /// checkpoint, so it is safe to mirror into a monotone counter.
    pub wal_appends: u64,
    /// Cumulative WAL append wall time (frame write) in microseconds.
    pub wal_append_micros: u64,
    /// Cumulative WAL `sync_data` wall time in microseconds.
    pub wal_fsync_micros: u64,
    /// Cumulative wall time spent writing checkpoints, in microseconds.
    pub checkpoint_micros: u64,
}

/// One dataset read back from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDataset {
    /// The `dataset_fingerprint` key.
    pub fingerprint: u64,
    /// The opaque payload given to [`DatasetStore::register`].
    pub payload: Vec<u8>,
    /// Release records in append order.
    pub releases: Vec<Vec<u8>>,
}

struct Inner {
    entries: BTreeMap<u64, Entry>,
    wal: Wal,
    /// Highest sequence number reflected in the on-disk catalog file.
    applied_seq: u64,
    /// Sequence number the next transaction will use.
    next_seq: u64,
    checkpoints: u64,
    checkpoint_micros: u64,
    replayed_records: u64,
    truncated_bytes: u64,
}

/// An embedded, crash-safe map from dataset fingerprints to payload bytes
/// plus append-only release histories. All methods are `&self`; internal
/// locking serializes writers, and `Ok` from a mutation means the change is
/// durable.
pub struct DatasetStore {
    dir: PathBuf,
    options: StoreOptions,
    inner: Mutex<Inner>,
}

impl DatasetStore {
    /// Opens the store rooted at `dir` with default options, creating the
    /// directory if needed and replaying any existing state.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`DatasetStore::open`] with explicit tuning.
    pub fn open_with(dir: &Path, options: StoreOptions) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        let snapshot = catalog::load(dir)?;
        let (wal, payloads, report) = Wal::open(&dir.join("wal"))?;

        let mut entries = snapshot.entries;
        let applied_seq = snapshot.applied_seq;
        let mut next_seq = applied_seq + 1;
        let mut replayed = 0u64;
        for payload in payloads {
            let (seq, op, body) = decode_record(&payload)?;
            if seq <= applied_seq {
                // The catalog checkpoint already contains this record; the
                // process crashed between the rename and the WAL truncate.
                continue;
            }
            if seq != next_seq {
                return Err(StoreError::Corrupt(format!(
                    "WAL sequence gap: expected {next_seq}, found {seq}"
                )));
            }
            apply(&mut entries, op, body)?;
            next_seq = seq + 1;
            replayed += 1;
        }

        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            inner: Mutex::new(Inner {
                entries,
                wal,
                applied_seq,
                next_seq,
                checkpoints: 0,
                checkpoint_micros: 0,
                replayed_records: replayed,
                truncated_bytes: report.truncated_bytes,
            }),
        })
    }

    /// Directory the store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads one dataset, or `None` if the fingerprint is not registered.
    pub fn get(&self, fingerprint: u64) -> Option<StoredDataset> {
        let inner = self.inner.lock().expect("store lock");
        inner.entries.get(&fingerprint).map(|e| StoredDataset {
            fingerprint,
            payload: e.payload.clone(),
            releases: e.releases.clone(),
        })
    }

    /// Fingerprints currently in the catalog, ascending.
    pub fn fingerprints(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("store lock");
        inner.entries.keys().copied().collect()
    }

    /// Registers `payload` under `fingerprint`. First writer wins: returns
    /// `Ok(true)` when the dataset was created, `Ok(false)` when the
    /// fingerprint already exists (nothing is written in that case).
    pub fn register(&self, fingerprint: u64, payload: &[u8]) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.entries.contains_key(&fingerprint) {
            return Ok(false);
        }
        let mut body = Writer::new();
        body.u64(fingerprint);
        body.bytes(payload);
        self.commit(&mut inner, OP_REGISTER, &body.into_vec())?;
        Ok(true)
    }

    /// Appends one release record to `fingerprint`'s history and returns
    /// the new history length.
    pub fn append_release(&self, fingerprint: u64, record: &[u8]) -> Result<usize, StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        if !inner.entries.contains_key(&fingerprint) {
            return Err(StoreError::UnknownDataset(fingerprint));
        }
        let mut body = Writer::new();
        body.u64(fingerprint);
        body.bytes(record);
        self.commit(&mut inner, OP_RELEASE, &body.into_vec())?;
        Ok(inner.entries[&fingerprint].releases.len())
    }

    /// Removes `fingerprint` and its history. Returns whether it existed.
    pub fn delete(&self, fingerprint: u64) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        if !inner.entries.contains_key(&fingerprint) {
            return Ok(false);
        }
        let mut body = Writer::new();
        body.u64(fingerprint);
        self.commit(&mut inner, OP_DELETE, &body.into_vec())?;
        Ok(true)
    }

    /// Forces a checkpoint now, regardless of WAL size.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        self.checkpoint_locked(&mut inner)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            datasets: inner.entries.len() as u64,
            releases: inner
                .entries
                .values()
                .map(|e| e.releases.len() as u64)
                .sum(),
            wal_records: inner.wal.records,
            wal_bytes: inner.wal.bytes,
            checkpoints: inner.checkpoints,
            replayed_records: inner.replayed_records,
            truncated_bytes: inner.truncated_bytes,
            wal_appends: inner.wal.appends,
            wal_append_micros: inner.wal.append_micros,
            wal_fsync_micros: inner.wal.fsync_micros,
            checkpoint_micros: inner.checkpoint_micros,
        }
    }

    /// The four-step transaction: frame → fsync append → apply → maybe
    /// checkpoint. The sequence number is only advanced after the append
    /// succeeds, so a failed write leaves no state change at all.
    fn commit(&self, inner: &mut Inner, op: u8, body: &[u8]) -> Result<(), StoreError> {
        let seq = inner.next_seq;
        let mut rec = Writer::new();
        rec.u64(seq);
        rec.u8(op);
        let mut rec = rec.into_vec();
        rec.extend_from_slice(body);
        inner.wal.append(&rec)?;
        apply(&mut inner.entries, op, body)?;
        inner.next_seq = seq + 1;
        if inner.wal.bytes > self.options.checkpoint_bytes {
            self.checkpoint_locked(inner)?;
        }
        Ok(())
    }

    fn checkpoint_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let started = std::time::Instant::now();
        let through = inner.next_seq - 1;
        catalog::write(&self.dir, through, &inner.entries)?;
        // The catalog now covers everything in the log; a crash before this
        // truncate is harmless because replay skips seq <= applied_seq.
        inner.wal.reset()?;
        inner.applied_seq = through;
        inner.checkpoints += 1;
        inner.checkpoint_micros += started.elapsed().as_micros() as u64;
        Ok(())
    }
}

fn decode_record(payload: &[u8]) -> Result<(u64, u8, &[u8]), StoreError> {
    if payload.len() < 9 {
        return Err(StoreError::Corrupt(format!(
            "WAL record of {} bytes is shorter than its header",
            payload.len()
        )));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    Ok((seq, payload[8], &payload[9..]))
}

/// Applies one decoded operation to the entry map. Used both by live
/// commits and by replay, so the two can never diverge.
fn apply(entries: &mut BTreeMap<u64, Entry>, op: u8, body: &[u8]) -> Result<(), StoreError> {
    let mut r = Reader::new(body);
    let fp = r.u64("record fingerprint")?;
    match op {
        OP_REGISTER => {
            let payload = r.bytes("register payload")?;
            // Replay after a first-writer-wins race can only re-insert the
            // same bytes; last write is as correct as first.
            entries.insert(
                fp,
                Entry {
                    payload,
                    releases: Vec::new(),
                },
            );
        }
        OP_RELEASE => {
            let record = r.bytes("release record")?;
            // Lenient on a release whose dataset was deleted later in the
            // log: the delete will drop it anyway, and strictness here
            // would make replay order-fragile.
            entries
                .entry(fp)
                .or_insert_with(|| Entry {
                    payload: Vec::new(),
                    releases: Vec::new(),
                })
                .releases
                .push(record);
        }
        OP_DELETE => {
            entries.remove(&fp);
        }
        other => {
            return Err(StoreError::Corrupt(format!("unknown WAL opcode {other}")));
        }
    }
    if !r.done() {
        return Err(StoreError::Corrupt("WAL record has trailing bytes".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wcbk-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn register_release_delete_survive_reopen() {
        let dir = tmp("basic");
        {
            let store = DatasetStore::open(&dir).unwrap();
            assert!(store.register(7, b"dataset-seven").unwrap());
            assert!(!store.register(7, b"other-bytes").unwrap());
            assert_eq!(store.append_release(7, b"node-a").unwrap(), 1);
            assert_eq!(store.append_release(7, b"node-b").unwrap(), 2);
            assert!(store.register(9, b"dataset-nine").unwrap());
            assert!(store.delete(9).unwrap());
            assert!(!store.delete(9).unwrap());
        }
        let store = DatasetStore::open(&dir).unwrap();
        let d = store.get(7).unwrap();
        assert_eq!(d.payload, b"dataset-seven");
        assert_eq!(d.releases, vec![b"node-a".to_vec(), b"node-b".to_vec()]);
        assert!(store.get(9).is_none());
        assert_eq!(store.fingerprints(), vec![7]);
        // Five durable ops: the duplicate register and second delete were
        // no-ops that never reached the WAL.
        assert_eq!(store.stats().replayed_records, 5);
    }

    #[test]
    fn release_to_unknown_fingerprint_is_rejected() {
        let dir = tmp("unknown");
        let store = DatasetStore::open(&dir).unwrap();
        assert!(matches!(
            store.append_release(5, b"x"),
            Err(StoreError::UnknownDataset(5))
        ));
    }

    #[test]
    fn checkpoint_truncates_wal_and_state_survives() {
        let dir = tmp("ckpt");
        {
            let store = DatasetStore::open_with(
                &dir,
                StoreOptions {
                    checkpoint_bytes: 0,
                },
            )
            .unwrap();
            store.register(1, b"one").unwrap();
            store.append_release(1, b"r").unwrap();
            let s = store.stats();
            assert_eq!(s.checkpoints, 2);
            assert_eq!(s.wal_records, 0);
            assert_eq!(s.wal_bytes, 0);
        }
        let store = DatasetStore::open(&dir).unwrap();
        let s = store.stats();
        // Everything came from the catalog file, not WAL replay.
        assert_eq!(s.replayed_records, 0);
        assert_eq!(store.get(1).unwrap().releases, vec![b"r".to_vec()]);
    }

    #[test]
    fn stale_wal_after_checkpoint_rename_is_skipped() {
        // Simulate a crash between catalog rename and WAL truncate: take a
        // checkpoint, then restore the pre-checkpoint WAL bytes.
        let dir = tmp("stale-wal");
        let wal_before;
        {
            let store = DatasetStore::open(&dir).unwrap();
            store.register(3, b"three").unwrap();
            store.append_release(3, b"r0").unwrap();
            wal_before = fs::read(dir.join("wal")).unwrap();
            store.checkpoint().unwrap();
        }
        fs::write(dir.join("wal"), &wal_before).unwrap();
        let store = DatasetStore::open(&dir).unwrap();
        // Replay saw the records but skipped them as stale.
        assert_eq!(store.stats().replayed_records, 0);
        let d = store.get(3).unwrap();
        assert_eq!(d.payload, b"three");
        assert_eq!(d.releases, vec![b"r0".to_vec()]);
        // The store remains writable at the right sequence.
        store.append_release(3, b"r1").unwrap();
        drop(store);
        let store = DatasetStore::open(&dir).unwrap();
        assert_eq!(store.get(3).unwrap().releases.len(), 2);
    }

    #[test]
    fn auto_checkpoint_fires_on_threshold() {
        let dir = tmp("auto");
        let store = DatasetStore::open_with(
            &dir,
            StoreOptions {
                checkpoint_bytes: 64,
            },
        )
        .unwrap();
        store.register(1, &[0u8; 256]).unwrap();
        assert_eq!(store.stats().checkpoints, 1);
        assert_eq!(store.stats().wal_bytes, 0);
    }
}
