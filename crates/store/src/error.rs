//! Error type for the embedded store.

use std::fmt;

/// Errors opening or mutating a [`crate::DatasetStore`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A persisted structure failed validation (bad magic, checksum
    /// mismatch away from the WAL tail, impossible lengths). Unlike a torn
    /// WAL tail — which replay repairs silently — this means the files were
    /// damaged after they were durably written.
    Corrupt(String),
    /// The addressed fingerprint is not in the catalog.
    UnknownDataset(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::UnknownDataset(fp) => {
                write!(f, "no dataset registered under fingerprint {fp:016x}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
