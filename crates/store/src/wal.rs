//! Append-only write-ahead log with length+checksum framing.
//!
//! Each record is framed as `[len: u32 LE][crc: u64 LE][payload: len bytes]`
//! where `crc = fnv64(payload)`. Appends write the frame and `fsync` before
//! returning, so a record that `append` acknowledged survives any crash.
//! Replay scans frames from the front and stops at the first one that is
//! truncated, oversized, or fails its checksum — that is the torn tail a
//! crash mid-append leaves — and truncates the file back to the last good
//! frame so later appends start from a clean boundary.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::codec::fnv64;
use crate::StoreError;

/// Frame header size: length (4) + checksum (8).
const HEADER: usize = 12;

/// Upper bound on a single record; a declared length past this is garbage,
/// not a huge record (payloads are dataset blocks, well under this).
const MAX_RECORD: u32 = 1 << 30;

/// What replay found on open.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayReport {
    /// Bytes cut off the tail (0 when the log ended cleanly).
    pub truncated_bytes: u64,
}

/// The open log file plus its running size.
pub struct Wal {
    file: File,
    /// Current file length — every byte of it is a valid frame.
    pub bytes: u64,
    /// Records appended or replayed since open.
    pub records: u64,
    /// Appends performed since open. Unlike `records`, never zeroed by
    /// [`Wal::reset`] — a monotone source for metrics mirroring.
    pub appends: u64,
    /// Cumulative wall time of append frame writes (the `write_all`), in
    /// microseconds. Never reset.
    pub append_micros: u64,
    /// Cumulative wall time of append `sync_data` calls, in microseconds.
    /// Never reset — fsync latency is the durability cost worth watching.
    pub fsync_micros: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays every valid
    /// frame into the returned payload list, and truncates any torn tail.
    pub fn open(path: &Path) -> Result<(Self, Vec<Vec<u8>>, ReplayReport), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut payloads = Vec::new();
        let mut good = 0usize;
        while raw.len() - good >= HEADER {
            let len = u32::from_le_bytes(raw[good..good + 4].try_into().unwrap());
            let crc = u64::from_le_bytes(raw[good + 4..good + 12].try_into().unwrap());
            if len > MAX_RECORD {
                break;
            }
            let end = good + HEADER + len as usize;
            if end > raw.len() {
                break;
            }
            let payload = &raw[good + HEADER..end];
            if fnv64(payload) != crc {
                break;
            }
            payloads.push(payload.to_vec());
            good = end;
        }

        let truncated = (raw.len() - good) as u64;
        if truncated > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
            // read_to_end left the cursor past the new EOF; appending there
            // would punch a zero-filled hole the next replay reads as a
            // torn frame. Park it at the truncation point.
            file.seek(SeekFrom::Start(good as u64))?;
        }
        let report = ReplayReport {
            truncated_bytes: truncated,
        };
        let wal = Wal {
            file,
            bytes: good as u64,
            records: payloads.len() as u64,
            appends: 0,
            append_micros: 0,
            fsync_micros: 0,
        };
        Ok((wal, payloads, report))
    }

    /// Appends one framed record and syncs it to disk. When this returns
    /// `Ok`, the record is durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD)
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "record of {} bytes exceeds the WAL limit",
                    payload.len()
                ))
            })?;
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // One write so a crash tears at most this frame, never an earlier one.
        let write_started = std::time::Instant::now();
        self.file.write_all(&frame)?;
        let sync_started = std::time::Instant::now();
        self.file.sync_data()?;
        self.append_micros += sync_started.duration_since(write_started).as_micros() as u64;
        self.fsync_micros += sync_started.elapsed().as_micros() as u64;
        self.appends += 1;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Empties the log after a checkpoint made its contents redundant.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.bytes = 0;
        self.records = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wcbk-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("round");
        {
            let (mut wal, payloads, _) = Wal::open(&path).unwrap();
            assert!(payloads.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two-longer").unwrap();
            wal.append(b"").unwrap();
        }
        let (wal, payloads, report) = Wal::open(&path).unwrap();
        assert_eq!(
            payloads,
            vec![b"one".to_vec(), b"two-longer".to_vec(), Vec::new()]
        );
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(wal.records, 3);
    }

    #[test]
    fn torn_tail_at_every_byte_recovers_prefix() {
        let path = tmp("torn");
        let full = {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta-record").unwrap();
            wal.append(b"gamma!").unwrap();
            std::fs::read(&path).unwrap()
        };
        // Frame boundaries: after each record the prefix is fully valid.
        let bounds = [0, 12 + 5, 12 + 5 + 12 + 11, full.len()];
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, payloads, report) = Wal::open(&path).unwrap();
            let expect = bounds.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(payloads.len(), expect, "cut at byte {cut}");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                bounds[expect] as u64,
                "cut at byte {cut} should truncate to last good frame"
            );
            let at_boundary = bounds.contains(&cut);
            assert_eq!(
                report.truncated_bytes == 0,
                at_boundary,
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn garbage_tail_is_dropped_and_log_reusable() {
        let path = tmp("garbage");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(b"kept").unwrap();
        }
        // Simulate a torn append whose length bytes are pure noise.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xff; 40]);
        std::fs::write(&path, &raw).unwrap();
        let (mut wal, payloads, report) = Wal::open(&path).unwrap();
        assert_eq!(payloads, vec![b"kept".to_vec()]);
        assert_eq!(report.truncated_bytes, 40);
        // New appends after recovery land on a clean boundary.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, payloads, _) = Wal::open(&path).unwrap();
        assert_eq!(payloads, vec![b"kept".to_vec(), b"after".to_vec()]);
    }

    #[test]
    fn corrupt_checksum_mid_file_truncates_from_there() {
        let path = tmp("crc");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        let idx = 12 + 5 + 12;
        raw[idx] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let (_, payloads, report) = Wal::open(&path).unwrap();
        assert_eq!(payloads, vec![b"first".to_vec()]);
        assert!(report.truncated_bytes > 0);
    }
}
