//! Little-endian byte (de)serialization primitives shared by the WAL and
//! the catalog file, plus the FNV-1a checksum both use for framing.

use crate::StoreError;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// 64-bit FNV-1a over `bytes` — the framing checksum. Not cryptographic:
/// it detects torn writes and bit rot, the only adversaries here (the same
/// trade the dataset fingerprint makes).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Appends little-endian primitives to a byte buffer.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads the primitives [`Writer`] appends, failing (never panicking) on
/// truncated or oversized input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "truncated record: wanted {n} bytes for {what} at offset {}",
                    self.pos
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Length-prefixed raw bytes; the length is validated against the
    /// remaining input before any allocation.
    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, StoreError> {
        let len = self.u64(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if len > remaining {
            return Err(StoreError::Corrupt(format!(
                "{what}: declared length {len} exceeds the {remaining} bytes left"
            )));
        }
        Ok(self.take(len as usize, what)?.to_vec())
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bytes(b"payload");
        let buf = w.into_vec();
        assert_eq!(buf[0], 7);
        let mut r = Reader::new(&buf[1..]);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes("d").unwrap(), b"payload");
        assert!(r.done());
    }

    #[test]
    fn truncation_and_oversized_lengths_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32("x").is_err());
        // A declared length far past the buffer must not allocate or panic.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let buf = w.into_vec();
        assert!(Reader::new(&buf).bytes("y").is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), FNV_OFFSET);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        // Pinned constant: the on-disk format depends on this function
        // never changing.
        assert_eq!(fnv64(b"wcbk"), 0x4f9c_71f6_2468_0d54);
    }
}
