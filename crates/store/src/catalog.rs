//! Page-based catalog checkpoint file.
//!
//! The catalog is the full store state serialized at one instant: a header
//! page followed by one entry per dataset, each starting on a 4096-byte
//! page boundary. The header records the WAL sequence number the snapshot
//! is current through (`applied_seq`), which is what makes replay
//! idempotent — a crash between the checkpoint rename and the WAL truncate
//! re-reads old records, and the sequence check skips them.
//!
//! The file is only ever replaced atomically: write `catalog.tmp`, `fsync`
//! it, rename over `catalog`, `fsync` the directory. Readers therefore see
//! either the old snapshot or the new one, never a mixture; a stale
//! `catalog.tmp` just means a checkpoint died and is removed on open.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::codec::{fnv64, Reader, Writer};
use crate::StoreError;

const PAGE: usize = 4096;
const HEADER_MAGIC: &[u8; 8] = b"WCBKCAT1";
const ENTRY_MAGIC: &[u8; 8] = b"WCBKENT1";
const VERSION: u32 = 1;

/// One dataset's persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Opaque registration payload (the caller's encoded dataset).
    pub payload: Vec<u8>,
    /// Append-only release records, in release order.
    pub releases: Vec<Vec<u8>>,
}

/// A decoded snapshot: the entry map plus the WAL sequence number it is
/// current through.
pub struct Snapshot {
    pub applied_seq: u64,
    pub entries: BTreeMap<u64, Entry>,
}

fn pad_to_page(buf: &mut Vec<u8>) {
    let rem = buf.len() % PAGE;
    if rem != 0 {
        buf.resize(buf.len() + (PAGE - rem), 0);
    }
}

/// Serializes a snapshot into the page-based on-disk image.
fn encode(applied_seq: u64, entries: &BTreeMap<u64, Entry>) -> Vec<u8> {
    let mut header = Writer::new();
    header.u32(VERSION);
    header.u64(applied_seq);
    header.u64(entries.len() as u64);
    let header_body = header.into_vec();

    let mut buf = Vec::with_capacity(PAGE * (1 + entries.len()));
    buf.extend_from_slice(HEADER_MAGIC);
    buf.extend_from_slice(&fnv64(&header_body).to_le_bytes());
    buf.extend_from_slice(&header_body);
    pad_to_page(&mut buf);

    for (&fp, entry) in entries {
        let mut body = Writer::new();
        body.u64(fp);
        body.bytes(&entry.payload);
        body.u64(entry.releases.len() as u64);
        for rec in &entry.releases {
            body.bytes(rec);
        }
        let body = body.into_vec();
        buf.extend_from_slice(ENTRY_MAGIC);
        buf.extend_from_slice(&fnv64(&body).to_le_bytes());
        buf.extend_from_slice(&(body.len() as u64).to_le_bytes());
        buf.extend_from_slice(&body);
        pad_to_page(&mut buf);
    }
    buf
}

fn decode(raw: &[u8]) -> Result<Snapshot, StoreError> {
    if raw.len() < PAGE {
        return Err(StoreError::Corrupt(format!(
            "catalog file is {} bytes, smaller than one page",
            raw.len()
        )));
    }
    if &raw[..8] != HEADER_MAGIC {
        return Err(StoreError::Corrupt("catalog header magic mismatch".into()));
    }
    let header_crc = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    // Header body is version + applied_seq + entry_count = 20 bytes.
    let header_body = &raw[16..16 + 20];
    if fnv64(header_body) != header_crc {
        return Err(StoreError::Corrupt(
            "catalog header checksum mismatch".into(),
        ));
    }
    let mut r = Reader::new(header_body);
    let version = r.u32("catalog version")?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "catalog version {version} is not supported (expected {VERSION})"
        )));
    }
    let applied_seq = r.u64("applied_seq")?;
    let entry_count = r.u64("entry_count")?;

    let mut entries = BTreeMap::new();
    let mut offset = PAGE;
    for i in 0..entry_count {
        if offset + 24 > raw.len() {
            return Err(StoreError::Corrupt(format!(
                "catalog entry {i} starts past end of file"
            )));
        }
        if &raw[offset..offset + 8] != ENTRY_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "catalog entry {i} magic mismatch"
            )));
        }
        let crc = u64::from_le_bytes(raw[offset + 8..offset + 16].try_into().unwrap());
        let body_len = u64::from_le_bytes(raw[offset + 16..offset + 24].try_into().unwrap());
        let body_len = usize::try_from(body_len)
            .ok()
            .filter(|&l| offset + 24 + l <= raw.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!("catalog entry {i} declares an impossible length"))
            })?;
        let body = &raw[offset + 24..offset + 24 + body_len];
        if fnv64(body) != crc {
            return Err(StoreError::Corrupt(format!(
                "catalog entry {i} checksum mismatch"
            )));
        }
        let mut r = Reader::new(body);
        let fp = r.u64("entry fingerprint")?;
        let payload = r.bytes("entry payload")?;
        let n_releases = r.u64("release count")?;
        let mut releases = Vec::new();
        for j in 0..n_releases {
            releases.push(r.bytes(&format!("release record {j}"))?);
        }
        if !r.done() {
            return Err(StoreError::Corrupt(format!(
                "catalog entry {i} has trailing bytes"
            )));
        }
        entries.insert(fp, Entry { payload, releases });
        // Next entry begins on the next page boundary.
        let consumed = 24 + body_len;
        offset += consumed.div_ceil(PAGE) * PAGE;
    }
    Ok(Snapshot {
        applied_seq,
        entries,
    })
}

/// Loads the catalog at `dir/catalog`, returning an empty snapshot when the
/// file does not exist yet. A stale `catalog.tmp` from a crashed checkpoint
/// is removed.
pub fn load(dir: &Path) -> Result<Snapshot, StoreError> {
    let tmp = dir.join("catalog.tmp");
    if tmp.exists() {
        fs::remove_file(&tmp)?;
    }
    let path = dir.join("catalog");
    let raw = match fs::read(&path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Snapshot {
                applied_seq: 0,
                entries: BTreeMap::new(),
            })
        }
        Err(e) => return Err(e.into()),
    };
    decode(&raw)
}

/// Atomically replaces `dir/catalog` with a snapshot of `entries` current
/// through `applied_seq`.
pub fn write(
    dir: &Path,
    applied_seq: u64,
    entries: &BTreeMap<u64, Entry>,
) -> Result<(), StoreError> {
    let image = encode(applied_seq, entries);
    let tmp = dir.join("catalog.tmp");
    let path = dir.join("catalog");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

/// `fsync` on the directory so the rename itself is durable. Directories
/// cannot be fsynced on every platform; failures there are ignored the way
/// sqlite and friends do.
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    match File::open(dir) {
        Ok(f) => {
            let _ = f.sync_all();
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

/// Reads the raw catalog bytes; test helper for corruption checks.
#[cfg(test)]
pub fn read_raw(dir: &Path) -> std::io::Result<Vec<u8>> {
    fs::read(dir.join("catalog"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wcbk-cat-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> BTreeMap<u64, Entry> {
        let mut m = BTreeMap::new();
        m.insert(
            0xdead_beef,
            Entry {
                payload: vec![1; 5000], // spans multiple pages
                releases: vec![b"r0".to_vec(), b"r1".to_vec()],
            },
        );
        m.insert(
            42,
            Entry {
                payload: b"tiny".to_vec(),
                releases: Vec::new(),
            },
        );
        m
    }

    #[test]
    fn round_trips_and_pages_align() {
        let dir = tmp("round");
        let entries = sample();
        write(&dir, 17, &entries).unwrap();
        let snap = load(&dir).unwrap();
        assert_eq!(snap.applied_seq, 17);
        assert_eq!(snap.entries, entries);
        let raw = read_raw(&dir).unwrap();
        assert_eq!(raw.len() % PAGE, 0);
    }

    #[test]
    fn missing_file_is_empty_snapshot() {
        let dir = tmp("empty");
        let snap = load(&dir).unwrap();
        assert_eq!(snap.applied_seq, 0);
        assert!(snap.entries.is_empty());
    }

    #[test]
    fn stale_tmp_is_removed() {
        let dir = tmp("stale");
        write(&dir, 3, &sample()).unwrap();
        fs::write(dir.join("catalog.tmp"), b"half a checkpoint").unwrap();
        let snap = load(&dir).unwrap();
        assert_eq!(snap.applied_seq, 3);
        assert!(!dir.join("catalog.tmp").exists());
    }

    #[test]
    fn bit_flips_are_detected() {
        let dir = tmp("flip");
        write(&dir, 9, &sample()).unwrap();
        let clean = read_raw(&dir).unwrap();
        // Flip a byte in the header body and in the first entry body.
        for idx in [20, PAGE + 40] {
            let mut raw = clean.clone();
            raw[idx] ^= 0x80;
            fs::write(dir.join("catalog"), &raw).unwrap();
            assert!(load(&dir).is_err(), "flip at byte {idx} not caught");
        }
    }

    #[test]
    fn truncated_catalog_is_an_error_not_a_panic() {
        let dir = tmp("trunc");
        write(&dir, 1, &sample()).unwrap();
        let raw = read_raw(&dir).unwrap();
        // Cuts that remove real data (the last page of `raw` is padding,
        // so raw.len()-1 would still decode — use 2*PAGE+30, inside the
        // second entry's body).
        for cut in [0, 7, PAGE - 1, PAGE + 10, 2 * PAGE + 30] {
            fs::write(dir.join("catalog"), &raw[..cut]).unwrap();
            assert!(load(&dir).is_err(), "cut at {cut} accepted");
        }
    }
}
