//! Property-based validation of the core algorithms against independent
//! oracles: the exact random-worlds engine, the paper-faithful recursion,
//! and structural invariants (monotonicity, bounds, witness fidelity).

use proptest::prelude::*;

use wcbk_core::minimize1::{brute_force_profiles, paper_recursion, Minimize1Table};
use wcbk_core::partial_order::{merge_buckets, refines};
use wcbk_core::{
    max_disclosure, negation_max_disclosure, Bucket, Bucketization, SensitiveHistogram,
};
use wcbk_table::{SValue, TupleId};
use wcbk_worlds::inference::atom_probability_given;
use wcbk_worlds::{BucketSpec, WorldSpace};

/// Strategy: a bucket's raw sensitive values (1..=6 tuples over codes 0..4).
fn bucket_values() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..4, 1..=6)
}

/// Strategy: 1..=4 buckets.
fn bucketization() -> impl Strategy<Value = Bucketization> {
    prop::collection::vec(bucket_values(), 1..=4).prop_map(|groups| {
        let mut next = 0u32;
        let buckets: Vec<Bucket> = groups
            .into_iter()
            .map(|vals| {
                let members: Vec<TupleId> = (0..vals.len())
                    .map(|_| {
                        let t = TupleId(next);
                        next += 1;
                        t
                    })
                    .collect();
                let values: Vec<SValue> = vals.into_iter().map(SValue).collect();
                Bucket::new(members, &values)
            })
            .collect();
        Bucketization::from_buckets(buckets, 4).unwrap()
    })
}

fn space_of(b: &Bucketization) -> WorldSpace {
    WorldSpace::new(
        b.to_parts()
            .into_iter()
            .map(|(m, v)| BucketSpec::new(m, v))
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The O(k³) table agrees with the paper's Algorithm 1 recursion and
    /// with brute force over profiles, for every c.
    #[test]
    fn minimize1_three_implementations_agree(vals in bucket_values(), kmax in 1usize..=6) {
        let values: Vec<SValue> = vals.iter().copied().map(SValue).collect();
        let hist = SensitiveHistogram::from_values(&values);
        let table = Minimize1Table::build(&hist, kmax);
        for c in 0..=kmax {
            let paper = if c == 0 { 1.0 } else { paper_recursion(&hist, 0, c, c) };
            let brute = brute_force_profiles(&hist, c);
            let dp = table.m1(c);
            if paper.is_finite() {
                prop_assert!((dp - paper).abs() < 1e-12, "c={c}: dp {dp} vs paper {paper}");
                prop_assert!((dp - brute).abs() < 1e-12, "c={c}: dp {dp} vs brute {brute}");
            } else {
                prop_assert!(!dp.is_finite());
            }
        }
    }

    /// Lemma 12 closed form == true minimum probability: check the DP's m1
    /// against exhaustive enumeration over *all* atom sets via the exact
    /// engine (single bucket, small sizes).
    #[test]
    fn minimize1_matches_exact_atom_search(vals in prop::collection::vec(0u32..3, 1..=5), k in 1usize..=2) {
        let values: Vec<SValue> = vals.iter().copied().map(SValue).collect();
        let hist = SensitiveHistogram::from_values(&values);
        let table = Minimize1Table::build(&hist, k);
        let members: Vec<TupleId> = (0..values.len() as u32).map(TupleId).collect();
        let space = WorldSpace::new(vec![BucketSpec::new(members.clone(), values.clone())]).unwrap();

        // Enumerate all k-multisets of atoms (person, value in domain 0..3)
        // and find the minimum Pr(∧ ¬atom).
        let mut atoms = Vec::new();
        for &m in &members {
            for v in 0..3u32 {
                atoms.push(wcbk_logic::Atom::new(m, SValue(v)));
            }
        }
        let mut min_p = f64::INFINITY;
        let idx: Vec<usize> = (0..atoms.len()).collect();
        // k <= 2: enumerate singles or pairs (with repetition harmless).
        if k == 1 {
            for &i in &idx {
                let f = wcbk_logic::Formula::not(wcbk_logic::Formula::Atom(atoms[i]));
                let p = space.probability(&f).unwrap().to_f64();
                min_p = min_p.min(p);
            }
        } else {
            for &i in &idx {
                for &j in &idx {
                    if j < i { continue; }
                    let f = wcbk_logic::Formula::and([
                        wcbk_logic::Formula::not(wcbk_logic::Formula::Atom(atoms[i])),
                        wcbk_logic::Formula::not(wcbk_logic::Formula::Atom(atoms[j])),
                    ]);
                    let p = space.probability(&f).unwrap().to_f64();
                    min_p = min_p.min(p);
                }
            }
        }
        // Atoms with out-of-bucket values give ¬atom probability 1; the DP
        // assumes the attacker uses only useful atoms — it must match the
        // true minimum (k distinct atoms exist whenever the check below
        // passes; with a 1-tuple bucket and k=2 the pair (i,i) is allowed
        // by the enumeration so the comparison stays valid).
        let dp = table.m1(k);
        prop_assert!((dp - min_p).abs() < 1e-9, "dp {dp} vs exact {min_p}");
    }

    /// Maximum disclosure is within bounds, monotone in k, and its witness
    /// evaluates to exactly the claimed value under exact inference.
    #[test]
    fn dp_invariants_and_witness_fidelity(b in bucketization()) {
        let space = space_of(&b);
        let base = b.max_frequency_ratio();
        let mut prev = 0.0f64;
        for k in 0..=3usize {
            let report = max_disclosure(&b, k).unwrap();
            prop_assert!(report.value >= base - 1e-12);
            prop_assert!(report.value <= 1.0 + 1e-12);
            prop_assert!(report.value >= prev - 1e-12);
            prev = report.value;

            let exact = atom_probability_given(
                &space,
                report.witness.consequent,
                &report.witness.knowledge(),
            ).unwrap().expect("witness consistent");
            prop_assert!(
                (exact.to_f64() - report.value).abs() < 1e-9,
                "k={k}: witness {} vs dp {}", exact.to_f64(), report.value
            );
        }
    }

    /// Theorem 14: merging any two buckets never increases max disclosure.
    #[test]
    fn merging_never_increases_disclosure(b in bucketization(), i in 0usize..4, j in 0usize..4, k in 0usize..=3) {
        prop_assume!(b.n_buckets() >= 2);
        let i = i % b.n_buckets();
        let j = j % b.n_buckets();
        prop_assume!(i != j);
        let merged = merge_buckets(&b, i, j).unwrap();
        let fine = max_disclosure(&b, k).unwrap().value;
        let coarse = max_disclosure(&merged, k).unwrap().value;
        prop_assert!(coarse <= fine + 1e-12);
        prop_assert!(refines(&b, &merged));
    }

    /// Negation worst case: the closed form is correct and dominated by the
    /// implication worst case.
    #[test]
    fn negation_dominated_and_bounded(b in bucketization(), k in 0usize..=4) {
        let neg = negation_max_disclosure(&b, k).unwrap();
        let imp = max_disclosure(&b, k).unwrap();
        prop_assert!(neg.value <= imp.value + 1e-12);
        prop_assert!(neg.value >= b.max_frequency_ratio() - 1e-12);
        prop_assert!(neg.value <= 1.0 + 1e-12);
        // Its knowledge encodes exactly min(k, d-1) negations.
        let bucket_hist = b.bucket(neg.bucket).histogram();
        prop_assert_eq!(neg.ruled_out.len(), k.min(bucket_hist.distinct() - 1));
    }

    /// Cost-weighted negation worst case: the closed form equals brute
    /// force over all ≤k-subsets of negated atoms evaluated exactly under
    /// the cost weighting.
    #[test]
    fn cost_negation_matches_exhaustive(
        b in bucketization(),
        k in 0usize..=2,
        raw_costs in prop::collection::vec(0u8..=4, 4),
    ) {
        use wcbk_core::{cost_negation_max_disclosure, CostVector};
        use wcbk_logic::language::{all_atoms, for_each_subset_up_to};
        use wcbk_logic::{BasicImplication, Knowledge};
        use wcbk_worlds::inference::cost_disclosure_risk;

        let costs_f: Vec<f64> = raw_costs.iter().map(|&c| c as f64).collect();
        prop_assume!(costs_f.iter().any(|&c| c > 0.0));
        let costs = CostVector::new(costs_f.clone()).unwrap();
        let closed = cost_negation_max_disclosure(&b, k, &costs).unwrap();

        let space = space_of(&b);
        let persons = space.persons();
        let values = space.value_universe();
        let atoms = all_atoms(&persons, &values);
        let mut best = 0.0f64;
        for_each_subset_up_to(&atoms, k, true, |negated| {
            let knowledge = Knowledge::from_implications(negated.iter().map(|a| {
                let witness = values
                    .iter()
                    .copied()
                    .find(|&w| w != a.value)
                    .unwrap_or(SValue(a.value.0 + 1));
                BasicImplication::negated_atom(a.person, a.value, witness).unwrap()
            }));
            if let Some((v, _)) = cost_disclosure_risk(&space, &knowledge, &costs_f).unwrap() {
                if v > best {
                    best = v;
                }
            }
        });
        prop_assert!(
            (closed.value - best).abs() < 1e-9,
            "closed {} vs exhaustive {} (k={k}, costs {:?})",
            closed.value, best, costs_f
        );
    }

    /// Histogram invariants: sorted descending, prefix sums consistent.
    #[test]
    fn histogram_invariants(vals in prop::collection::vec(0u32..8, 1..=20)) {
        let values: Vec<SValue> = vals.iter().copied().map(SValue).collect();
        let h = SensitiveHistogram::from_values(&values);
        prop_assert_eq!(h.n() as usize, vals.len());
        let counts = h.counts_desc();
        prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        prop_assert_eq!(counts.iter().sum::<u64>(), h.n());
        for j in 0..=h.distinct() {
            prop_assert_eq!(h.top_sum(j), counts[..j].iter().sum::<u64>());
        }
        prop_assert!(h.entropy() >= -1e-12);
        prop_assert!(h.entropy() <= (h.distinct() as f64).ln() + 1e-12);
    }
}
