//! Per-bucket sensitive-value histograms.
//!
//! The disclosure DP never needs to know *which* person holds *which* value —
//! only the bucket's value frequencies in descending order (`s⁰_b, s¹_b, …`
//! in the paper's notation) and their prefix sums. This type precomputes
//! both, and doubles as the memoization key for cross-bucketization caching
//! (two buckets with equal sorted frequency vectors have identical MINIMIZE1
//! tables).

use wcbk_table::SValue;

/// A bucket's sensitive-value distribution, sorted by descending frequency.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SensitiveHistogram {
    /// Frequencies in descending order (no zero entries).
    counts_desc: Vec<u64>,
    /// Value codes aligned with `counts_desc` (ties broken by value code).
    values_desc: Vec<SValue>,
    /// `prefix[j] = Σ_{t<j} counts_desc[t]`; `prefix[0] = 0`,
    /// `prefix[d] = n`.
    prefix: Vec<u64>,
}

impl SensitiveHistogram {
    /// Builds a histogram from `(value, count)` pairs (zero counts dropped).
    pub fn from_counts<I: IntoIterator<Item = (SValue, u64)>>(counts: I) -> Self {
        let mut pairs: Vec<(SValue, u64)> = counts.into_iter().filter(|&(_, c)| c > 0).collect();
        // Descending by count, ascending by value code for determinism.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let counts_desc: Vec<u64> = pairs.iter().map(|&(_, c)| c).collect();
        let values_desc: Vec<SValue> = pairs.iter().map(|&(v, _)| v).collect();
        let mut prefix = Vec::with_capacity(counts_desc.len() + 1);
        prefix.push(0);
        let mut acc = 0u64;
        for &c in &counts_desc {
            acc += c;
            prefix.push(acc);
        }
        Self {
            counts_desc,
            values_desc,
            prefix,
        }
    }

    /// Builds a histogram by tallying raw values.
    pub fn from_values(values: &[SValue]) -> Self {
        let mut tally: std::collections::HashMap<SValue, u64> = std::collections::HashMap::new();
        for &v in values {
            *tally.entry(v).or_insert(0) += 1;
        }
        Self::from_counts(tally)
    }

    /// Bucket size `n_b`.
    #[inline]
    pub fn n(&self) -> u64 {
        *self.prefix.last().expect("prefix is never empty")
    }

    /// Number of distinct sensitive values `d_b`.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts_desc.len()
    }

    /// Frequency of the `rank`-th most frequent value (`n_b(s^rank_b)`),
    /// or 0 beyond the distinct count.
    #[inline]
    pub fn frequency(&self, rank: usize) -> u64 {
        self.counts_desc.get(rank).copied().unwrap_or(0)
    }

    /// The `rank`-th most frequent value code.
    #[inline]
    pub fn value_at(&self, rank: usize) -> Option<SValue> {
        self.values_desc.get(rank).copied()
    }

    /// Sum of the top `j` frequencies, `Σ_{t∈[j]} n_b(s^t_b)`, saturating at
    /// `n_b` for `j ≥ d_b` — exactly the quantity in Lemma 12.
    #[inline]
    pub fn top_sum(&self, j: usize) -> u64 {
        self.prefix[j.min(self.distinct())]
    }

    /// Frequencies in descending order.
    pub fn counts_desc(&self) -> &[u64] {
        &self.counts_desc
    }

    /// Value codes in descending-frequency order.
    pub fn values_desc(&self) -> &[SValue] {
        &self.values_desc
    }

    /// The maximum-frequency ratio `n_b(s⁰_b) / n_b` — the `k = 0` disclosure
    /// of the bucket.
    pub fn top_ratio(&self) -> f64 {
        if self.n() == 0 {
            return 0.0;
        }
        self.frequency(0) as f64 / self.n() as f64
    }

    /// Shannon entropy (natural log) of the value distribution — the
    /// per-bucket quantity whose minimum over buckets is the x-axis of the
    /// paper's Figure 6 (and the ℓ-diversity entropy criterion).
    pub fn entropy(&self) -> f64 {
        let n = self.n() as f64;
        if n == 0.0 {
            return 0.0;
        }
        self.counts_desc
            .iter()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }

    /// Memoization key: the descending frequency vector. Buckets with equal
    /// keys have identical disclosure behaviour.
    pub fn key(&self) -> &[u64] {
        &self.counts_desc
    }

    /// Iterates `(value, count)` pairs in descending-frequency order.
    pub fn iter_counts(&self) -> impl Iterator<Item = (SValue, u64)> + '_ {
        self.values_desc
            .iter()
            .copied()
            .zip(self.counts_desc.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(vals: &[u32]) -> Vec<SValue> {
        vals.iter().map(|&v| SValue(v)).collect()
    }

    #[test]
    fn sorted_descending_with_value_ties_by_code() {
        let h = SensitiveHistogram::from_values(&sv(&[2, 1, 1, 0, 0, 0, 3, 3, 3]));
        assert_eq!(h.counts_desc(), &[3, 3, 2, 1]);
        assert_eq!(h.values_desc(), &sv(&[0, 3, 1, 2])[..]);
        assert_eq!(h.n(), 9);
        assert_eq!(h.distinct(), 4);
    }

    #[test]
    fn prefix_sums_and_top_sum() {
        let h = SensitiveHistogram::from_values(&sv(&[0, 0, 1, 1, 2]));
        assert_eq!(h.top_sum(0), 0);
        assert_eq!(h.top_sum(1), 2);
        assert_eq!(h.top_sum(2), 4);
        assert_eq!(h.top_sum(3), 5);
        assert_eq!(h.top_sum(99), 5); // saturates at n
    }

    #[test]
    fn frequency_beyond_distinct_is_zero() {
        let h = SensitiveHistogram::from_values(&sv(&[5, 5]));
        assert_eq!(h.frequency(0), 2);
        assert_eq!(h.frequency(1), 0);
        assert_eq!(h.value_at(1), None);
    }

    #[test]
    fn zero_counts_dropped() {
        let h = SensitiveHistogram::from_counts([(SValue(0), 3), (SValue(1), 0), (SValue(2), 1)]);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.counts_desc(), &[3, 1]);
    }

    #[test]
    fn top_ratio() {
        let h = SensitiveHistogram::from_values(&sv(&[0, 0, 1, 1, 2]));
        assert!((h.top_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_and_skewed() {
        let uniform = SensitiveHistogram::from_values(&sv(&[0, 1, 2, 3]));
        assert!((uniform.entropy() - (4.0f64).ln()).abs() < 1e-12);
        let constant = SensitiveHistogram::from_values(&sv(&[7, 7, 7]));
        assert!(constant.entropy().abs() < 1e-12);
        let skewed = SensitiveHistogram::from_values(&sv(&[0, 0, 0, 1]));
        assert!(skewed.entropy() > 0.0 && skewed.entropy() < uniform.entropy());
    }

    #[test]
    fn equal_distributions_share_keys() {
        let a = SensitiveHistogram::from_values(&sv(&[0, 0, 1]));
        let b = SensitiveHistogram::from_values(&sv(&[5, 9, 9]));
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn from_counts_and_from_values_agree() {
        let a = SensitiveHistogram::from_values(&sv(&[1, 1, 2, 3, 3, 3]));
        let b = SensitiveHistogram::from_counts([(SValue(1), 2), (SValue(2), 1), (SValue(3), 3)]);
        assert_eq!(a, b);
    }
}
