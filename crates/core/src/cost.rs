//! Cost-based disclosure (the paper's §6 future-work item: "studying
//! cost-based disclosure (since it was observed in [ℓ-diversity] that not
//! all disclosures are equally bad)").
//!
//! Each sensitive value `s` carries a non-negative cost `cost(s)` — e.g.
//! learning "HIV" is worse than learning "flu". Cost-weighted disclosure
//! risk replaces `Pr(t[S]=s | ·)` with `cost(s) · Pr(t[S]=s | ·)`.
//!
//! This module provides the **negated-atom worst case** under costs, which
//! remains closed-form: the optimal `k` negations still concentrate on one
//! person and rule out the most frequent values *other than the target*, so
//!
//! ```text
//!   max_b max_t  cost(s^t_b) · n_b(s^t_b) / (n_b − Σ_{top |R| others} n_b(s^r_b))
//! ```
//!
//! with `|R| = min(k, d_b − 1)`. (For the full implication language the
//! worst-case reduction of Theorem 9 picks the consequent by probability
//! alone; with costs the consequent choice and Lemma 12's nested-set
//! structure interact, and no closed form is known — exactly why the paper
//! leaves it as future work. The exact engine's
//! `wcbk_worlds::inference::cost_disclosure_risk` evaluates any fixed φ
//! under costs for small instances.)

use wcbk_table::SValue;

use crate::{Bucketization, CoreError};

/// Non-negative per-value costs, indexed by sensitive-value code.
///
/// Values beyond the vector default to cost 1 (unweighted).
#[derive(Debug, Clone, PartialEq)]
pub struct CostVector {
    costs: Vec<f64>,
}

impl CostVector {
    /// Uniform costs (every disclosure equally bad).
    pub fn uniform() -> Self {
        Self { costs: Vec::new() }
    }

    /// Builds from explicit costs; all must be finite and non-negative.
    pub fn new(costs: Vec<f64>) -> Result<Self, CoreError> {
        for &c in &costs {
            if c.is_nan() || c < 0.0 || !c.is_finite() {
                return Err(CoreError::InvalidThreshold(c));
            }
        }
        Ok(Self { costs })
    }

    /// The cost of value `v` (1 when unspecified).
    #[inline]
    pub fn cost(&self, v: SValue) -> f64 {
        self.costs.get(v.index()).copied().unwrap_or(1.0)
    }
}

/// Result of the cost-weighted negated-atom worst case.
#[derive(Debug, Clone, PartialEq)]
pub struct CostNegationResult {
    /// `max cost(s)·Pr(t[S]=s | B ∧ φ)` over targets and negation sets.
    pub value: f64,
    /// The targeted bucket.
    pub bucket: usize,
    /// The targeted person.
    pub person: wcbk_table::TupleId,
    /// The predicted (cost-weighted-worst) value.
    pub predicted: SValue,
    /// The values the worst-case negations rule out.
    pub ruled_out: Vec<SValue>,
}

/// Cost-weighted maximum disclosure against `k` negated atoms.
pub fn cost_negation_max_disclosure(
    bucketization: &Bucketization,
    k: usize,
    costs: &CostVector,
) -> Result<CostNegationResult, CoreError> {
    let mut best: Option<CostNegationResult> = None;
    for (bi, bucket) in bucketization.buckets().iter().enumerate() {
        let h = bucket.histogram();
        let d = h.distinct();
        let r = k.min(d.saturating_sub(1));
        for t in 0..d {
            let f_t = h.frequency(t);
            // Ruled-out mass: the top r frequencies excluding rank t.
            let blocked = if t <= r {
                h.top_sum(r + 1) - f_t
            } else {
                h.top_sum(r)
            };
            let denom = h.n() - blocked;
            debug_assert!(denom >= f_t);
            let predicted = h.value_at(t).expect("t < distinct");
            let value = costs.cost(predicted) * f_t as f64 / denom as f64;
            if best.as_ref().is_none_or(|b| value > b.value) {
                let ruled_out = (0..=r.min(d - 1))
                    .filter(|&rank| rank != t)
                    .take(r)
                    .map(|rank| h.value_at(rank).expect("rank < distinct"))
                    .collect();
                best = Some(CostNegationResult {
                    value,
                    bucket: bi,
                    person: bucket.members()[0],
                    predicted,
                    ruled_out,
                });
            }
        }
    }
    best.ok_or(CoreError::EmptyBucketization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negation_max_disclosure;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    #[test]
    fn uniform_costs_reduce_to_plain_negation() {
        let b = figure3();
        for k in 0..=4usize {
            let plain = negation_max_disclosure(&b, k).unwrap();
            let cost = cost_negation_max_disclosure(&b, k, &CostVector::uniform()).unwrap();
            assert!(
                (plain.value - cost.value).abs() < 1e-12,
                "k={k}: {} vs {}",
                plain.value,
                cost.value
            );
        }
    }

    #[test]
    fn expensive_rare_value_changes_target() {
        let b = figure3();
        let table = hospital_table();
        // Make Ovarian Cancer 10x as costly as everything else.
        let ovarian = table.sensitive_code("Ovarian Cancer").unwrap();
        let mut costs = vec![1.0; table.sensitive_cardinality()];
        costs[ovarian.index()] = 10.0;
        let costs = CostVector::new(costs).unwrap();
        let r = cost_negation_max_disclosure(&b, 1, &costs).unwrap();
        // Plain k=1 target is flu (2/3); with the 10x weight, predicting the
        // single ovarian case dominates: 10·(1/(5-2)) = 10/3 > 2/3.
        assert_eq!(r.predicted, ovarian);
        assert!((r.value - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.bucket, 1);
        // The negations rule out the most frequent other values.
        assert_eq!(r.ruled_out.len(), 1);
        assert_eq!(r.ruled_out[0], table.sensitive_code("Flu").unwrap());
    }

    #[test]
    fn zero_cost_value_never_predicted() {
        let b = figure3();
        let table = hospital_table();
        let flu = table.sensitive_code("Flu").unwrap();
        let mut costs = vec![1.0; table.sensitive_cardinality()];
        costs[flu.index()] = 0.0;
        let costs = CostVector::new(costs).unwrap();
        for k in 0..=3 {
            let r = cost_negation_max_disclosure(&b, k, &costs).unwrap();
            assert_ne!(r.predicted, flu, "k={k}");
        }
    }

    #[test]
    fn invalid_costs_rejected() {
        assert!(CostVector::new(vec![1.0, -0.5]).is_err());
        assert!(CostVector::new(vec![f64::NAN]).is_err());
        assert!(CostVector::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn monotone_in_k() {
        let b = figure3();
        let costs = CostVector::new(vec![2.0, 1.0, 1.0, 5.0, 3.0, 1.0]).unwrap();
        let mut prev = 0.0;
        for k in 0..=4 {
            let v = cost_negation_max_disclosure(&b, k, &costs).unwrap().value;
            assert!(v >= prev - 1e-12, "k={k}");
            prev = v;
        }
    }

    #[test]
    fn cost_beyond_vector_defaults_to_one() {
        let costs = CostVector::new(vec![3.0]).unwrap();
        assert_eq!(costs.cost(SValue(0)), 3.0);
        assert_eq!(costs.cost(SValue(7)), 1.0);
    }
}
