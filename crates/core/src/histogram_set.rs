//! Histogram-only view of a bucketization — the search-time evaluation
//! surface.
//!
//! Everything the disclosure DP and the diversity criteria look at is the
//! per-bucket sensitive histograms plus the global domain size; bucket
//! *membership* is irrelevant until a chosen bucketization is actually
//! published. [`HistogramSet`] captures exactly that, so lattice search can
//! evaluate nodes from rolled-up histograms (see `wcbk-hierarchy`'s
//! `NodeEvaluator`) without ever materializing a [`Bucketization`].

use crate::{Bucketization, CoreError, SensitiveHistogram};

/// The per-bucket sensitive histograms of a (possibly never-materialized)
/// bucketization, in bucket order, plus the sensitive-domain cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSet {
    histograms: Vec<SensitiveHistogram>,
    domain_size: u32,
}

impl HistogramSet {
    /// Builds a set from per-bucket histograms. The set must be non-empty
    /// and every histogram must count at least one tuple (mirroring
    /// [`Bucketization`]'s invariants).
    pub fn new(histograms: Vec<SensitiveHistogram>, domain_size: u32) -> Result<Self, CoreError> {
        if histograms.is_empty() {
            return Err(CoreError::EmptyBucketization);
        }
        if let Some(i) = histograms.iter().position(|h| h.n() == 0) {
            return Err(CoreError::EmptyBucket(i));
        }
        Ok(Self {
            histograms,
            domain_size,
        })
    }

    /// The histogram view of a materialized bucketization (clones the
    /// per-bucket histograms).
    pub fn from_bucketization(b: &Bucketization) -> Self {
        Self {
            histograms: b.buckets().iter().map(|x| x.histogram().clone()).collect(),
            domain_size: b.domain_size(),
        }
    }

    /// Per-bucket histograms in bucket order.
    pub fn histograms(&self) -> &[SensitiveHistogram] {
        &self.histograms
    }

    /// Number of buckets `|B|`.
    pub fn n_buckets(&self) -> usize {
        self.histograms.len()
    }

    /// Total tuples across buckets.
    pub fn n_tuples(&self) -> u64 {
        self.histograms.iter().map(SensitiveHistogram::n).sum()
    }

    /// Global sensitive-domain cardinality `|S|`.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }

    /// The `k = 0` maximum disclosure: `max_b n_b(s⁰_b) / n_b`.
    pub fn max_frequency_ratio(&self) -> f64 {
        self.histograms
            .iter()
            .map(SensitiveHistogram::top_ratio)
            .fold(0.0, f64::max)
    }

    /// Minimum per-bucket entropy (natural log).
    pub fn min_bucket_entropy(&self) -> f64 {
        self.histograms
            .iter()
            .map(SensitiveHistogram::entropy)
            .fold(f64::INFINITY, f64::min)
    }

    /// Smallest bucket size (the k-anonymity parameter of the grouping).
    pub fn min_bucket_size(&self) -> u64 {
        self.histograms
            .iter()
            .map(SensitiveHistogram::n)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    #[test]
    fn mirrors_bucketization_aggregates() {
        let b = figure3();
        let h = HistogramSet::from_bucketization(&b);
        assert_eq!(h.n_buckets(), b.n_buckets());
        assert_eq!(h.n_tuples(), b.n_tuples());
        assert_eq!(h.domain_size(), b.domain_size());
        assert!((h.max_frequency_ratio() - b.max_frequency_ratio()).abs() < 1e-15);
        assert!((h.min_bucket_entropy() - b.min_bucket_entropy()).abs() < 1e-15);
        assert_eq!(h.min_bucket_size(), b.min_bucket_size());
        for (hist, bucket) in h.histograms().iter().zip(b.buckets()) {
            assert_eq!(hist, bucket.histogram());
        }
    }

    #[test]
    fn new_validates() {
        assert!(matches!(
            HistogramSet::new(vec![], 3),
            Err(CoreError::EmptyBucketization)
        ));
        let empty = SensitiveHistogram::from_counts(std::iter::empty());
        assert!(matches!(
            HistogramSet::new(vec![empty], 3),
            Err(CoreError::EmptyBucket(0))
        ));
    }
}
