//! Memoized and incremental disclosure computation.
//!
//! The closing remark of Section 3.3.3: if bucketization `B*` differs from an
//! already-analyzed `B` by removing some buckets and adding `x` new ones,
//! only the new buckets' MINIMIZE1 tables need computing
//! (`O(x·k³)`), plus one MINIMIZE2 pass (`O(|B*|·k²)` here). Two pieces
//! implement that:
//!
//! * [`DisclosureEngine`] — caches MINIMIZE1 tables keyed by the bucket's
//!   descending frequency vector, shared across *all* bucketizations it
//!   analyzes (during lattice search, sibling anonymizations share most
//!   buckets). The cache is sharded behind [`RwLock`]s and the engine is
//!   `Send + Sync`, so one engine can serve many search threads at once —
//!   the foundation of the parallel lattice search in `wcbk-anonymize`.
//! * [`IncrementalDisclosure`] — prefix/suffix MINIMIZE2 tables over a fixed
//!   bucket order, answering *what-if* queries (replace / remove / merge one
//!   bucket) in `O(k²)` without touching the other buckets, as suggested by
//!   the paper's bucket-reordering remark.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::disclosure::build_witness;
use crate::minimize1::Minimize1Table;
use crate::minimize2::{minimize2, BucketCosts, SuffixTable};
use crate::{Bucketization, CoreError, DisclosureResult, HistogramSet, SensitiveHistogram};

struct CachedBucket {
    table: Minimize1Table,
    costs: BucketCosts,
}

/// A cached bucket plus its last-touch tick for LRU eviction under a cache
/// budget.
struct CacheEntry {
    bucket: Arc<CachedBucket>,
    touch: AtomicU64,
}

/// Number of independent cache shards. A small power of two: enough to keep
/// search threads off each other's locks, few enough that per-shard maps
/// stay densely used.
const N_SHARDS: usize = 16;

/// Snapshot of the engine cache's effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a MINIMIZE1 table.
    pub misses: u64,
    /// Distinct histograms currently cached.
    pub entries: usize,
    /// Total retained weight across entries — each entry weighs its
    /// histogram's distinct-frequency **group** count, the driver of its
    /// `O(groups·k²)` table size. This is what a cache budget bounds
    /// (mirroring the roll-up memo's group-weighted eviction).
    pub groups: u64,
    /// Entries evicted to respect the cache budget (0 when unbounded).
    pub evictions: u64,
    /// Cumulative microseconds spent building MINIMIZE1 tables on cache
    /// misses (the `O(k³)` work memoization exists to avoid).
    pub build_micros: u64,
    /// High-water mark of the retained group weight since the engine was
    /// created — the memory-broker accounting signal.
    pub peak_groups: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (`0.0` when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Histogram-memoizing disclosure calculator for a fixed `k`.
///
/// Thread-safe: all methods take `&self`, the histogram cache lives behind
/// sharded [`RwLock`]s, and hit/miss counters are atomic, so a single engine
/// can be shared by reference (or `Arc`) across worker threads evaluating
/// different bucketizations concurrently.
pub struct DisclosureEngine {
    k: usize,
    shards: [RwLock<HashMap<Vec<u64>, CacheEntry>>; N_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Group budget for the cache (`None` = unbounded, the CLI default):
    /// the total retained weight (Σ per-entry histogram group counts) may
    /// not exceed it; past the budget the least-recently-touched entry is
    /// evicted, mirroring the roll-up memo's group-weighted LRU.
    capacity: Option<u64>,
    /// Σ entry weights currently retained (all shards).
    groups: AtomicU64,
    /// High-water mark of `groups`.
    peak_groups: AtomicU64,
    evictions: AtomicU64,
    /// Cumulative MINIMIZE1 build time on misses, in microseconds.
    build_micros: AtomicU64,
    /// Monotone tick supplying `CacheEntry::touch` values.
    clock: AtomicU64,
}

/// The LRU weight of one cached histogram: its distinct-frequency group
/// count (`key` length), the factor its MINIMIZE1 table size scales with.
fn entry_weight(key: &[u64]) -> u64 {
    (key.len() as u64).max(1)
}

impl DisclosureEngine {
    /// Creates an engine for attacker power `k` with an **unbounded** cache
    /// (every MINIMIZE1 table ever built is retained — the right default
    /// for one-shot CLI runs).
    pub fn new(k: usize) -> Self {
        Self::with_cache_capacity(k, None)
    }

    /// [`DisclosureEngine::new`] with a **group budget** on the MINIMIZE1
    /// cache: `capacity = Some(n)` retains entries totalling at most
    /// `n.max(1)` groups (an entry weighs its histogram's distinct-frequency
    /// count), evicting the least recently touched until a newcomer fits; an
    /// entry that alone exceeds the whole budget is served unmemoized.
    /// Results are identical at any capacity — only rebuild cost varies.
    pub fn with_cache_capacity(k: usize, capacity: Option<u64>) -> Self {
        Self {
            k,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.map(|c| c.max(1)),
            groups: AtomicU64::new(0),
            peak_groups: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_micros: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The attacker power bound this engine serves.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct histograms cached.
    pub fn cache_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// `(hits, misses)` counters for cache effectiveness reporting.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Full counter snapshot including the entry count and retained weight.
    pub fn stats(&self) -> CacheStats {
        let (hits, misses) = self.cache_stats();
        CacheStats {
            hits,
            misses,
            entries: self.cache_len(),
            groups: self.groups.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            build_micros: self.build_micros.load(Ordering::Relaxed),
            peak_groups: self.peak_groups.load(Ordering::Relaxed),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Which shard a histogram key hashes to (FNV-1a over the key words).
    fn shard_of(key: &[u64]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in key {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % N_SHARDS as u64) as usize
    }

    fn cached(&self, hist: &SensitiveHistogram) -> Arc<CachedBucket> {
        let shard_index = Self::shard_of(hist.key());
        let shard = &self.shards[shard_index];
        if let Some(entry) = shard.read().expect("cache shard poisoned").get(hist.key()) {
            entry.touch.store(self.tick(), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&entry.bucket);
        }
        // Build outside any lock: the O(k³) table dominates, and concurrent
        // builders for the same key are rare (they waste a little work but
        // never race on results — the first insert wins below).
        let build_started = std::time::Instant::now();
        let table = Minimize1Table::build(hist, self.k + 1);
        let costs = BucketCosts::new(&table, hist.frequency(0), hist.n());
        self.build_micros.fetch_add(
            build_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        let bucket = Arc::new(CachedBucket { table, costs });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let weight = entry_weight(hist.key());
        if self.capacity.is_some_and(|budget| weight > budget) {
            // It can never fit: serve it unmemoized rather than flushing the
            // whole cache for nothing (the roll-up memo's contract).
            return bucket;
        }
        {
            let mut w = shard.write().expect("cache shard poisoned");
            match w.entry(hist.key().to_vec()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Lost a race with a concurrent builder: keep the first.
                    e.get().touch.store(self.tick(), Ordering::Relaxed);
                    return Arc::clone(&e.get().bucket);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(CacheEntry {
                        bucket: Arc::clone(&bucket),
                        touch: AtomicU64::new(self.tick()),
                    });
                    let now = self.groups.fetch_add(weight, Ordering::Relaxed) + weight;
                    self.peak_groups.fetch_max(now, Ordering::Relaxed);
                }
            }
        }
        self.enforce_budget();
        bucket
    }

    /// Evicts least-recently-touched entries until the retained weight fits
    /// the budget. Locks one shard at a time (candidate scan under read
    /// locks, removal under that shard's write lock), so it never holds two
    /// shard locks at once.
    fn enforce_budget(&self) {
        let Some(budget) = self.capacity else {
            return;
        };
        while self.groups.load(Ordering::Relaxed) > budget {
            // Global LRU victim: the minimum touch tick across all shards.
            let mut victim: Option<(usize, Vec<u64>, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let guard = shard.read().expect("cache shard poisoned");
                for (key, entry) in guard.iter() {
                    let touch = entry.touch.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(_, _, t)| touch < *t) {
                        victim = Some((i, key.clone(), touch));
                    }
                }
            }
            let Some((shard_index, key, _)) = victim else {
                return; // nothing left to evict
            };
            let mut guard = self.shards[shard_index]
                .write()
                .expect("cache shard poisoned");
            if guard.remove(&key).is_some() {
                self.groups.fetch_sub(entry_weight(&key), Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // A concurrent evictor may have removed it first; either way the
            // loop re-checks the weight and converges.
        }
    }

    /// The per-bucket DP costs for a histogram (cached).
    pub fn costs(&self, hist: &SensitiveHistogram) -> BucketCosts {
        self.cached(hist).costs.clone()
    }

    /// The `r_min` of a sequence of per-bucket histograms, through the
    /// cache, cloning no [`BucketCosts`] — the hot path of lattice search.
    fn r_min_of<'h, I>(&self, histograms: I) -> f64
    where
        I: Iterator<Item = &'h SensitiveHistogram>,
    {
        let entries: Vec<Arc<CachedBucket>> = histograms.map(|h| self.cached(h)).collect();
        let costs: Vec<&BucketCosts> = entries.iter().map(|e| &e.costs).collect();
        minimize2(&costs, self.k).r_min
    }

    /// Maximum disclosure value only (no witness reconstruction).
    pub fn max_disclosure_value(&self, b: &Bucketization) -> Result<f64, CoreError> {
        if b.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let r_min = self.r_min_of(b.buckets().iter().map(|bucket| bucket.histogram()));
        Ok(1.0 / (1.0 + r_min))
    }

    /// Maximum disclosure value of a histogram-only bucketization view —
    /// what the roll-up lattice search evaluates, with no `Bucketization`
    /// ever materialized.
    pub fn max_disclosure_value_set(&self, h: &HistogramSet) -> Result<f64, CoreError> {
        if h.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let r_min = self.r_min_of(h.histograms().iter());
        Ok(1.0 / (1.0 + r_min))
    }

    /// Full maximum disclosure with witness, using the cache.
    pub fn max_disclosure(&self, b: &Bucketization) -> Result<DisclosureResult, CoreError> {
        if b.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let entries: Vec<Arc<CachedBucket>> = b
            .buckets()
            .iter()
            .map(|bucket| self.cached(bucket.histogram()))
            .collect();
        let costs: Vec<&BucketCosts> = entries.iter().map(|e| &e.costs).collect();
        let result = minimize2(&costs, self.k);
        let tables: Vec<&Minimize1Table> = entries.iter().map(|e| &e.table).collect();
        let witness = build_witness(b, &tables, &result.allocation);
        Ok(DisclosureResult {
            value: 1.0 / (1.0 + result.r_min),
            r_min: result.r_min,
            k: self.k,
            witness,
        })
    }

    /// Builds an incremental session over `b`'s buckets.
    pub fn incremental(&self, b: &Bucketization) -> Result<IncrementalDisclosure, CoreError> {
        if b.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let buckets: Vec<BucketCosts> = b
            .buckets()
            .iter()
            .map(|bucket| self.costs(bucket.histogram()))
            .collect();
        Ok(IncrementalDisclosure::new(buckets, self.k))
    }

    /// Builds an incremental session straight from a histogram-only view —
    /// the composition streaming publishers use: per-bucket histograms are
    /// maintained as a [`HistogramSet`], audited and what-if-probed through
    /// [`IncrementalDisclosure`], with no [`Bucketization`] (i.e. no tuple
    /// membership) ever materialized.
    pub fn incremental_set(&self, h: &HistogramSet) -> Result<IncrementalDisclosure, CoreError> {
        if h.n_buckets() == 0 {
            return Err(CoreError::EmptyBucketization);
        }
        let buckets: Vec<BucketCosts> = h.histograms().iter().map(|x| self.costs(x)).collect();
        Ok(IncrementalDisclosure::new(buckets, self.k))
    }
}

/// Prefix analogue of [`SuffixTable`]: `P(i, h, placed)` = minimum cost over
/// buckets `0..i` having used `h` atoms, with `placed` = whether the
/// consequent `A` was hosted by one of them.
#[derive(Debug, Clone)]
struct PrefixTable {
    k: usize,
    p: Vec<f64>,
}

impl PrefixTable {
    #[inline]
    fn idx(&self, i: usize, h: usize, placed: bool) -> usize {
        (i * (self.k + 1) + h) * 2 + usize::from(placed)
    }

    fn build(buckets: &[BucketCosts], k: usize) -> Self {
        let n = buckets.len();
        let mut t = Self {
            k,
            p: vec![f64::INFINITY; (n + 1) * (k + 1) * 2],
        };
        let start = t.idx(0, 0, false);
        t.p[start] = 1.0;
        for (i, b) in buckets.iter().enumerate() {
            for h in 0..=k {
                for placed in [false, true] {
                    let mut best = f64::INFINITY;
                    for c in 0..=h {
                        // Bucket i takes c plain atoms.
                        let v = t.get(i, h - c, placed) * b.m1[c];
                        if v < best {
                            best = v;
                        }
                        // Bucket i hosts A (transition false → true).
                        if placed {
                            let v = t.get(i, h - c, false) * b.m1[c + 1] * b.rho;
                            if v < best {
                                best = v;
                            }
                        }
                    }
                    let at = t.idx(i + 1, h, placed);
                    t.p[at] = best;
                }
            }
        }
        t
    }

    #[inline]
    fn get(&self, i: usize, h: usize, placed: bool) -> f64 {
        self.p[self.idx(i, h, placed)]
    }
}

/// Incremental what-if evaluation of maximum disclosure under single-bucket
/// edits, in `O(k²)` per query.
pub struct IncrementalDisclosure {
    k: usize,
    buckets: Vec<BucketCosts>,
    prefix: PrefixTable,
    suffix: SuffixTable,
}

impl IncrementalDisclosure {
    fn new(buckets: Vec<BucketCosts>, k: usize) -> Self {
        let prefix = PrefixTable::build(&buckets, k);
        let suffix = SuffixTable::build(&buckets, k);
        Self {
            k,
            buckets,
            prefix,
            suffix,
        }
    }

    /// Number of buckets in the session.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Current `r_min` (Formula (1) minimum).
    pub fn r_min(&self) -> f64 {
        self.suffix.get(0, self.k, false)
    }

    /// Current maximum disclosure.
    pub fn value(&self) -> f64 {
        1.0 / (1.0 + self.r_min())
    }

    /// Maximum disclosure if bucket `i` were replaced by `new_costs`.
    pub fn what_if_replace(&self, i: usize, new_costs: &BucketCosts) -> Result<f64, CoreError> {
        self.check_index(i)?;
        Ok(to_disclosure(self.compose(i, Some(new_costs), i + 1)))
    }

    /// Maximum disclosure if bucket `i` were removed entirely.
    ///
    /// Errors if it is the only bucket.
    pub fn what_if_remove(&self, i: usize) -> Result<f64, CoreError> {
        self.check_index(i)?;
        if self.buckets.len() == 1 {
            return Err(CoreError::EmptyBucketization);
        }
        Ok(to_disclosure(self.compose(i, None, i + 1)))
    }

    /// Maximum disclosure if buckets `i` and `i+1` were merged into a bucket
    /// with costs `merged`.
    pub fn what_if_merge_adjacent(&self, i: usize, merged: &BucketCosts) -> Result<f64, CoreError> {
        self.check_index(i)?;
        self.check_index(i + 1)?;
        Ok(to_disclosure(self.compose(i, Some(merged), i + 2)))
    }

    /// Commits a replacement of bucket `i`, rebuilding the tables
    /// (`O(|B|·k²)`; the per-histogram `O(k³)` work stays cached in the
    /// engine that produced `new_costs`).
    pub fn replace(&mut self, i: usize, new_costs: BucketCosts) -> Result<(), CoreError> {
        self.check_index(i)?;
        self.buckets[i] = new_costs;
        self.rebuild();
        Ok(())
    }

    /// Commits an append of a new bucket.
    pub fn push(&mut self, costs: BucketCosts) {
        self.buckets.push(costs);
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.prefix = PrefixTable::build(&self.buckets, self.k);
        self.suffix = SuffixTable::build(&self.buckets, self.k);
    }

    fn check_index(&self, i: usize) -> Result<(), CoreError> {
        if i >= self.buckets.len() {
            return Err(CoreError::BucketOutOfRange {
                index: i,
                len: self.buckets.len(),
            });
        }
        Ok(())
    }

    /// Composes `prefix(0..i) ⊗ mid ⊗ suffix(j..)`, minimizing over atom
    /// splits and consequent placement. `O(k²)`.
    fn compose(&self, i: usize, mid: Option<&BucketCosts>, j: usize) -> f64 {
        let k = self.k;
        let mut best = f64::INFINITY;
        for hp in 0..=k {
            match mid {
                None => {
                    let hs = k - hp;
                    let a_before = self.prefix.get(i, hp, true) * self.suffix.get(j, hs, true);
                    let a_after = self.prefix.get(i, hp, false) * self.suffix.get(j, hs, false);
                    best = best.min(a_before).min(a_after);
                }
                Some(m) => {
                    for c in 0..=(k - hp) {
                        let hs = k - hp - c;
                        let a_before =
                            self.prefix.get(i, hp, true) * m.m1[c] * self.suffix.get(j, hs, true);
                        let a_mid = self.prefix.get(i, hp, false)
                            * m.m1[c + 1]
                            * m.rho
                            * self.suffix.get(j, hs, true);
                        let a_after =
                            self.prefix.get(i, hp, false) * m.m1[c] * self.suffix.get(j, hs, false);
                        best = best.min(a_before).min(a_mid).min(a_after);
                    }
                }
            }
        }
        best
    }
}

#[inline]
fn to_disclosure(r_min: f64) -> f64 {
    1.0 / (1.0 + r_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial_order::{merge_buckets, merge_histograms};
    use crate::{max_disclosure, Bucketization};
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
    use wcbk_table::TupleId;

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    /// Finer split of the hospital table: four buckets.
    fn four_buckets() -> Bucketization {
        let t = hospital_table();
        let groups: Vec<Vec<TupleId>> = vec![
            vec![TupleId(0), TupleId(1), TupleId(2)],
            vec![TupleId(3), TupleId(4)],
            vec![TupleId(5), TupleId(6)],
            vec![TupleId(7), TupleId(8), TupleId(9)],
        ];
        Bucketization::from_partition(&t, &groups).unwrap()
    }

    #[test]
    fn engine_matches_direct_computation() {
        for k in 0..=4 {
            let engine = DisclosureEngine::new(k);
            for b in [figure3(), four_buckets()] {
                let direct = max_disclosure(&b, k).unwrap();
                let via_engine = engine.max_disclosure(&b).unwrap();
                assert!((direct.value - via_engine.value).abs() < 1e-15, "k={k}");
                assert_eq!(direct.witness, via_engine.witness, "k={k}");
                assert!((engine.max_disclosure_value(&b).unwrap() - direct.value).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn histogram_set_path_matches_bucketization_path() {
        for k in 0..=4 {
            let engine = DisclosureEngine::new(k);
            for b in [figure3(), four_buckets()] {
                let via_buckets = engine.max_disclosure_value(&b).unwrap();
                let via_set = engine
                    .max_disclosure_value_set(&HistogramSet::from_bucketization(&b))
                    .unwrap();
                assert_eq!(via_buckets.to_bits(), via_set.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn incremental_set_matches_incremental() {
        for k in 0..=3 {
            let engine = DisclosureEngine::new(k);
            for b in [figure3(), four_buckets()] {
                let from_buckets = engine.incremental(&b).unwrap();
                let from_set = engine
                    .incremental_set(&HistogramSet::from_bucketization(&b))
                    .unwrap();
                assert_eq!(from_buckets.n_buckets(), from_set.n_buckets());
                assert_eq!(from_buckets.value().to_bits(), from_set.value().to_bits());
                assert_eq!(from_buckets.r_min().to_bits(), from_set.r_min().to_bits());
            }
        }
    }

    #[test]
    fn cache_hits_across_shared_histograms() {
        let engine = DisclosureEngine::new(2);
        let b = figure3();
        engine.max_disclosure_value(&b).unwrap();
        let (h0, m0) = engine.cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, 2);
        // Same bucketization again: all hits.
        engine.max_disclosure_value(&b).unwrap();
        let (h1, m1) = engine.cache_stats();
        assert_eq!(h1, 2);
        assert_eq!(m1, 2);
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = DisclosureEngine::new(2);
        let b = figure3();
        let expected = engine.max_disclosure_value(&b).unwrap();
        // Pre-warmed cache: every lookup from the workers must hit.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = &engine;
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let v = engine.max_disclosure_value(b).unwrap();
                        assert!((v - expected).abs() < 1e-15);
                    }
                });
            }
        });
        let (hits, misses) = engine.cache_stats();
        assert_eq!(misses, 2, "workers rebuilt cached tables");
        assert_eq!(hits, 4 * 50 * 2, "4 workers × 50 sweeps × 2 buckets");
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn cold_cache_concurrent_builds_converge() {
        // Four distinct bucketizations raced from four threads on a cold
        // cache: values must match the direct computation and the cache must
        // end up with exactly the distinct histograms.
        let engine = DisclosureEngine::new(3);
        let bs = [figure3(), four_buckets()];
        let expected: Vec<f64> = bs
            .iter()
            .map(|b| max_disclosure(b, 3).unwrap().value)
            .collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let engine = &engine;
                let bs = &bs;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..bs.len() {
                        let idx = (i + worker) % bs.len();
                        let v = engine.max_disclosure_value(&bs[idx]).unwrap();
                        assert!((v - expected[idx]).abs() < 1e-15);
                    }
                });
            }
        });
        // figure3 has 2 distinct histograms, four_buckets adds at most 4.
        let stats = engine.stats();
        assert!(stats.entries >= 2 && stats.entries <= 6, "{stats:?}");
        assert!(stats.hit_rate() > 0.0);
    }

    /// A bounded cache evicts by LRU group weight, stays within budget, and
    /// keeps producing values identical to the unbounded engine.
    #[test]
    fn capped_cache_evicts_and_stays_correct() {
        let k = 2;
        let reference = DisclosureEngine::new(k);
        let bs = [figure3(), four_buckets()];
        let expected: Vec<f64> = bs
            .iter()
            .map(|b| reference.max_disclosure_value(b).unwrap())
            .collect();
        for cap in [1u64, 2, 3, 8] {
            let engine = DisclosureEngine::with_cache_capacity(k, Some(cap));
            for round in 0..3 {
                for (b, want) in bs.iter().zip(&expected) {
                    let got = engine.max_disclosure_value(b).unwrap();
                    assert_eq!(got.to_bits(), want.to_bits(), "cap {cap} round {round}");
                    let stats = engine.stats();
                    assert!(stats.groups <= cap, "cap {cap}: {stats:?}");
                    assert!(stats.entries as u64 <= stats.groups.max(1), "{stats:?}");
                }
            }
        }
        // A tight budget across distinct histograms must have evicted.
        let tight = DisclosureEngine::with_cache_capacity(k, Some(3));
        for b in &bs {
            tight.max_disclosure_value(b).unwrap();
        }
        for b in &bs {
            tight.max_disclosure_value(b).unwrap();
        }
        assert!(tight.stats().evictions > 0, "{:?}", tight.stats());
    }

    /// An entry heavier than the whole budget is served unmemoized instead
    /// of flushing everything else; `Some(0)` clamps to a 1-group budget.
    #[test]
    fn oversized_entries_bypass_the_cache() {
        let engine = DisclosureEngine::with_cache_capacity(2, Some(1));
        let b = four_buckets(); // histograms with >1 distinct frequency
        let direct = max_disclosure(&b, 2).unwrap().value;
        let got = engine.max_disclosure_value(&b).unwrap();
        assert_eq!(got.to_bits(), direct.to_bits());
        let stats = engine.stats();
        assert!(stats.groups <= 1, "{stats:?}");
        assert_eq!(stats.evictions, 0, "oversized entries never evict");

        let clamped = DisclosureEngine::with_cache_capacity(2, Some(0));
        let got = clamped.max_disclosure_value(&b).unwrap();
        assert_eq!(got.to_bits(), direct.to_bits());
        assert!(clamped.stats().groups <= 1);
    }

    /// Concurrent access under a tight budget stays correct and bounded.
    #[test]
    fn capped_cache_is_thread_safe() {
        let engine = DisclosureEngine::with_cache_capacity(2, Some(2));
        let bs = [figure3(), four_buckets()];
        let expected: Vec<f64> = bs
            .iter()
            .map(|b| max_disclosure(b, 2).unwrap().value)
            .collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let engine = &engine;
                let bs = &bs;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..40 {
                        let idx = (i + worker) % bs.len();
                        let v = engine.max_disclosure_value(&bs[idx]).unwrap();
                        assert_eq!(v.to_bits(), expected[idx].to_bits());
                    }
                });
            }
        });
        assert!(engine.stats().groups <= 2, "{:?}", engine.stats());
    }

    #[test]
    fn incremental_value_matches_direct() {
        for k in 0..=3 {
            let engine = DisclosureEngine::new(k);
            let b = four_buckets();
            let inc = engine.incremental(&b).unwrap();
            let direct = max_disclosure(&b, k).unwrap();
            assert!((inc.value() - direct.value).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn what_if_replace_matches_recompute() {
        let k = 2;
        let engine = DisclosureEngine::new(k);
        let b = four_buckets();
        let inc = engine.incremental(&b).unwrap();
        // Replace bucket 1 with bucket 3's histogram (same table, different
        // frequency vector).
        let replacement_hist = b.bucket(3).histogram().clone();
        let costs = engine.costs(&replacement_hist);
        let predicted = inc.what_if_replace(1, &costs).unwrap();

        // Recompute from scratch: bucketization with bucket 1's histogram
        // replaced (members don't affect the value, only the histogram).
        let mut buckets: Vec<crate::Bucket> = b.buckets().to_vec();
        buckets[1] = crate::Bucket::from_histogram(
            vec![TupleId(3), TupleId(4), TupleId(90), TupleId(91)][..replacement_hist.n() as usize]
                .to_vec(),
            replacement_hist,
        );
        let modified = Bucketization::from_buckets(buckets, b.domain_size()).unwrap();
        let direct = max_disclosure(&modified, k).unwrap().value;
        assert!((predicted - direct).abs() < 1e-12);
    }

    #[test]
    fn what_if_remove_matches_recompute() {
        let k = 2;
        let engine = DisclosureEngine::new(k);
        let b = four_buckets();
        let inc = engine.incremental(&b).unwrap();
        for i in 0..4 {
            let predicted = inc.what_if_remove(i).unwrap();
            let groups: Vec<Vec<TupleId>> = b
                .buckets()
                .iter()
                .enumerate()
                .filter(|&(bi, _)| bi != i)
                .map(|(_, bucket)| bucket.members().to_vec())
                .collect();
            let modified = Bucketization::from_partition(&hospital_table(), &groups).unwrap();
            let direct = max_disclosure(&modified, k).unwrap().value;
            assert!((predicted - direct).abs() < 1e-12, "remove {i}");
        }
    }

    #[test]
    fn what_if_merge_matches_recompute() {
        let k = 2;
        let engine = DisclosureEngine::new(k);
        let b = four_buckets();
        let inc = engine.incremental(&b).unwrap();
        for i in 0..3 {
            let merged_hist =
                merge_histograms(b.bucket(i).histogram(), b.bucket(i + 1).histogram());
            let costs = engine.costs(&merged_hist);
            let predicted = inc.what_if_merge_adjacent(i, &costs).unwrap();
            let merged = merge_buckets(&b, i, i + 1).unwrap();
            let direct = max_disclosure(&merged, k).unwrap().value;
            assert!((predicted - direct).abs() < 1e-12, "merge {i}");
        }
    }

    #[test]
    fn committed_replace_updates_value() {
        let k = 1;
        let engine = DisclosureEngine::new(k);
        let b = four_buckets();
        let mut inc = engine.incremental(&b).unwrap();
        let hist = b.bucket(0).histogram().clone();
        let costs = engine.costs(&hist);
        let what_if = inc.what_if_replace(2, &costs).unwrap();
        inc.replace(2, costs).unwrap();
        assert!((inc.value() - what_if).abs() < 1e-15);
    }

    #[test]
    fn push_extends_session() {
        let k = 1;
        let engine = DisclosureEngine::new(k);
        let b = figure3();
        let mut inc = engine.incremental(&b).unwrap();
        assert_eq!(inc.n_buckets(), 2);
        let costs = engine.costs(b.bucket(0).histogram());
        inc.push(costs);
        assert_eq!(inc.n_buckets(), 3);
        // More buckets can only help the attacker pick a better target.
        let before = max_disclosure(&b, k).unwrap().value;
        assert!(inc.value() >= before - 1e-12);
    }

    #[test]
    fn index_errors() {
        let engine = DisclosureEngine::new(1);
        let b = figure3();
        let inc = engine.incremental(&b).unwrap();
        assert!(matches!(
            inc.what_if_remove(7),
            Err(CoreError::BucketOutOfRange { .. })
        ));
        let costs = engine.costs(b.bucket(0).histogram());
        assert!(inc.what_if_merge_adjacent(1, &costs).is_err());
    }

    #[test]
    fn prefix_and_suffix_agree_on_global_value() {
        let engine = DisclosureEngine::new(3);
        let b = four_buckets();
        let inc = engine.incremental(&b).unwrap();
        let via_prefix = inc.prefix.get(4, 3, true);
        let via_suffix = inc.suffix.get(0, 3, false);
        assert!((via_prefix - via_suffix).abs() < 1e-15);
    }
}
