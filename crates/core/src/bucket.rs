//! Buckets and bucketizations (Section 2.1).

use std::collections::HashMap;

use wcbk_table::{SValue, Table, TupleId};

use crate::{CoreError, SensitiveHistogram};

/// One bucket `b`: its members `P_b` and the histogram of its sensitive
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    members: Vec<TupleId>,
    histogram: SensitiveHistogram,
}

impl Bucket {
    /// Creates a bucket from members and their sensitive values (aligned).
    pub fn new(members: Vec<TupleId>, values: &[SValue]) -> Self {
        debug_assert_eq!(members.len(), values.len());
        Self {
            members,
            histogram: SensitiveHistogram::from_values(values),
        }
    }

    /// Creates a bucket from members and a pre-built histogram (e.g. when
    /// merging buckets). The histogram total must equal the member count.
    pub fn from_histogram(members: Vec<TupleId>, histogram: SensitiveHistogram) -> Self {
        debug_assert_eq!(members.len() as u64, histogram.n());
        Self { members, histogram }
    }

    /// The persons in the bucket.
    pub fn members(&self) -> &[TupleId] {
        &self.members
    }

    /// Bucket size `n_b`.
    pub fn n(&self) -> u64 {
        self.members.len() as u64
    }

    /// The sensitive-value histogram.
    pub fn histogram(&self) -> &SensitiveHistogram {
        &self.histogram
    }
}

/// A bucketization `B`: a partition of (a subset of) the table's tuples with
/// sensitive values randomly permuted inside each bucket.
///
/// The structure stores only what the *published* data reveals under full
/// identification information: bucket membership and per-bucket value
/// multisets. `domain_size` records the global sensitive-domain cardinality
/// `|S|`, which bounds the attacker's useful `k` and supplies out-of-bucket
/// values for witness construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucketization {
    buckets: Vec<Bucket>,
    domain_size: u32,
}

impl Bucketization {
    /// Builds a bucketization from explicit member groups over a table.
    ///
    /// Groups must be non-empty, disjoint, and reference valid rows. (They
    /// need not cover the whole table — publishing a sample is allowed.)
    pub fn from_partition(table: &Table, groups: &[Vec<TupleId>]) -> Result<Self, CoreError> {
        if groups.is_empty() {
            return Err(CoreError::EmptyBucketization);
        }
        let mut seen: HashMap<TupleId, ()> = HashMap::new();
        let mut buckets = Vec::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(CoreError::EmptyBucket(gi));
            }
            let mut values = Vec::with_capacity(group.len());
            for &t in group {
                if t.index() >= table.n_rows() {
                    return Err(CoreError::TupleOutOfRange {
                        tuple: t.0,
                        n_rows: table.n_rows(),
                    });
                }
                if seen.insert(t, ()).is_some() {
                    return Err(CoreError::OverlappingBuckets { tuple: t.0 });
                }
                values.push(table.sensitive_value(t));
            }
            buckets.push(Bucket::new(group.clone(), &values));
        }
        Ok(Self {
            buckets,
            domain_size: table.sensitive_cardinality() as u32,
        })
    }

    /// Builds a bucketization by grouping all tuples of `table` with a key
    /// function (e.g. the generalized quasi-identifier signature). Buckets
    /// appear in order of first key occurrence.
    pub fn from_grouping<K, F>(table: &Table, mut key_of: F) -> Result<Self, CoreError>
    where
        K: std::hash::Hash + Eq,
        F: FnMut(TupleId) -> K,
    {
        let mut index_of: HashMap<K, usize> = HashMap::new();
        let mut groups: Vec<Vec<TupleId>> = Vec::new();
        for t in table.tuple_ids() {
            let key = key_of(t);
            let next = groups.len();
            let gi = *index_of.entry(key).or_insert(next);
            if gi == groups.len() {
                groups.push(Vec::new());
            }
            groups[gi].push(t);
        }
        Self::from_partition(table, &groups)
    }

    /// Builds directly from pre-computed buckets (used by generators).
    pub fn from_buckets(buckets: Vec<Bucket>, domain_size: u32) -> Result<Self, CoreError> {
        if buckets.is_empty() {
            return Err(CoreError::EmptyBucketization);
        }
        for (i, b) in buckets.iter().enumerate() {
            if b.members().is_empty() {
                return Err(CoreError::EmptyBucket(i));
            }
        }
        let mut seen = HashMap::new();
        for b in &buckets {
            for &t in b.members() {
                if seen.insert(t, ()).is_some() {
                    return Err(CoreError::OverlappingBuckets { tuple: t.0 });
                }
            }
        }
        Ok(Self {
            buckets,
            domain_size,
        })
    }

    /// Number of buckets `|B|`.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket at `index`.
    pub fn bucket(&self, index: usize) -> &Bucket {
        &self.buckets[index]
    }

    /// Iterates over buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total tuples across buckets.
    pub fn n_tuples(&self) -> u64 {
        self.buckets.iter().map(Bucket::n).sum()
    }

    /// Global sensitive-domain cardinality `|S|`.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }

    /// The `k = 0` maximum disclosure: `max_b n_b(s⁰_b) / n_b`.
    pub fn max_frequency_ratio(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.histogram().top_ratio())
            .fold(0.0, f64::max)
    }

    /// Minimum per-bucket entropy (natural log) — the x-axis of Figure 6.
    pub fn min_bucket_entropy(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.histogram().entropy())
            .fold(f64::INFINITY, f64::min)
    }

    /// Smallest bucket size (the k-anonymity parameter of the grouping).
    pub fn min_bucket_size(&self) -> u64 {
        self.buckets.iter().map(Bucket::n).min().unwrap_or(0)
    }

    /// The bucket index containing person `p`, if any.
    pub fn bucket_of(&self, p: TupleId) -> Option<usize> {
        self.buckets.iter().position(|b| b.members().contains(&p))
    }

    /// Exports `(members, values)` pairs, e.g. to build an exact
    /// `wcbk_worlds::WorldSpace`. Values are emitted in histogram order
    /// (which published bucketizations are free to do — the permutation is
    /// random anyway).
    pub fn to_parts(&self) -> Vec<(Vec<TupleId>, Vec<SValue>)> {
        self.buckets
            .iter()
            .map(|b| {
                let mut values = Vec::with_capacity(b.members().len());
                let h = b.histogram();
                for rank in 0..h.distinct() {
                    let v = h.value_at(rank).expect("rank < distinct");
                    for _ in 0..h.frequency(rank) {
                        values.push(v);
                    }
                }
                (b.members().to_vec(), values)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn t(i: u32) -> TupleId {
        TupleId(i)
    }

    fn hospital_bucketization() -> Bucketization {
        let table = hospital_table();
        Bucketization::from_grouping(&table, hospital_bucket_of).unwrap()
    }

    #[test]
    fn hospital_grouping_matches_figure_3() {
        let b = hospital_bucketization();
        assert_eq!(b.n_buckets(), 2);
        assert_eq!(b.n_tuples(), 10);
        // Males: Flu 2, Lung Cancer 2, Mumps 1.
        assert_eq!(b.bucket(0).histogram().counts_desc(), &[2, 2, 1]);
        // Females: Flu 2, Breast 1, Ovarian 1, Heart 1.
        assert_eq!(b.bucket(1).histogram().counts_desc(), &[2, 1, 1, 1]);
        assert_eq!(b.domain_size(), 6);
    }

    #[test]
    fn k0_disclosure_is_two_fifths() {
        let b = hospital_bucketization();
        assert!((b.max_frequency_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn from_partition_validates() {
        let table = hospital_table();
        assert!(matches!(
            Bucketization::from_partition(&table, &[]),
            Err(CoreError::EmptyBucketization)
        ));
        assert!(matches!(
            Bucketization::from_partition(&table, &[vec![]]),
            Err(CoreError::EmptyBucket(0))
        ));
        assert!(matches!(
            Bucketization::from_partition(&table, &[vec![t(0)], vec![t(0)]]),
            Err(CoreError::OverlappingBuckets { tuple: 0 })
        ));
        assert!(matches!(
            Bucketization::from_partition(&table, &[vec![t(99)]]),
            Err(CoreError::TupleOutOfRange { tuple: 99, .. })
        ));
    }

    #[test]
    fn partial_cover_allowed() {
        let table = hospital_table();
        let b = Bucketization::from_partition(&table, &[vec![t(0), t(1)]]).unwrap();
        assert_eq!(b.n_tuples(), 2);
    }

    #[test]
    fn bucket_of_lookup() {
        let b = hospital_bucketization();
        assert_eq!(b.bucket_of(t(3)), Some(0));
        assert_eq!(b.bucket_of(t(7)), Some(1));
        let table = hospital_table();
        let partial = Bucketization::from_partition(&table, &[vec![t(0)]]).unwrap();
        assert_eq!(partial.bucket_of(t(5)), None);
    }

    #[test]
    fn to_parts_preserves_multisets() {
        let b = hospital_bucketization();
        let parts = b.to_parts();
        assert_eq!(parts.len(), 2);
        let (members, values) = &parts[0];
        assert_eq!(members.len(), 5);
        assert_eq!(values.len(), 5);
        let rebuilt = SensitiveHistogram::from_values(values);
        assert_eq!(&rebuilt, b.bucket(0).histogram());
    }

    #[test]
    fn min_bucket_entropy_and_size() {
        let b = hospital_bucketization();
        assert_eq!(b.min_bucket_size(), 5);
        // Male bucket entropy (2/5,2/5,1/5) < female (2/5,1/5,1/5,1/5).
        let male = b.bucket(0).histogram().entropy();
        assert!((b.min_bucket_entropy() - male).abs() < 1e-12);
    }

    #[test]
    fn grouping_by_constant_gives_one_bucket() {
        let table = hospital_table();
        let b = Bucketization::from_grouping(&table, |_| 0u8).unwrap();
        assert_eq!(b.n_buckets(), 1);
        assert_eq!(b.bucket(0).n(), 10);
    }
}
