//! (c,k)-safety (Definition 13).
//!
//! A bucketization `B` is **(c,k)-safe** when its maximum disclosure with
//! respect to `L^k_basic` is *strictly less than* the threshold `c`. By
//! Theorem 14 safety is upward-closed under coarsening, so it plugs into the
//! lattice-search machinery of `wcbk-anonymize` the same way k-anonymity
//! plugs into Incognito.

use crate::{max_disclosure, Bucketization, CoreError, DisclosureEngine, HistogramSet};

/// The (c,k)-safety criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkSafety {
    c: f64,
    k: usize,
}

impl CkSafety {
    /// Creates the criterion, validating `c ∈ (0, 1]`.
    ///
    /// (`c = 1` demands only that nothing is *fully* disclosed; smaller `c`
    /// is stricter. `c ≤ 0` would be unsatisfiable.)
    pub fn new(c: f64, k: usize) -> Result<Self, CoreError> {
        if !(c > 0.0 && c <= 1.0) {
            return Err(CoreError::InvalidThreshold(c));
        }
        Ok(Self { c, k })
    }

    /// The disclosure threshold `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The attacker power bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Checks safety, computing maximum disclosure from scratch.
    pub fn is_safe(&self, b: &Bucketization) -> Result<bool, CoreError> {
        // Cheap necessary condition first: disclosure ≥ max frequency ratio,
        // so an unsafe k=0 bound short-circuits the DP.
        if b.max_frequency_ratio() >= self.c {
            return Ok(false);
        }
        Ok(max_disclosure(b, self.k)?.value < self.c)
    }

    /// Checks safety through a memoizing [`DisclosureEngine`] (reuses
    /// MINIMIZE1 tables across bucketizations that share histograms —
    /// the common case during lattice search).
    pub fn is_safe_with(
        &self,
        engine: &DisclosureEngine,
        b: &Bucketization,
    ) -> Result<bool, CoreError> {
        if b.max_frequency_ratio() >= self.c {
            return Ok(false);
        }
        Ok(engine.max_disclosure_value(b)? < self.c)
    }

    /// Checks safety of a histogram-only view through a memoizing engine —
    /// the roll-up lattice search path, where no `Bucketization` exists.
    pub fn is_safe_set(
        &self,
        engine: &DisclosureEngine,
        h: &HistogramSet,
    ) -> Result<bool, CoreError> {
        if h.max_frequency_ratio() >= self.c {
            return Ok(false);
        }
        Ok(engine.max_disclosure_value_set(h)? < self.c)
    }
}

/// Convenience: is `b` (c,k)-safe?
///
/// ```
/// use wcbk_core::{is_ck_safe, Bucketization};
/// use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
///
/// let table = hospital_table();
/// let buckets = Bucketization::from_grouping(&table, hospital_bucket_of)?;
/// // Max disclosure at k=1 is 2/3: safe below 0.7, not below 0.6.
/// assert!(is_ck_safe(&buckets, 0.7, 1)?);
/// assert!(!is_ck_safe(&buckets, 0.6, 1)?);
/// # Ok::<(), wcbk_core::CoreError>(())
/// ```
pub fn is_ck_safe(b: &Bucketization, c: f64, k: usize) -> Result<bool, CoreError> {
    CkSafety::new(c, k)?.is_safe(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    #[test]
    fn threshold_validation() {
        assert!(CkSafety::new(0.0, 1).is_err());
        assert!(CkSafety::new(-0.3, 1).is_err());
        assert!(CkSafety::new(1.1, 1).is_err());
        assert!(CkSafety::new(1.0, 1).is_ok());
        assert!(CkSafety::new(f64::NAN, 1).is_err());
    }

    #[test]
    fn figure3_safety_boundaries() {
        let b = figure3();
        // Max disclosure: k=0 → 0.4, k=1 → 2/3, k=2 → 1.
        assert!(is_ck_safe(&b, 0.5, 0).unwrap());
        assert!(!is_ck_safe(&b, 0.4, 0).unwrap()); // strict inequality
        assert!(is_ck_safe(&b, 0.7, 1).unwrap());
        assert!(!is_ck_safe(&b, 0.6, 1).unwrap());
        assert!(!is_ck_safe(&b, 1.0, 2).unwrap()); // disclosure hits 1
    }

    #[test]
    fn safety_is_antitone_in_k_and_monotone_in_c() {
        let b = figure3();
        // Larger k can only break safety.
        assert!(is_ck_safe(&b, 0.5, 0).unwrap());
        assert!(!is_ck_safe(&b, 0.5, 1).unwrap());
        // Larger c can only grant safety.
        assert!(!is_ck_safe(&b, 0.41, 1).unwrap());
        assert!(is_ck_safe(&b, 0.99, 1).unwrap());
    }

    #[test]
    fn engine_and_direct_agree() {
        let b = figure3();
        for k in 0..=3 {
            let engine = DisclosureEngine::new(k);
            let safety = CkSafety::new(0.65, k).unwrap();
            assert_eq!(
                safety.is_safe(&b).unwrap(),
                safety.is_safe_with(&engine, &b).unwrap(),
                "k={k}"
            );
        }
    }

    #[test]
    fn short_circuit_on_frequency_ratio() {
        // c below the k=0 ratio: unsafe regardless of k, no DP needed.
        let b = figure3();
        assert!(!is_ck_safe(&b, 0.3, 0).unwrap());
        assert!(!is_ck_safe(&b, 0.3, 5).unwrap());
    }
}
