//! A bounded registry of shared [`DisclosureEngine`]s, one per attacker
//! power `k`.
//!
//! Long-lived callers (the `wcbk-serve` audit service, a
//! `wcbk-anonymize::DatasetSession`) want **one** engine per distinct `k`
//! so MINIMIZE1 tables memoized by any request serve every later one — but
//! a registry that only ever grows is a slow leak under diverse traffic
//! (every distinct `k` pins an engine, and every engine's cache pins its
//! tables). [`EngineRegistry`] bounds both dimensions:
//!
//! * each engine it creates carries the registry's per-engine **cache
//!   budget** (see [`DisclosureEngine::with_cache_capacity`]);
//! * the registry itself carries a **group-weighted LRU budget**: when the
//!   total retained weight (Σ [`CacheStats::groups`] over registered
//!   engines) exceeds it, the least-recently-requested engines are dropped
//!   from the registry. In-flight holders of an evicted engine's `Arc`
//!   finish unaffected; the next request for that `k` starts a fresh,
//!   cold engine. Results never change — only cache warmth does.
//!
//! Both budgets default to `None` (unbounded), preserving one-shot CLI
//! behavior exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::{CacheStats, DisclosureEngine};

/// A registered engine plus its last-request tick for LRU eviction.
struct Registered {
    engine: Arc<DisclosureEngine>,
    touch: AtomicU64,
}

/// Shared per-`k` engines under optional cache and registry budgets — see
/// the module docs.
pub struct EngineRegistry {
    engines: RwLock<HashMap<usize, Registered>>,
    /// Cache budget handed to every engine this registry creates.
    engine_cache_capacity: Option<u64>,
    /// Registry budget: Σ retained groups across engines.
    budget: Option<u64>,
    clock: AtomicU64,
    evictions: AtomicU64,
    /// High-water of Σ retained groups, sampled wherever the total is
    /// computed (budget checks and [`EngineRegistry::stats`] snapshots).
    peak_groups: AtomicU64,
}

/// Snapshot of a registry: per-`k` cache stats plus registry-level totals.
#[derive(Debug, Clone)]
pub struct RegistryStats {
    /// Engines currently registered.
    pub engines: usize,
    /// Σ retained cache weight (groups) across registered engines.
    pub groups: u64,
    /// Engines dropped to respect the registry budget.
    pub evictions: u64,
    /// High-water mark of Σ retained groups observed at snapshot points
    /// since the registry was created (survives engine eviction).
    pub peak_groups: u64,
    /// Per-`k` cache stats, ascending in `k`.
    pub per_k: Vec<(usize, CacheStats)>,
}

impl RegistryStats {
    /// Summed cache stats across every registered engine.
    pub fn totals(&self) -> CacheStats {
        self.per_k.iter().fold(
            CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                groups: 0,
                evictions: 0,
                build_micros: 0,
                peak_groups: 0,
            },
            |acc, (_, s)| CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                entries: acc.entries + s.entries,
                groups: acc.groups + s.groups,
                evictions: acc.evictions + s.evictions,
                build_micros: acc.build_micros + s.build_micros,
                peak_groups: acc.peak_groups + s.peak_groups,
            },
        )
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineRegistry {
    /// An unbounded registry (engines and their caches live forever) — the
    /// one-shot default.
    pub fn new() -> Self {
        Self::with_limits(None, None)
    }

    /// A registry whose engines carry `engine_cache_capacity` as their
    /// MINIMIZE1 cache budget, and which itself drops least-recently-
    /// requested engines once the total retained weight exceeds `budget`.
    /// The most recently requested engine is never dropped, so a single
    /// hot engine can exceed the budget rather than thrash.
    pub fn with_limits(engine_cache_capacity: Option<u64>, budget: Option<u64>) -> Self {
        Self {
            engines: RwLock::new(HashMap::new()),
            engine_cache_capacity,
            budget: budget.map(|b| b.max(1)),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            peak_groups: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The shared engine for attacker power `k`, created (under the
    /// registry's per-engine cache budget) on first request.
    pub fn engine(&self, k: usize) -> Arc<DisclosureEngine> {
        {
            let engines = self.engines.read().expect("engine registry poisoned");
            if let Some(entry) = engines.get(&k) {
                entry.touch.store(self.tick(), Ordering::Relaxed);
                return Arc::clone(&entry.engine);
            }
        }
        let mut engines = self.engines.write().expect("engine registry poisoned");
        let engine = match engines.get(&k) {
            Some(entry) => {
                // Lost a race with a concurrent creator: keep the first.
                entry.touch.store(self.tick(), Ordering::Relaxed);
                Arc::clone(&entry.engine)
            }
            None => {
                let engine = Arc::new(DisclosureEngine::with_cache_capacity(
                    k,
                    self.engine_cache_capacity,
                ));
                engines.insert(
                    k,
                    Registered {
                        engine: Arc::clone(&engine),
                        touch: AtomicU64::new(self.tick()),
                    },
                );
                engine
            }
        };
        if let Some(budget) = self.budget {
            // Drop cold engines (never the one just requested) until the
            // total retained weight fits.
            while engines.len() > 1 {
                let total: u64 = engines.values().map(|e| e.engine.stats().groups).sum();
                self.peak_groups.fetch_max(total, Ordering::Relaxed);
                if total <= budget {
                    break;
                }
                let victim = engines
                    .iter()
                    .filter(|(&vk, _)| vk != k)
                    .min_by_key(|(_, e)| e.touch.load(Ordering::Relaxed))
                    .map(|(&vk, _)| vk);
                match victim {
                    Some(vk) => {
                        engines.remove(&vk);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        engine
    }

    /// Number of engines currently registered.
    pub fn len(&self) -> usize {
        self.engines.read().expect("engine registry poisoned").len()
    }

    /// Whether no engine has been requested yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of per-`k` cache stats plus registry totals.
    pub fn stats(&self) -> RegistryStats {
        let engines = self.engines.read().expect("engine registry poisoned");
        let mut per_k: Vec<(usize, CacheStats)> = engines
            .iter()
            .map(|(&k, e)| (k, e.engine.stats()))
            .collect();
        per_k.sort_by_key(|&(k, _)| k);
        let groups: u64 = per_k.iter().map(|(_, s)| s.groups).sum();
        self.peak_groups.fetch_max(groups, Ordering::Relaxed);
        RegistryStats {
            engines: per_k.len(),
            groups,
            evictions: self.evictions.load(Ordering::Relaxed),
            peak_groups: self.peak_groups.load(Ordering::Relaxed),
            per_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bucketization;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    #[test]
    fn same_k_returns_the_same_engine() {
        let registry = EngineRegistry::new();
        let a = registry.engine(2);
        let b = registry.engine(2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = registry.engine(3);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn engines_inherit_the_cache_capacity() {
        let registry = EngineRegistry::with_limits(Some(1), None);
        let engine = registry.engine(1);
        let b = figure3();
        // Both figure-3 histograms weigh >1 group, so a 1-group budget
        // caches neither — yet values stay correct.
        let direct = crate::max_disclosure(&b, 1).unwrap().value;
        assert_eq!(
            engine.max_disclosure_value(&b).unwrap().to_bits(),
            direct.to_bits()
        );
        assert!(engine.stats().groups <= 1, "{:?}", engine.stats());
    }

    #[test]
    fn budget_drops_cold_engines_but_never_the_hot_one() {
        let registry = EngineRegistry::with_limits(None, Some(1));
        let b = figure3();
        // Warm k=1: its retained weight alone exceeds the 1-group budget,
        // but the most recent engine is never evicted.
        let e1 = registry.engine(1);
        e1.max_disclosure_value(&b).unwrap();
        assert_eq!(registry.len(), 1);
        registry.engine(1);
        assert_eq!(registry.len(), 1, "hot engine must survive");
        // Requesting k=2 makes k=1 the cold one; total weight still exceeds
        // the budget, so k=1 is dropped.
        registry.engine(2);
        let stats = registry.stats();
        assert_eq!(stats.engines, 1, "{stats:?}");
        assert_eq!(stats.per_k[0].0, 2);
        assert!(stats.evictions >= 1);
        // The in-flight Arc still works; a re-request starts cold.
        e1.max_disclosure_value(&b).unwrap();
        let fresh = registry.engine(1);
        assert!(!Arc::ptr_eq(&e1, &fresh));
        assert_eq!(fresh.stats().entries, 0);
    }

    #[test]
    fn stats_sum_across_engines() {
        let registry = EngineRegistry::new();
        let b = figure3();
        registry.engine(1).max_disclosure_value(&b).unwrap();
        registry.engine(2).max_disclosure_value(&b).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.per_k.len(), 2);
        let totals = stats.totals();
        assert_eq!(totals.misses, 4, "2 engines x 2 distinct histograms");
        assert_eq!(totals.entries, 4);
        assert_eq!(stats.groups, totals.groups);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_requests_converge_on_one_engine() {
        let registry = EngineRegistry::new();
        let engines: Vec<Arc<DisclosureEngine>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| registry.engine(3))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in engines.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(registry.len(), 1);
    }
}
