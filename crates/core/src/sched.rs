//! Work-stealing evaluation of monotone-pruned DAGs.
//!
//! The lattice searches in `wcbk-anonymize` all share one shape: nodes of a
//! DAG are judged by a monotone predicate, a node whose predecessor is known
//! **safe** is safe by monotonicity and must *not* be evaluated (it cannot be
//! minimal), and a node all of whose predecessors are known **unsafe** must
//! be evaluated. The level-synchronous implementation runs this one height
//! at a time, so every level waits on its slowest node. This module removes
//! the barrier: a node becomes runnable the instant its last predecessor's
//! verdict lands, safe verdicts prune entire up-sets immediately, and idle
//! workers *speculate* — they evaluate nodes whose predecessors are still
//! pending, preferring the node nearest the required frontier (fewest
//! predecessors still pending, smallest index on ties — the node most
//! likely to become required next), and discard the work if it turns out
//! pruned.
//!
//! The scheduler is deliberately ignorant of lattices: it sees a
//! [`MonotoneDag`] of integer nodes in **topological index order** (every
//! predecessor index is smaller than its successor's) plus an evaluation
//! closure. That order is exactly the sequential visit order, which buys the
//! two contracts the searches rely on:
//!
//! * **Bit-for-bit outcome equivalence.** The set of evaluated nodes, the
//!   safe set, and the evaluated-safe ("minimal") set are functions of the
//!   DAG and the verdicts alone — not of scheduling. Speculative work on
//!   nodes that end up pruned is counted separately and never leaks into
//!   `evaluated`.
//! * **First-error-in-visit-order semantics.** A failed evaluation resolves
//!   its node as unsafe-for-propagation so the DAG still drains, every
//!   *required* evaluation error is recorded with its node index, and the
//!   smallest index wins — the same error the sequential loop would have
//!   stopped at, because an error can only unlock evaluations at strictly
//!   larger indices.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a node of a [`MonotoneDag`] was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeResolution {
    /// Safe by monotonicity (some predecessor was safe); never evaluated.
    PrunedSafe,
    /// Evaluated (all predecessors unsafe) and the predicate held — these
    /// are exactly the ⪯-minimal safe nodes.
    EvaluatedSafe,
    /// Evaluated and the predicate failed.
    EvaluatedUnsafe,
}

/// Outcome of draining a [`MonotoneDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Per-node resolution, indexed like the DAG.
    pub resolutions: Vec<NodeResolution>,
    /// Number of *required* evaluations (identical to the sequential loop's
    /// count; speculative evaluations on pruned nodes are excluded).
    pub evaluated: usize,
    /// Evaluations started speculatively (predecessors still pending).
    pub speculated: usize,
    /// Speculative evaluations that ran to a verdict on a node that ended up
    /// pruned — work discarded.
    pub discarded: usize,
    /// Speculative claims abandoned before evaluating because the node was
    /// pruned between the claim and the evaluation (pruning is final, so the
    /// verdict could never be committed).
    pub abandoned: usize,
    /// Nodes a worker took from a sibling's deque rather than its own
    /// (always 0 for the sequential evaluator). Schedule-dependent: varies
    /// run to run, so equivalence tests must not compare it.
    pub steals: usize,
    /// Wall-clock time spent draining the DAG, in microseconds.
    /// Schedule-dependent, like `steals`.
    pub wall_micros: u64,
}

impl ScheduleOutcome {
    /// Count of safe nodes (pruned or evaluated-safe).
    pub fn safe_count(&self) -> usize {
        self.resolutions
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    NodeResolution::PrunedSafe | NodeResolution::EvaluatedSafe
                )
            })
            .count()
    }

    /// Indices of evaluated-safe nodes, ascending — the minimal antichain in
    /// sequential visit order.
    pub fn evaluated_safe(&self) -> Vec<usize> {
        self.resolutions
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, NodeResolution::EvaluatedSafe))
            .map(|(i, _)| i)
            .collect()
    }
}

/// A DAG in topological index order, ready for monotone-pruned evaluation.
///
/// `preds[i]` lists the immediate predecessors of node `i`; every listed
/// index must be `< i` (construction panics otherwise — the searches index
/// nodes in visit order, where predecessors always come first).
#[derive(Debug, Clone)]
pub struct MonotoneDag {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
}

impl MonotoneDag {
    /// Builds the DAG from per-node predecessor lists.
    pub fn new(preds: Vec<Vec<u32>>) -> Self {
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); preds.len()];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                assert!(
                    (p as usize) < i,
                    "predecessor {p} of node {i} violates topological index order"
                );
                succs[p as usize].push(i as u32);
            }
        }
        Self { preds, succs }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.preds.len()
    }
}

/// The sequential reference evaluator: visits nodes in index order, prunes
/// on any safe predecessor, evaluates otherwise, stops at the first error.
/// [`evaluate_work_stealing`] is defined to be outcome-equivalent to this.
pub fn evaluate_sequential<E, F>(dag: &MonotoneDag, eval: F) -> Result<ScheduleOutcome, E>
where
    F: Fn(usize) -> Result<bool, E>,
{
    let started = std::time::Instant::now();
    let n = dag.n_nodes();
    let mut resolutions = Vec::with_capacity(n);
    let mut safe = vec![false; n];
    let mut evaluated = 0usize;
    for i in 0..n {
        if dag.preds[i].iter().any(|&p| safe[p as usize]) {
            safe[i] = true;
            resolutions.push(NodeResolution::PrunedSafe);
            continue;
        }
        evaluated += 1;
        if eval(i)? {
            safe[i] = true;
            resolutions.push(NodeResolution::EvaluatedSafe);
        } else {
            resolutions.push(NodeResolution::EvaluatedUnsafe);
        }
    }
    Ok(ScheduleOutcome {
        resolutions,
        evaluated,
        speculated: 0,
        discarded: 0,
        abandoned: 0,
        steals: 0,
        wall_micros: started.elapsed().as_micros() as u64,
    })
}

// Resolution states (atomic u8).
const UNRESOLVED: u8 = 0;
/// All predecessors unsafe; verdict pending. Transient.
const REQUIRED: u8 = 1;
const PRUNED_SAFE: u8 = 2;
const EVAL_SAFE: u8 = 3;
const EVAL_UNSAFE: u8 = 4;
/// Required evaluation failed; propagates as unsafe so the DAG drains.
const ERRORED: u8 = 5;

// Evaluation states (atomic u8), decoupled from resolution so speculation
// can run ahead of it.
const NOT_STARTED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
/// A speculative claim dropped without evaluating: the node was pruned
/// between the claim and the evaluation. Only reachable from `RUNNING` on a
/// `PRUNED_SAFE` node, so `make_required` (which excludes pruned nodes by
/// the pending-count invariant) never observes it.
const ABANDONED: u8 = 3;

struct Shared<'d, E, F> {
    dag: &'d MonotoneDag,
    eval: F,
    /// Per-node resolution state machine.
    resolution: Vec<AtomicU8>,
    /// Predecessors not yet known-unsafe. Only unsafe (or errored)
    /// predecessors decrement, so a node with any safe predecessor never
    /// reaches zero — `REQUIRED` and `PRUNED_SAFE` are mutually exclusive.
    pending: Vec<AtomicUsize>,
    /// Per-node evaluation claim (speculative or required).
    eval_state: Vec<AtomicU8>,
    /// Parked verdicts: written once by the evaluator, taken exactly once by
    /// the committing thread.
    results: Vec<Mutex<Option<Result<bool, E>>>>,
    /// Per-worker deques; owners push/pop the back, thieves pop the front.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Nodes in a final state; workers exit when this reaches `n`.
    resolved: AtomicUsize,
    speculated: AtomicUsize,
    /// Speculative claims dropped before evaluating (node pruned mid-flight).
    abandoned: AtomicUsize,
    /// Nodes popped from a sibling's deque rather than the worker's own.
    steals: AtomicUsize,
    /// Errors from *required* evaluations, with their node index.
    errors: Mutex<Vec<(u32, E)>>,
    /// Set when a worker unwinds, so siblings stop instead of spinning.
    abort: AtomicBool,
}

impl<'d, E: Send, F> Shared<'d, E, F>
where
    F: Fn(usize) -> Result<bool, E> + Sync,
{
    fn new(dag: &'d MonotoneDag, workers: usize, eval: F) -> Self {
        let n = dag.n_nodes();
        Self {
            dag,
            eval,
            resolution: (0..n).map(|_| AtomicU8::new(UNRESOLVED)).collect(),
            pending: dag
                .preds
                .iter()
                .map(|p| AtomicUsize::new(p.len()))
                .collect(),
            eval_state: (0..n).map(|_| AtomicU8::new(NOT_STARTED)).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            resolved: AtomicUsize::new(0),
            speculated: AtomicUsize::new(0),
            abandoned: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            errors: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
        }
    }

    fn lock_queue(&self, w: usize) -> std::sync::MutexGuard<'_, VecDeque<u32>> {
        self.queues[w].lock().expect("scheduler queue poisoned")
    }

    /// Own deque first (LIFO, for cache locality along derivation chains),
    /// then steal the oldest item from a sibling.
    fn pop_or_steal(&self, w: usize) -> Option<u32> {
        if let Some(i) = self.lock_queue(w).pop_back() {
            return Some(i);
        }
        let workers = self.queues.len();
        for offset in 1..workers {
            let victim = (w + offset) % workers;
            if let Some(i) = self.lock_queue(victim).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Claims the best speculation candidate: among unresolved, unstarted
    /// nodes, the one nearest the required frontier — fewest predecessors
    /// still pending, smallest index on ties. Frontier distance is the best
    /// cheap predictor of "becomes required next": a node one verdict away
    /// wastes the least work when its up-set is pruned instead. The scan is
    /// O(n), which is noise next to an evaluation (each one scans or derives
    /// a full node table). Outcome bit-identity does not depend on the
    /// choice — any claim order yields the same resolutions (pinned by the
    /// equivalence tests) — so the policy is pure wall-clock tuning.
    fn claim_speculation(&self) -> Option<u32> {
        loop {
            let mut best: Option<(usize, usize)> = None; // (pending, index)
            for i in 0..self.dag.n_nodes() {
                if self.resolution[i].load(Ordering::SeqCst) != UNRESOLVED
                    || self.eval_state[i].load(Ordering::SeqCst) != NOT_STARTED
                {
                    continue;
                }
                let candidate = (self.pending[i].load(Ordering::SeqCst), i);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
            let (_, i) = best?;
            if self.eval_state[i]
                .compare_exchange(NOT_STARTED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.speculated.fetch_add(1, Ordering::Relaxed);
                return Some(i as u32);
            }
            // Lost the claim race: the frontier moved, rescan. Each lost race
            // removes a candidate, so the loop terminates.
        }
    }

    /// Runs a node popped from a deque (resolution is `REQUIRED`).
    fn run_required(&self, w: usize, i: u32) {
        match self.eval_state[i as usize].compare_exchange(
            NOT_STARTED,
            RUNNING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                let verdict = (self.eval)(i as usize);
                *self.results[i as usize]
                    .lock()
                    .expect("result slot poisoned") = Some(verdict);
                self.eval_state[i as usize].store(DONE, Ordering::SeqCst);
                self.commit(w, i);
            }
            // A speculator owns the evaluation. It stores DONE before
            // re-reading the resolution (and REQUIRED was stored before this
            // node was queued), so under SeqCst at least one side observes
            // the other and commits; `commit` itself is exactly-once.
            Err(RUNNING) => {}
            Err(_) => self.commit(w, i),
        }
    }

    /// Runs a speculatively claimed node; commits only if the node became
    /// required in the meantime.
    fn run_speculative(&self, w: usize, i: u32) {
        // The node may have been pruned between the claim and here. Pruning
        // is final (`PRUNED_SAFE` nodes never become required — their
        // pending count never reaches zero), so the verdict could never be
        // committed: abandon the claim instead of evaluating into the void.
        if self.resolution[i as usize].load(Ordering::SeqCst) == PRUNED_SAFE {
            self.eval_state[i as usize].store(ABANDONED, Ordering::SeqCst);
            self.abandoned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let verdict = (self.eval)(i as usize);
        *self.results[i as usize]
            .lock()
            .expect("result slot poisoned") = Some(verdict);
        self.eval_state[i as usize].store(DONE, Ordering::SeqCst);
        if self.resolution[i as usize].load(Ordering::SeqCst) == REQUIRED {
            self.commit(w, i);
        }
    }

    /// Consumes node `i`'s parked verdict and resolves it. The `take()` on
    /// the result slot makes concurrent commit attempts exactly-once.
    fn commit(&self, w: usize, i: u32) {
        let verdict = self.results[i as usize]
            .lock()
            .expect("result slot poisoned")
            .take();
        let Some(verdict) = verdict else {
            return; // another thread already committed
        };
        let state = match verdict {
            Ok(true) => EVAL_SAFE,
            Ok(false) => EVAL_UNSAFE,
            Err(e) => {
                self.errors
                    .lock()
                    .expect("error list poisoned")
                    .push((i, e));
                ERRORED
            }
        };
        self.resolution[i as usize].store(state, Ordering::SeqCst);
        self.resolved.fetch_add(1, Ordering::SeqCst);
        self.propagate(w, i, state == EVAL_SAFE);
    }

    /// Pushes node `i`'s verdict into its successors: a safe verdict prunes
    /// the whole up-set (cascading), an unsafe one arms successors whose
    /// last pending predecessor this was.
    fn propagate(&self, w: usize, i: u32, is_safe: bool) {
        let mut prune_stack: Vec<u32> = Vec::new();
        if is_safe {
            prune_stack.push(i);
            while let Some(j) = prune_stack.pop() {
                for &s in &self.dag.succs[j as usize] {
                    if self.resolution[s as usize]
                        .compare_exchange(
                            UNRESOLVED,
                            PRUNED_SAFE,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        self.resolved.fetch_add(1, Ordering::SeqCst);
                        prune_stack.push(s);
                    }
                }
            }
        } else {
            for &s in &self.dag.succs[i as usize] {
                if self.pending[s as usize].fetch_sub(1, Ordering::SeqCst) == 1 {
                    self.make_required(w, s);
                }
            }
        }
    }

    /// All of `s`'s predecessors are unsafe: mark it required and get its
    /// verdict committed — now if already evaluated, else via a deque.
    fn make_required(&self, w: usize, s: u32) {
        let prev = self.resolution[s as usize].compare_exchange(
            UNRESOLVED,
            REQUIRED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        debug_assert!(prev.is_ok(), "required node was already resolved");
        match self.eval_state[s as usize].load(Ordering::SeqCst) {
            DONE => self.commit(w, s),
            NOT_STARTED => self.lock_queue(w).push_back(s),
            // RUNNING: the speculator stores DONE and then re-reads the
            // resolution we just stored, so it will commit.
            _ => {}
        }
    }

    fn worker(&self, w: usize, speculate: bool) {
        let n = self.dag.n_nodes();
        loop {
            if self.resolved.load(Ordering::SeqCst) >= n || self.abort.load(Ordering::Relaxed) {
                return;
            }
            if let Some(i) = self.pop_or_steal(w) {
                self.run_required(w, i);
                continue;
            }
            if speculate {
                if let Some(i) = self.claim_speculation() {
                    self.run_speculative(w, i);
                    continue;
                }
            }
            std::thread::yield_now();
        }
    }
}

/// Sets the shared abort flag if its worker unwinds, so sibling workers
/// stop waiting for a resolution count that will never arrive.
struct AbortGuard<'a>(&'a AtomicBool);

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// Drains `dag` on `workers` threads with work stealing (and, when
/// `speculate` is set, speculative evaluation on idle workers), returning an
/// outcome identical to [`evaluate_sequential`]'s.
///
/// `workers` is clamped to `[1, n_nodes]`. On evaluation errors the DAG
/// still drains (errors propagate as unsafe) and the error with the smallest
/// node index — the one the sequential loop would have hit — is returned.
pub fn evaluate_work_stealing<E, F>(
    dag: &MonotoneDag,
    workers: usize,
    speculate: bool,
    eval: F,
) -> Result<ScheduleOutcome, E>
where
    E: Send,
    F: Fn(usize) -> Result<bool, E> + Sync,
{
    let started = std::time::Instant::now();
    let n = dag.n_nodes();
    if n == 0 {
        return Ok(ScheduleOutcome {
            resolutions: Vec::new(),
            evaluated: 0,
            speculated: 0,
            discarded: 0,
            abandoned: 0,
            steals: 0,
            wall_micros: 0,
        });
    }
    let workers = workers.clamp(1, n);
    let shared = Shared::new(dag, workers, eval);

    // Seed: sources (no predecessors) are required from the start.
    {
        let mut w = 0usize;
        for i in 0..n {
            if dag.preds[i].is_empty() {
                shared.resolution[i].store(REQUIRED, Ordering::SeqCst);
                shared.lock_queue(w).push_back(i as u32);
                w = (w + 1) % workers;
            }
        }
    }

    std::thread::scope(|scope| {
        let shared = &shared;
        for w in 0..workers {
            scope.spawn(move || {
                let _guard = AbortGuard(&shared.abort);
                shared.worker(w, speculate);
            });
        }
    });
    debug_assert_eq!(shared.resolved.load(Ordering::SeqCst), n);

    // First error in sequential visit order wins, exactly like the
    // sequential loop (see the module docs for why no smaller-index error
    // can have been missed).
    let mut errors = shared.errors.into_inner().expect("error list poisoned");
    if !errors.is_empty() {
        errors.sort_by_key(|&(i, _)| i);
        let (_, e) = errors.remove(0);
        return Err(e);
    }

    let mut evaluated = 0usize;
    let mut discarded = 0usize;
    let resolutions: Vec<NodeResolution> = (0..n)
        .map(|i| match shared.resolution[i].load(Ordering::SeqCst) {
            PRUNED_SAFE => {
                // A parked verdict on a pruned node is discarded speculation;
                // an abandoned claim never evaluated, so it is counted apart.
                match shared.eval_state[i].load(Ordering::SeqCst) {
                    NOT_STARTED | ABANDONED => {}
                    _ => discarded += 1,
                }
                NodeResolution::PrunedSafe
            }
            EVAL_SAFE => {
                evaluated += 1;
                NodeResolution::EvaluatedSafe
            }
            EVAL_UNSAFE => {
                evaluated += 1;
                NodeResolution::EvaluatedUnsafe
            }
            other => unreachable!("node {i} finished in non-final state {other}"),
        })
        .collect();
    Ok(ScheduleOutcome {
        resolutions,
        evaluated,
        speculated: shared.speculated.load(Ordering::Relaxed),
        discarded,
        abandoned: shared.abandoned.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
        wall_micros: started.elapsed().as_micros() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A w×h grid DAG (the shape of a two-dimension generalization lattice)
    /// in height-major index order, mirroring `nodes_by_height`.
    fn grid(w: usize, h: usize) -> (MonotoneDag, Vec<(usize, usize)>) {
        let mut coords: Vec<(usize, usize)> =
            (0..w).flat_map(|x| (0..h).map(move |y| (x, y))).collect();
        coords.sort_by_key(|&(x, y)| (x + y, x));
        let index_of = |x: usize, y: usize| coords.iter().position(|&c| c == (x, y)).unwrap();
        let preds = coords
            .iter()
            .map(|&(x, y)| {
                let mut p = Vec::new();
                if x > 0 {
                    p.push(index_of(x - 1, y) as u32);
                }
                if y > 0 {
                    p.push(index_of(x, y - 1) as u32);
                }
                p
            })
            .collect();
        (MonotoneDag::new(preds), coords)
    }

    /// Monotone predicate on the grid: safe above an anti-diagonal.
    fn grid_safe(coords: &[(usize, usize)], threshold: usize) -> impl Fn(usize) -> bool + '_ {
        move |i| {
            let (x, y) = coords[i];
            x + y >= threshold
        }
    }

    #[test]
    fn sequential_prunes_and_counts() {
        let (dag, coords) = grid(4, 4);
        let safe = grid_safe(&coords, 3);
        let out = evaluate_sequential::<(), _>(&dag, |i| Ok(safe(i))).unwrap();
        // Safe set: x+y >= 3 (10 of 16 nodes). Minimal: x+y == 3 (4 nodes).
        assert_eq!(out.safe_count(), 10);
        assert_eq!(out.evaluated_safe().len(), 4);
        // Evaluated: everything below the frontier (6) plus the frontier (4).
        assert_eq!(out.evaluated, 10);
    }

    #[test]
    fn stealing_matches_sequential_on_grids() {
        for (w, h) in [(1, 1), (1, 7), (5, 5), (4, 9)] {
            let (dag, coords) = grid(w, h);
            for threshold in 0..(w + h) {
                let safe = grid_safe(&coords, threshold);
                let seq = evaluate_sequential::<(), _>(&dag, |i| Ok(safe(i))).unwrap();
                for workers in [1usize, 2, 4, 16] {
                    for speculate in [false, true] {
                        let par = evaluate_work_stealing::<(), _>(&dag, workers, speculate, |i| {
                            Ok(safe(i))
                        })
                        .unwrap();
                        assert_eq!(
                            seq.resolutions, par.resolutions,
                            "grid {w}x{h} t={threshold} workers={workers} spec={speculate}"
                        );
                        assert_eq!(seq.evaluated, par.evaluated);
                    }
                }
            }
        }
    }

    #[test]
    fn one_worker_equals_sequential() {
        let (dag, coords) = grid(6, 6);
        let safe = grid_safe(&coords, 5);
        let seq = evaluate_sequential::<(), _>(&dag, |i| Ok(safe(i))).unwrap();
        let one = evaluate_work_stealing::<(), _>(&dag, 1, true, |i| Ok(safe(i))).unwrap();
        assert_eq!(seq.resolutions, one.resolutions);
        assert_eq!(seq.evaluated, one.evaluated);
    }

    #[test]
    fn more_workers_than_nodes() {
        let (dag, coords) = grid(2, 2);
        let safe = grid_safe(&coords, 1);
        let seq = evaluate_sequential::<(), _>(&dag, |i| Ok(safe(i))).unwrap();
        let par = evaluate_work_stealing::<(), _>(&dag, 64, true, |i| Ok(safe(i))).unwrap();
        assert_eq!(seq.resolutions, par.resolutions);
    }

    #[test]
    fn empty_dag() {
        let dag = MonotoneDag::new(Vec::new());
        let out = evaluate_work_stealing::<(), _>(&dag, 4, true, |_| Ok(true)).unwrap();
        assert!(out.resolutions.is_empty());
        assert_eq!(out.evaluated, 0);
    }

    #[test]
    fn first_error_in_index_order_wins() {
        // A wide antichain over one source: indices 1..=8 all evaluate (the
        // source is unsafe), several of them error; the sequential loop
        // would stop at index 3, and so must the stealing run — regardless
        // of which worker hits which error first.
        let preds: Vec<Vec<u32>> = std::iter::once(Vec::new())
            .chain((1..=8).map(|_| vec![0u32]))
            .collect();
        let dag = MonotoneDag::new(preds);
        let eval = |i: usize| -> Result<bool, String> {
            match i {
                0 => Ok(false),
                3 | 5 | 7 => Err(format!("boom at {i}")),
                _ => Ok(true),
            }
        };
        let seq_err = evaluate_sequential(&dag, eval).unwrap_err();
        assert_eq!(seq_err, "boom at 3");
        for workers in [1usize, 2, 4, 8] {
            for speculate in [false, true] {
                let err = evaluate_work_stealing(&dag, workers, speculate, eval).unwrap_err();
                assert_eq!(err, "boom at 3", "workers={workers} spec={speculate}");
            }
        }
    }

    #[test]
    fn error_downstream_of_error_is_masked() {
        // 0 -> 1 -> 2: node 1 errors, which unlocks node 2 (error counts as
        // unsafe for propagation), and node 2 errors too. Only node 1's
        // error may surface — node 2 was never reached sequentially.
        let dag = MonotoneDag::new(vec![vec![], vec![0], vec![1]]);
        let eval = |i: usize| -> Result<bool, String> {
            match i {
                0 => Ok(false),
                _ => Err(format!("boom at {i}")),
            }
        };
        for workers in [1usize, 3] {
            let err = evaluate_work_stealing(&dag, workers, true, eval).unwrap_err();
            assert_eq!(err, "boom at 1");
        }
    }

    #[test]
    fn speculation_work_is_discarded_not_counted() {
        // A chain 0 -> 1 -> ... -> n-1 where the source is safe: the only
        // required evaluation is node 0; everything else is pruned. With
        // speculation on and several workers, speculative evaluations run
        // but must not inflate `evaluated`.
        let n = 64usize;
        let preds: Vec<Vec<u32>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i as u32 - 1] })
            .collect();
        let dag = MonotoneDag::new(preds);
        let evals = AtomicUsize::new(0);
        let out = evaluate_work_stealing::<(), _>(&dag, 4, true, |_| {
            evals.fetch_add(1, Ordering::Relaxed);
            // Slow the evaluation a touch so speculation actually happens.
            std::thread::yield_now();
            Ok(true)
        })
        .unwrap();
        assert_eq!(out.evaluated, 1, "only the source is a required eval");
        assert_eq!(out.safe_count(), n);
        assert_eq!(out.evaluated_safe(), vec![0]);
        assert_eq!(out.discarded + 1, evals.load(Ordering::Relaxed).max(1));
        // Every speculative claim either ran (discarded here — nothing else
        // ever becomes required) or was abandoned before evaluating.
        assert_eq!(out.speculated, out.discarded + out.abandoned);
    }

    /// Speculation claims the node nearest the required frontier: fewest
    /// still-pending predecessors first, smallest index on ties, skipping
    /// nodes already claimed or resolved.
    #[test]
    fn speculation_claims_nearest_frontier_first() {
        // Sources 0 and 1; node 2 waits on both, node 3 on 0 alone.
        let dag = MonotoneDag::new(vec![vec![], vec![], vec![0, 1], vec![0]]);
        let shared = Shared::<(), _>::new(&dag, 1, |_| Ok(true));
        // The sources are required work mid-evaluation, not candidates.
        for i in [0, 1] {
            shared.resolution[i].store(REQUIRED, Ordering::SeqCst);
            shared.eval_state[i].store(RUNNING, Ordering::SeqCst);
        }
        // Node 3 (one pending predecessor) beats node 2 (two pending).
        assert_eq!(shared.claim_speculation(), Some(3));
        // The claim is recorded, so the rescan moves on to node 2.
        assert_eq!(shared.claim_speculation(), Some(2));
        assert_eq!(shared.claim_speculation(), None);
        assert_eq!(shared.speculated.load(Ordering::Relaxed), 2);

        // Equal distance falls back to index order.
        let dag = MonotoneDag::new(vec![vec![], vec![0], vec![0]]);
        let shared = Shared::<(), _>::new(&dag, 1, |_| Ok(true));
        shared.resolution[0].store(REQUIRED, Ordering::SeqCst);
        shared.eval_state[0].store(RUNNING, Ordering::SeqCst);
        assert_eq!(shared.claim_speculation(), Some(1));
        assert_eq!(shared.claim_speculation(), Some(2));
    }

    /// A speculative claim on a node pruned after the claim is abandoned
    /// without invoking the evaluator at all.
    #[test]
    fn pruned_claim_is_abandoned_before_evaluating() {
        let dag = MonotoneDag::new(vec![vec![], vec![0]]);
        let evals = AtomicUsize::new(0);
        let shared = Shared::<(), _>::new(&dag, 1, |_| {
            evals.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        });
        // Simulate: worker claimed node 1 speculatively, then node 0's safe
        // verdict pruned node 1 before the evaluation started.
        shared.eval_state[1].store(RUNNING, Ordering::SeqCst);
        shared.resolution[1].store(PRUNED_SAFE, Ordering::SeqCst);
        shared.run_speculative(0, 1);
        assert_eq!(evals.load(Ordering::Relaxed), 0, "evaluator must not run");
        assert_eq!(shared.eval_state[1].load(Ordering::SeqCst), ABANDONED);
        assert_eq!(shared.abandoned.load(Ordering::Relaxed), 1);
        assert!(
            shared.results[1].lock().unwrap().is_none(),
            "no verdict may be parked for an abandoned claim"
        );
    }

    #[test]
    #[should_panic(expected = "topological index order")]
    fn rejects_forward_edges() {
        MonotoneDag::new(vec![vec![1], vec![]]);
    }
}
