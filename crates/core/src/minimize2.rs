//! MINIMIZE2 — distributing the `k+1` atoms across buckets
//! (Section 3.3.3, Algorithm 2).
//!
//! Formula (1) to minimize is `Pr(¬A ∧ ∧_{i∈[k]} ¬A_i | B) / Pr(A | B)`.
//! Because per-bucket permutations are independent, if `c_b` of the atoms
//! fall in bucket `b` and the consequent `A` falls in bucket `j`, the value
//! factorizes as
//!
//! ```text
//!   (n_j / n_j(s⁰_j)) · MINIMIZE1(j, c_j + 1) · ∏_{b ≠ j} MINIMIZE1(b, c_b)
//! ```
//!
//! (Section 3.3.2 shows the optimal `A` is the bucket's most frequent value:
//! one of the minimizing `c_j + 1` atoms mentions `s⁰_j` by Lemma 12, and
//! choosing it as `A` simultaneously maximizes the denominator `Pr(A|B)`.)
//!
//! ### Errata relative to the paper's pseudocode
//!
//! Algorithm 2 as printed has two defects, corrected here and documented in
//! `DESIGN.md`:
//!
//! 1. its base case (`i = |B|`) returns `rmin` (initialized `∞`)
//!    unconditionally — every value would be `∞`. The intended base case
//!    returns `1` when no atoms remain **and** `A` has been placed, else `∞`;
//! 2. the text invokes `MINIMIZE2(0, k, true)` while the parameter block says
//!    `a` is *initially false*; with `a = true` the consequent would never be
//!    placed. The correct initial flag is `a = false` (`A` not yet placed).

use std::borrow::Borrow;

use crate::minimize1::Minimize1Table;

/// Per-bucket inputs to the cross-bucket DP.
#[derive(Debug, Clone)]
pub struct BucketCosts {
    /// `m1[c]` for `c = 0..=k+1` (the `Minimize1Table` values).
    pub m1: Vec<f64>,
    /// `n_b / n_b(s⁰_b)` = `1 / Pr(A | B)` for the bucket's best consequent.
    pub rho: f64,
}

impl BucketCosts {
    /// Extracts costs from a built MINIMIZE1 table and the histogram ratio.
    pub fn new(table: &Minimize1Table, top_frequency: u64, n: u64) -> Self {
        debug_assert!(top_frequency > 0 && n >= top_frequency);
        Self {
            m1: table.values().to_vec(),
            rho: n as f64 / top_frequency as f64,
        }
    }
}

/// Where the witness atoms land, per bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketAllocation {
    /// Bucket index.
    pub bucket: usize,
    /// Number of antecedent atoms placed in this bucket.
    pub atoms: usize,
    /// Whether the consequent atom `A` lives in this bucket.
    pub has_consequent: bool,
}

/// Result of the cross-bucket minimization.
#[derive(Debug, Clone)]
pub struct Minimize2Result {
    /// The minimum of Formula (1) over all placements, `r_min ∈ [0, ∞)`.
    pub r_min: f64,
    /// A minimizing allocation (buckets with `atoms = 0` and no consequent
    /// are omitted).
    pub allocation: Vec<BucketAllocation>,
}

/// Runs the corrected Algorithm 2 over `buckets` with `k` antecedent atoms.
///
/// `buckets[b].m1` must cover `c = 0..=k+1`. Runs in `O(|B| · k²)` time and
/// `O(|B| · k)` space (the suffix table is kept for reconstruction).
///
/// Generic over owned or borrowed costs (`&[BucketCosts]`,
/// `&[&BucketCosts]`, …) so callers holding cached entries — the
/// [`DisclosureEngine`](crate::DisclosureEngine) hot path — need not clone a
/// `BucketCosts` per bucket per evaluation.
pub fn minimize2<B: Borrow<BucketCosts>>(buckets: &[B], k: usize) -> Minimize2Result {
    let suffix = SuffixTable::build(buckets, k);
    let r_min = suffix.get(0, k, false);
    let allocation = suffix.reconstruct(buckets, k);
    Minimize2Result { r_min, allocation }
}

/// The suffix DP `S(i, h, placed)`: minimum cost of buckets `i..`, given `h`
/// atoms remain to place and `placed` says whether `A` was already placed in
/// a bucket `< i`.
///
/// This is Algorithm 2's memo table (flag sense inverted to "already
/// placed"); it is exposed because the incremental engine composes it with a
/// prefix table for `O(k²)` what-if queries.
#[derive(Debug, Clone)]
pub struct SuffixTable {
    n_buckets: usize,
    k: usize,
    /// `s[(i, h, a)]`, dimensions `(n_buckets+1) × (k+1) × 2`.
    s: Vec<f64>,
}

impl SuffixTable {
    #[inline]
    fn idx(&self, i: usize, h: usize, placed: bool) -> usize {
        (i * (self.k + 1) + h) * 2 + usize::from(placed)
    }

    /// Builds the table bottom-up from the last bucket.
    pub fn build<B: Borrow<BucketCosts>>(buckets: &[B], k: usize) -> Self {
        let n_buckets = buckets.len();
        let mut table = Self {
            n_buckets,
            k,
            s: vec![f64::INFINITY; (n_buckets + 1) * (k + 1) * 2],
        };
        // Corrected base case: all atoms used and A placed.
        let base = table.idx(n_buckets, 0, true);
        table.s[base] = 1.0;
        for i in (0..n_buckets).rev() {
            for h in 0..=k {
                for placed in [false, true] {
                    let v = table.transition(buckets, i, h, placed);
                    let at = table.idx(i, h, placed);
                    table.s[at] = v;
                }
            }
        }
        table
    }

    /// One bucket's transition: try every split `c` of the remaining atoms
    /// and, when `A` is still unplaced, the option of hosting it here.
    fn transition<B: Borrow<BucketCosts>>(
        &self,
        buckets: &[B],
        i: usize,
        h: usize,
        placed: bool,
    ) -> f64 {
        let b: &BucketCosts = buckets[i].borrow();
        let mut best = f64::INFINITY;
        for c in 0..=h {
            // A not in this bucket.
            let skip = b.m1[c] * self.get(i + 1, h - c, placed);
            if skip < best {
                best = skip;
            }
            // A in this bucket (only if not placed earlier).
            if !placed {
                let host = b.m1[c + 1] * b.rho * self.get(i + 1, h - c, true);
                if host < best {
                    best = host;
                }
            }
        }
        best
    }

    /// Looks up `S(i, h, placed)`.
    #[inline]
    pub fn get(&self, i: usize, h: usize, placed: bool) -> f64 {
        self.s[self.idx(i, h, placed)]
    }

    /// Number of buckets the table was built for.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Walks the table to recover a minimizing allocation.
    fn reconstruct<B: Borrow<BucketCosts>>(
        &self,
        buckets: &[B],
        k: usize,
    ) -> Vec<BucketAllocation> {
        let mut out = Vec::new();
        let mut h = k;
        let mut placed = false;
        for (i, entry) in buckets.iter().enumerate().take(self.n_buckets) {
            let b: &BucketCosts = entry.borrow();
            let here = self.get(i, h, placed);
            if !here.is_finite() {
                break; // infeasible (cannot happen for valid inputs)
            }
            let mut chosen: Option<(usize, bool)> = None;
            'search: for c in 0..=h {
                let skip = b.m1[c] * self.get(i + 1, h - c, placed);
                if skip == here {
                    chosen = Some((c, false));
                    break 'search;
                }
                if !placed {
                    let host = b.m1[c + 1] * b.rho * self.get(i + 1, h - c, true);
                    if host == here {
                        chosen = Some((c, true));
                        break 'search;
                    }
                }
            }
            let (c, hosts) = chosen.expect("a transition produced the stored optimum");
            if c > 0 || hosts {
                out.push(BucketAllocation {
                    bucket: i,
                    atoms: c,
                    has_consequent: hosts,
                });
            }
            h -= c;
            if hosts {
                placed = true;
            }
        }
        out
    }
}

/// Exhaustive reference: enumerate every split of `k` atoms over buckets and
/// every consequent bucket. Exponential in `|B|` — tests only.
pub fn brute_force(buckets: &[BucketCosts], k: usize) -> f64 {
    fn rec(buckets: &[BucketCosts], i: usize, h: usize, placed: bool) -> f64 {
        if i == buckets.len() {
            return if h == 0 && placed { 1.0 } else { f64::INFINITY };
        }
        let mut best = f64::INFINITY;
        for c in 0..=h {
            let tail = rec(buckets, i + 1, h - c, placed);
            let v = buckets[i].m1[c] * tail;
            if v < best {
                best = v;
            }
            if !placed {
                let tail = rec(buckets, i + 1, h - c, true);
                let v = buckets[i].m1[c + 1] * buckets[i].rho * tail;
                if v < best {
                    best = v;
                }
            }
        }
        best
    }
    rec(buckets, 0, k, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize1::Minimize1Table;
    use crate::SensitiveHistogram;
    use wcbk_table::SValue;

    fn costs(vals: &[u32], kmax: usize) -> BucketCosts {
        let v: Vec<SValue> = vals.iter().map(|&x| SValue(x)).collect();
        let h = SensitiveHistogram::from_values(&v);
        let t = Minimize1Table::build(&h, kmax);
        BucketCosts::new(&t, h.frequency(0), h.n())
    }

    /// Figure 3: male {0,0,1,1,2}, female {0,0,3,4,5}.
    fn figure3(k: usize) -> Vec<BucketCosts> {
        vec![
            costs(&[0, 0, 1, 1, 2], k + 1),
            costs(&[0, 0, 3, 4, 5], k + 1),
        ]
    }

    #[test]
    fn k0_reduces_to_top_frequency() {
        // r_min = min_b (n_b - f0)/f0; disclosure = f0/n = 2/5 for both.
        let r = minimize2(&figure3(0), 0);
        assert!((r.r_min - 1.5).abs() < 1e-12); // (5-2)/2
        let disclosure = 1.0 / (1.0 + r.r_min);
        assert!((disclosure - 0.4).abs() < 1e-12);
    }

    #[test]
    fn k1_on_figure3_gives_two_thirds() {
        // Same-bucket negation-style implication: m1(2)·rho = (1/5)(5/2) = 1/2,
        // beating the cross-bucket 9/10. Disclosure = 1/(1+1/2) = 2/3.
        let r = minimize2(&figure3(1), 1);
        assert!((r.r_min - 0.5).abs() < 1e-12);
        assert!((1.0 / (1.0 + r.r_min) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cross_bucket_value_is_candidate() {
        // The paper's worked example: A in bucket 0, one atom in bucket 1:
        // m1_b1(1)·[m1_b0(1)·rho_0] = (3/5)·(3/5)·(5/2) = 9/10 → 10/19.
        // Confirm by excluding same-bucket options: restrict bucket 0's m1
        // so 2 atoms there are impossible.
        let mut b = figure3(1);
        b[0].m1[2] = f64::INFINITY;
        b[1].m1[2] = f64::INFINITY;
        let r = minimize2(&b, 1);
        assert!((r.r_min - 0.9).abs() < 1e-12);
        assert!((1.0 / (1.0 + r.r_min) - 10.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_style_cases() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![0, 0, 1], vec![2, 3]],
            vec![vec![0, 0, 0], vec![1, 2], vec![3, 3, 4, 5]],
            vec![vec![0], vec![1], vec![2]],
            vec![vec![0, 1, 2, 3], vec![0, 0, 1, 1], vec![5, 5, 5]],
        ];
        for bucket_vals in cases {
            for k in 0..=4usize {
                let buckets: Vec<BucketCosts> =
                    bucket_vals.iter().map(|v| costs(v, k + 1)).collect();
                let dp = minimize2(&buckets, k).r_min;
                let bf = brute_force(&buckets, k);
                assert!(
                    (dp - bf).abs() < 1e-12 || (!dp.is_finite() && !bf.is_finite()),
                    "buckets {bucket_vals:?} k={k}: dp={dp} bf={bf}"
                );
            }
        }
    }

    #[test]
    fn allocation_is_consistent_and_reproduces_value() {
        let buckets = figure3(3);
        let r = minimize2(&buckets, 3);
        let total_atoms: usize = r.allocation.iter().map(|a| a.atoms).sum();
        assert_eq!(total_atoms, 3);
        assert_eq!(r.allocation.iter().filter(|a| a.has_consequent).count(), 1);
        // Recompute the product from the allocation.
        let mut v = 1.0;
        for a in &r.allocation {
            let b = &buckets[a.bucket];
            if a.has_consequent {
                v *= b.m1[a.atoms + 1] * b.rho;
            } else {
                v *= b.m1[a.atoms];
            }
        }
        assert!((v - r.r_min).abs() < 1e-12);
    }

    #[test]
    fn single_bucket_all_values_equal_discloses_immediately() {
        let buckets = vec![costs(&[4, 4, 4], 1)];
        let r = minimize2(&buckets, 0);
        // m1(1) = 0, rho = 1 → r_min = 0 → disclosure 1.
        assert_eq!(r.r_min, 0.0);
        assert_eq!(1.0 / (1.0 + r.r_min), 1.0);
    }

    #[test]
    fn r_min_is_monotone_nonincreasing_in_k() {
        let mut prev = f64::INFINITY;
        for k in 0..=6 {
            let r = minimize2(&figure3(k), k).r_min;
            assert!(r <= prev + 1e-15, "k={k}");
            prev = r;
        }
    }

    #[test]
    fn suffix_table_exposes_consistent_entries() {
        let buckets = figure3(2);
        let s = SuffixTable::build(&buckets, 2);
        assert_eq!(s.n_buckets(), 2);
        // Full problem at (0, k, false).
        assert!((s.get(0, 2, false) - minimize2(&buckets, 2).r_min).abs() < 1e-15);
        // Base cases.
        assert_eq!(s.get(2, 0, true), 1.0);
        assert!(!s.get(2, 0, false).is_finite());
        assert!(!s.get(2, 1, true).is_finite());
    }
}
