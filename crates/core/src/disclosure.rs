//! Maximum disclosure (Definition 6) in polynomial time, with witnesses.

use wcbk_logic::{Atom, Knowledge, SimpleImplication};
use wcbk_table::SValue;

use crate::minimize1::Minimize1Table;
use crate::minimize2::{minimize2, BucketAllocation, BucketCosts};
use crate::{Bucketization, CoreError, SensitiveHistogram};

/// A worst-case attacker: `k` simple implications `A_i → A` sharing the
/// consequent `A` (the Theorem 9 normal form), reconstructed from the DP.
///
/// The number of *distinct* antecedents can be less than `k` when the
/// optimum pads with atoms beyond a bucket's distinct values (ruling out a
/// value that does not occur adds nothing); `L^k` permits repeating a
/// conjunct, so the witness still lies in `L^k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisclosureWitness {
    /// The consequent atom `A = (t_p[S] = s)` whose probability is maximized.
    pub consequent: Atom,
    /// The antecedent atoms `A_i`, each forming the implication `A_i → A`.
    pub antecedents: Vec<Atom>,
}

impl DisclosureWitness {
    /// The witness as a formula of `L^k_basic`.
    pub fn knowledge(&self) -> Knowledge {
        Knowledge::from_simple(
            self.antecedents
                .iter()
                .map(|&a| SimpleImplication::new(a, self.consequent)),
        )
    }

    /// Number of (distinct) implications in the witness.
    pub fn k(&self) -> usize {
        self.antecedents.len()
    }
}

/// The result of a maximum-disclosure computation.
#[derive(Debug, Clone)]
pub struct DisclosureResult {
    /// `max_{t,s,φ∈L^k} Pr(t[S]=s | B ∧ φ)` — the maximum disclosure.
    pub value: f64,
    /// The minimized Formula (1); `value = 1 / (1 + r_min)`.
    pub r_min: f64,
    /// The attacker power bound `k` used.
    pub k: usize,
    /// A worst-case attacker achieving `value`.
    pub witness: DisclosureWitness,
}

/// Computes the maximum disclosure of `bucketization` with respect to
/// `L^k_basic` in `O(|B|·k³)` time (Theorems 9 + Lemma 12 + Algorithms 1–2).
///
/// ```
/// use wcbk_core::{max_disclosure, Bucketization};
/// use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
///
/// let table = hospital_table();
/// let buckets = Bucketization::from_grouping(&table, hospital_bucket_of)?;
/// // One basic implication pushes the Figure 3 worst case to 2/3.
/// let report = max_disclosure(&buckets, 1)?;
/// assert!((report.value - 2.0 / 3.0).abs() < 1e-12);
/// // The witness is a real attacker: k implications sharing a consequent.
/// assert_eq!(report.witness.k(), 1);
/// # Ok::<(), wcbk_core::CoreError>(())
/// ```
pub fn max_disclosure(
    bucketization: &Bucketization,
    k: usize,
) -> Result<DisclosureResult, CoreError> {
    let tables: Vec<Minimize1Table> = bucketization
        .buckets()
        .iter()
        .map(|b| Minimize1Table::build(b.histogram(), k + 1))
        .collect();
    let costs: Vec<BucketCosts> = bucketization
        .buckets()
        .iter()
        .zip(&tables)
        .map(|(b, t)| BucketCosts::new(t, b.histogram().frequency(0), b.histogram().n()))
        .collect();
    let result = minimize2(&costs, k);
    let table_refs: Vec<&Minimize1Table> = tables.iter().collect();
    let witness = build_witness(bucketization, &table_refs, &result.allocation);
    Ok(DisclosureResult {
        value: 1.0 / (1.0 + result.r_min),
        r_min: result.r_min,
        k,
        witness,
    })
}

/// Reconstructs the Lemma 12 witness atoms from a MINIMIZE2 allocation.
pub(crate) fn build_witness(
    bucketization: &Bucketization,
    tables: &[&Minimize1Table],
    allocation: &[BucketAllocation],
) -> DisclosureWitness {
    let mut consequent: Option<Atom> = None;
    let mut antecedents: Vec<Atom> = Vec::new();
    for alloc in allocation {
        let bucket = bucketization.bucket(alloc.bucket);
        let hist = bucket.histogram();
        let atom_count = alloc.atoms + usize::from(alloc.has_consequent);
        let profile = tables[alloc.bucket]
            .profile(atom_count)
            .expect("allocation chose a feasible bucket load");
        let mut spare = spare_values(hist, bucketization.domain_size());
        for (pi, &ki) in profile.iter().enumerate() {
            let person = bucket.members()[pi];
            for rank in 0..ki {
                let value = match hist.value_at(rank) {
                    Some(v) => v,
                    // Rank beyond the distinct values: pick an out-of-bucket
                    // domain value (its negation holds vacuously), or drop the
                    // pad entirely if the domain has none to spare.
                    None => match spare.next() {
                        Some(v) => v,
                        None => continue,
                    },
                };
                let atom = Atom::new(person, value);
                if alloc.has_consequent && pi == 0 && rank == 0 {
                    consequent = Some(atom);
                } else {
                    antecedents.push(atom);
                }
            }
        }
    }
    let consequent = consequent.expect("exactly one allocation hosts the consequent");
    DisclosureWitness {
        consequent,
        antecedents,
    }
}

/// Domain values that do not occur in `hist`, in code order.
fn spare_values(hist: &SensitiveHistogram, domain_size: u32) -> impl Iterator<Item = SValue> + '_ {
    let present: std::collections::HashSet<SValue> = hist.values_desc().iter().copied().collect();
    (0..domain_size)
        .map(SValue)
        .filter(move |v| !present.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
    use wcbk_worlds::inference::atom_probability_given;
    use wcbk_worlds::{BucketSpec, WorldSpace};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    fn to_space(b: &Bucketization) -> WorldSpace {
        WorldSpace::new(
            b.to_parts()
                .into_iter()
                .map(|(m, v)| BucketSpec::new(m, v))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn k0_is_max_frequency_ratio() {
        let b = figure3();
        let r = max_disclosure(&b, 0).unwrap();
        assert!((r.value - 0.4).abs() < 1e-12);
        assert!(r.witness.antecedents.is_empty());
    }

    #[test]
    fn k1_on_figure3_is_two_thirds_not_ten_nineteenths() {
        // The paper's prose claims 10/19; its own framework yields 2/3 via
        // the negation-equivalent implication within the male bucket. See
        // DESIGN.md ("errata").
        let b = figure3();
        let r = max_disclosure(&b, 1).unwrap();
        assert!((r.value - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disclosure_is_monotone_in_k_and_reaches_one() {
        let b = figure3();
        let mut prev = 0.0;
        for k in 0..=6 {
            let r = max_disclosure(&b, k).unwrap();
            assert!(r.value >= prev - 1e-15, "k={k}");
            prev = r.value;
        }
        // Male bucket has 3 distinct values: k = 2 negations suffice for 1.
        assert!((max_disclosure(&b, 2).unwrap().value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn witness_achieves_dp_value_exactly() {
        let b = figure3();
        let space = to_space(&b);
        for k in 0..=4 {
            let r = max_disclosure(&b, k).unwrap();
            let w = &r.witness;
            let p = atom_probability_given(&space, w.consequent, &w.knowledge())
                .unwrap()
                .expect("witness knowledge is consistent with B");
            assert!(
                (p.to_f64() - r.value).abs() < 1e-9,
                "k={k}: witness {} vs dp {}",
                p.to_f64(),
                r.value
            );
        }
    }

    #[test]
    fn witness_k_is_bounded_by_k() {
        let b = figure3();
        for k in 0..=6 {
            let r = max_disclosure(&b, k).unwrap();
            assert!(r.witness.k() <= k, "k={k}");
        }
    }

    #[test]
    fn witness_consequent_is_most_frequent_value_of_its_bucket() {
        let b = figure3();
        let r = max_disclosure(&b, 2).unwrap();
        let w = &r.witness;
        let bi = b.bucket_of(w.consequent.person).unwrap();
        assert_eq!(
            b.bucket(bi).histogram().value_at(0),
            Some(w.consequent.value)
        );
    }

    #[test]
    fn single_bucket_uniform_values() {
        // One bucket {0,1,2,3}: k=0 → 1/4; k=1 → 1/3; k=2 → 1/2; k=3 → 1.
        let table = {
            use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};
            let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
            let mut tb = TableBuilder::new(schema);
            for v in ["a", "b", "c", "d"] {
                tb.push_row(&[v]).unwrap();
            }
            tb.build()
        };
        let b = Bucketization::from_grouping(&table, |_| ()).unwrap();
        for (k, expected) in [(0, 0.25), (1, 1.0 / 3.0), (2, 0.5), (3, 1.0)] {
            let r = max_disclosure(&b, k).unwrap();
            assert!((r.value - expected).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn witness_atoms_reference_real_persons() {
        let b = figure3();
        let r = max_disclosure(&b, 3).unwrap();
        for atom in std::iter::once(&r.witness.consequent).chain(&r.witness.antecedents) {
            assert!(atom.person.index() < 10);
            assert!(b.bucket_of(atom.person).is_some());
        }
        // Antecedents are distinct atoms and none equals the consequent.
        let mut set = std::collections::HashSet::new();
        for a in &r.witness.antecedents {
            assert!(set.insert(*a), "duplicate antecedent {a}");
            assert_ne!(*a, r.witness.consequent);
        }
    }

    #[test]
    fn padded_witness_still_achieves_value() {
        // Bucket of two identical values forces padding beyond d=1 for k=2:
        // the DP reaches certainty already at k=0; witnesses stay valid.
        let table = {
            use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};
            let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
            let mut tb = TableBuilder::new(schema);
            tb.push_row(&["x"]).unwrap();
            tb.push_row(&["x"]).unwrap();
            tb.build()
        };
        let b = Bucketization::from_grouping(&table, |_| ()).unwrap();
        let r = max_disclosure(&b, 2).unwrap();
        assert_eq!(r.value, 1.0);
        let space = to_space(&b);
        let p = atom_probability_given(&space, r.witness.consequent, &r.witness.knowledge())
            .unwrap()
            .unwrap();
        assert_eq!(p.to_f64(), 1.0);
    }

    #[test]
    fn tuple_of_ten_distinct_values_needs_nine_implications() {
        let table = {
            use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};
            let schema = Schema::new(vec![Attribute::new("D", AttributeKind::Sensitive)]).unwrap();
            let mut tb = TableBuilder::new(schema);
            for i in 0..10 {
                tb.push_row(&[format!("v{i}")]).unwrap();
            }
            tb.build()
        };
        let b = Bucketization::from_grouping(&table, |_| ()).unwrap();
        for k in 0..9 {
            assert!(max_disclosure(&b, k).unwrap().value < 1.0, "k={k}");
        }
        assert!((max_disclosure(&b, 9).unwrap().value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bucketization_cannot_be_built() {
        let table = hospital_table();
        assert!(matches!(
            Bucketization::from_partition(&table, &[]),
            Err(CoreError::EmptyBucketization)
        ));
    }
}
