//! MINIMIZE1 — minimizing `Pr(∧_{i∈[k]} ¬A_i | B)` within one bucket
//! (Section 3.3.1, Algorithm 1, Lemma 12).
//!
//! A set of `k` atoms inside bucket `b` is characterized by a *profile*
//! `(l, k_0 ≥ k_1 ≥ … ≥ k_{l-1})`: `l` distinct persons, the `i`-th carrying
//! `k_i` atoms. Lemma 12 says the minimum over all atom choices for a fixed
//! profile is attained by giving person `i` the `k_i` **most frequent**
//! values, yielding the closed form
//!
//! ```text
//!   ∏_{i∈[l]} (n_b − i − Σ_{j∈[k_i]} n_b(s^j_b)) / (n_b − i)
//! ```
//!
//! (each factor clamped at 0 — a non-positive numerator means the conjunction
//! of negations is impossible, i.e. certain disclosure). MINIMIZE1 then
//! minimizes over profiles.
//!
//! Two implementations are provided:
//!
//! * [`paper_recursion`] — a direct transcription of Algorithm 1 (exponential
//!   without memoization; used as a cross-check and in the benches that
//!   demonstrate why memoization matters);
//! * [`Minimize1Table`] — an `O(k³)`-time/-space dynamic program over states
//!   `(i, cap, r)` using the refactored recurrence
//!   `h(i,cap,r) = min( h(i,cap−1,r), factor(i,cap)·h(i+1,cap,r−cap) )`,
//!   which shaves the `O(k)` inner loop of the memoized Algorithm 1.

use crate::SensitiveHistogram;

/// The Lemma 12 per-person factor: the conditional probability that the
/// `i`-th constrained person avoids the top `c` values, given the previous
/// `i` constrained persons avoided their (superset) targets.
///
/// Returns 0 when the person cannot avoid them (certain disclosure branch)
/// and `None` when `i ≥ n_b` (no `i`-th person exists).
#[inline]
pub fn factor(hist: &SensitiveHistogram, i: usize, c: usize) -> Option<f64> {
    let n = hist.n();
    if (i as u64) >= n {
        return None;
    }
    let avail = n - i as u64;
    let blocked = hist.top_sum(c);
    let free = (n as i128) - (i as i128) - (blocked as i128);
    if free <= 0 {
        Some(0.0)
    } else {
        Some(free as f64 / avail as f64)
    }
}

/// Direct transcription of the paper's Algorithm 1 (plus the implicit
/// feasibility guard `i < n_b`). Exponential in `k` — test/bench use only.
///
/// `MINIMIZE1(b, i, k̂_i, k̂)`: `i` is the next person index, `k̂_i` bounds
/// `k_i` (descending profiles), `k̂` is the number of unplaced atoms.
pub fn paper_recursion(hist: &SensitiveHistogram, i: usize, cap_i: usize, khat: usize) -> f64 {
    if khat == 0 {
        return 1.0;
    }
    let mut pmin = f64::INFINITY;
    for k_i in 1..=cap_i.min(khat) {
        let Some(f) = factor(hist, i, k_i) else {
            // No i-th person: no profile with this many persons exists.
            break;
        };
        let p = f * paper_recursion(hist, i + 1, k_i, khat - k_i);
        pmin = pmin.min(p);
    }
    pmin
}

/// The memoized MINIMIZE1 tables for one bucket: `m1(c)` for `c = 0..=kmax`.
///
/// `m1(c)` is the minimum of `Pr(∧_{i∈[c]} ¬A_i | B)` over all `c`-atom sets
/// within the bucket. The table also supports reconstructing a minimizing
/// profile ([`Minimize1Table::profile`]), from which the witness atoms of
/// Lemma 12 follow.
#[derive(Debug, Clone)]
pub struct Minimize1Table {
    kmax: usize,
    n: u64,
    /// `h[(i, cap, r)]` with dimensions `(kmax+2) × (kmax+1) × (kmax+1)`.
    h: Vec<f64>,
    /// `m1[c] = h(0, c, c)`.
    m1: Vec<f64>,
}

impl Minimize1Table {
    /// Builds the DP table for `hist`, supporting up to `kmax` atoms.
    pub fn build(hist: &SensitiveHistogram, kmax: usize) -> Self {
        let persons = kmax + 2; // i ∈ 0..=kmax+1
        let caps = kmax + 1; // cap ∈ 0..=kmax
        let rs = kmax + 1; // r ∈ 0..=kmax
        let idx = |i: usize, cap: usize, r: usize| (i * caps + cap) * rs + r;
        let mut h = vec![f64::INFINITY; persons * caps * rs];

        // r = 0: empty profile, probability 1 (for every i, cap).
        for i in 0..persons {
            for cap in 0..caps {
                h[idx(i, cap, 0)] = 1.0;
            }
        }
        // Fill persons from the back: h(i, ·, ·) depends on h(i+1, ·, ·).
        for i in (0..=kmax).rev() {
            for r in 1..=kmax {
                for cap in 1..=kmax {
                    // Option 1: all persons from i on take < cap atoms.
                    let mut best = h[idx(i, cap - 1, r)];
                    // Option 2: person i takes exactly `cap` atoms.
                    if cap <= r {
                        if let Some(f) = factor_cached(hist, i, cap) {
                            let tail = h[idx(i + 1, cap, r - cap)];
                            let take = f * tail;
                            if take < best {
                                best = take;
                            }
                        }
                    }
                    h[idx(i, cap, r)] = best;
                }
            }
        }
        let m1 = (0..=kmax).map(|c| h[idx(0, c, c)]).collect();
        Self {
            kmax,
            n: hist.n(),
            h,
            m1,
        }
    }

    #[inline]
    fn idx(&self, i: usize, cap: usize, r: usize) -> usize {
        (i * (self.kmax + 1) + cap) * (self.kmax + 1) + r
    }

    /// `m1(c)`: the minimized probability for `c` atoms in this bucket.
    #[inline]
    pub fn m1(&self, c: usize) -> f64 {
        self.m1[c]
    }

    /// The whole `m1` vector, indices `0..=kmax`.
    pub fn values(&self) -> &[f64] {
        &self.m1
    }

    /// Largest supported atom count.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// Reconstructs a minimizing profile `k_0 ≥ k_1 ≥ …` for `c` atoms, or
    /// `None` if `m1(c)` is infeasible (`∞`). Ties prefer smaller `k_i`
    /// (spreading atoms over more persons), which keeps witness atoms within
    /// the bucket's distinct values whenever possible.
    pub fn profile(&self, c: usize) -> Option<Vec<usize>> {
        if c == 0 {
            return Some(Vec::new());
        }
        if !self.m1[c].is_finite() {
            return None;
        }
        let mut out = Vec::new();
        let (mut i, mut cap, mut r) = (0usize, c, c);
        while r > 0 {
            let here = self.h[self.idx(i, cap, r)];
            // Mirror the fill order: the reduce branch wins ties.
            if cap >= 2 && self.h[self.idx(i, cap - 1, r)] <= here {
                cap -= 1;
                continue;
            }
            debug_assert!(cap <= r, "take branch requires cap <= r");
            out.push(cap);
            r -= cap;
            i += 1;
        }
        debug_assert!((out.len() as u64) <= self.n);
        Some(out)
    }
}

#[inline]
fn factor_cached(hist: &SensitiveHistogram, i: usize, c: usize) -> Option<f64> {
    factor(hist, i, c)
}

/// Brute-force minimum of `Pr(∧ ¬A_i | B)` by enumerating *all* profiles and
/// applying the Lemma 12 closed form — an independent oracle for tests.
pub fn brute_force_profiles(hist: &SensitiveHistogram, k: usize) -> f64 {
    fn rec(hist: &SensitiveHistogram, i: usize, cap: usize, r: usize) -> f64 {
        if r == 0 {
            return 1.0;
        }
        let mut best = f64::INFINITY;
        for c in 1..=cap.min(r) {
            if let Some(f) = factor(hist, i, c) {
                best = best.min(f * rec(hist, i + 1, c, r - c));
            }
        }
        best
    }
    rec(hist, 0, k, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::SValue;

    fn hist(vals: &[u32]) -> SensitiveHistogram {
        let v: Vec<SValue> = vals.iter().map(|&x| SValue(x)).collect();
        SensitiveHistogram::from_values(&v)
    }

    /// Figure 3 male bucket: {Flu:2, LungCancer:2, Mumps:1}.
    fn male() -> SensitiveHistogram {
        hist(&[0, 0, 1, 1, 2])
    }

    #[test]
    fn factors_match_lemma12() {
        let h = male();
        // Person 0 avoiding the top value: (5-0-2)/5 = 3/5.
        assert_eq!(factor(&h, 0, 1), Some(0.6));
        // Person 1 avoiding the top value: (5-1-2)/4 = 1/2.
        assert_eq!(factor(&h, 1, 1), Some(0.5));
        // Person 0 avoiding top two: (5-0-4)/5 = 1/5.
        assert_eq!(factor(&h, 0, 2), Some(0.2));
        // Person 0 avoiding everything: 0.
        assert_eq!(factor(&h, 0, 3), Some(0.0));
        // Sixth person does not exist.
        assert_eq!(factor(&h, 5, 1), None);
    }

    #[test]
    fn m1_base_cases() {
        let t = Minimize1Table::build(&male(), 3);
        assert_eq!(t.m1(0), 1.0);
        // One atom: best is ruling out the most frequent value: 3/5.
        assert!((t.m1(1) - 0.6).abs() < 1e-12);
        // Two atoms: min(1/5 [one person, top-2], 3/5·1/2 [two persons]) = 1/5.
        assert!((t.m1(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn table_matches_paper_recursion() {
        for vals in [
            vec![0u32, 0, 1, 1, 2],
            vec![0, 0, 0, 0],
            vec![0, 1, 2, 3, 4],
            vec![0, 0, 0, 1, 1, 2, 3],
            vec![7],
        ] {
            let h = hist(&vals);
            let kmax = 6;
            let t = Minimize1Table::build(&h, kmax);
            for c in 0..=kmax {
                let direct = paper_recursion(&h, 0, c, c);
                let direct = if c == 0 { 1.0 } else { direct };
                if direct.is_finite() {
                    assert!(
                        (t.m1(c) - direct).abs() < 1e-12,
                        "vals {vals:?} c={c}: table {} vs paper {direct}",
                        t.m1(c)
                    );
                } else {
                    assert!(!t.m1(c).is_finite(), "vals {vals:?} c={c}");
                }
            }
        }
    }

    #[test]
    fn table_matches_brute_force_profiles() {
        for vals in [
            vec![0u32, 0, 1, 2],
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1],
            vec![0, 0, 1, 1, 2, 2, 3],
        ] {
            let h = hist(&vals);
            let t = Minimize1Table::build(&h, 5);
            for c in 0..=5 {
                let bf = brute_force_profiles(&h, c);
                if bf.is_finite() {
                    assert!((t.m1(c) - bf).abs() < 1e-12, "vals {vals:?} c={c}");
                } else {
                    assert!(!t.m1(c).is_finite());
                }
            }
        }
    }

    #[test]
    fn m1_is_monotone_nonincreasing_in_c() {
        let h = hist(&[0, 0, 0, 1, 1, 2, 3, 3]);
        let t = Minimize1Table::build(&h, 8);
        for c in 1..=8 {
            assert!(t.m1(c) <= t.m1(c - 1) + 1e-15, "c={c}");
        }
    }

    #[test]
    fn profile_reconstruction_reproduces_value() {
        let h = hist(&[0, 0, 0, 1, 1, 2, 3]);
        let t = Minimize1Table::build(&h, 6);
        for c in 0..=6 {
            let Some(profile) = t.profile(c) else {
                continue;
            };
            assert_eq!(profile.iter().sum::<usize>(), c);
            assert!(profile.windows(2).all(|w| w[0] >= w[1]), "descending");
            // Recompute the closed form from the profile.
            let mut p = 1.0;
            for (i, &ki) in profile.iter().enumerate() {
                p *= factor(&h, i, ki).expect("profile persons exist");
            }
            assert!((p - t.m1(c)).abs() < 1e-12, "c={c} profile {profile:?}");
        }
    }

    #[test]
    fn single_tuple_bucket_discloses_fully() {
        let h = hist(&[9]);
        let t = Minimize1Table::build(&h, 4);
        // One person; any atom rules out the only value: probability 0.
        for c in 1..=4 {
            assert_eq!(t.m1(c), 0.0, "c={c}");
        }
        assert_eq!(t.profile(2), Some(vec![2]));
    }

    #[test]
    fn uniform_bucket_values() {
        // {0,1,2} uniform: m1(1) = 2/3, m1(2) = min(1/3, 2/3·1/2) = 1/3,
        // m1(3) = min(0, ..) = 0.
        let h = hist(&[0, 1, 2]);
        let t = Minimize1Table::build(&h, 3);
        assert!((t.m1(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.m1(2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.m1(3), 0.0);
    }

    #[test]
    fn profile_prefers_spreading_on_ties() {
        // {0,1,2} with c=2: one-person top-2 = 1/3 vs two persons 2/3·1/2 =
        // 1/3 — tie; the reduce branch (spreading) must win.
        let h = hist(&[0, 1, 2]);
        let t = Minimize1Table::build(&h, 2);
        assert_eq!(t.profile(2), Some(vec![1, 1]));
    }
}
