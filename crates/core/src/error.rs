//! Error type for the core algorithms.

use std::fmt;

/// Errors produced by bucketization construction and the disclosure
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A bucketization must contain at least one bucket.
    EmptyBucketization,
    /// Buckets must contain at least one tuple.
    EmptyBucket(usize),
    /// A tuple appeared in two buckets of the same bucketization.
    OverlappingBuckets {
        /// The duplicated tuple's row index.
        tuple: u32,
    },
    /// A partition referenced a tuple outside the table.
    TupleOutOfRange {
        /// The offending row index.
        tuple: u32,
        /// The table's row count.
        n_rows: usize,
    },
    /// The threshold `c` must lie in `(0, 1]`.
    InvalidThreshold(f64),
    /// Bucket index out of range.
    BucketOutOfRange {
        /// The requested bucket index.
        index: usize,
        /// Number of buckets.
        len: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyBucketization => write!(f, "bucketization has no buckets"),
            CoreError::EmptyBucket(i) => write!(f, "bucket {i} is empty"),
            CoreError::OverlappingBuckets { tuple } => {
                write!(f, "tuple t{tuple} appears in more than one bucket")
            }
            CoreError::TupleOutOfRange { tuple, n_rows } => {
                write!(
                    f,
                    "tuple t{tuple} out of range for table with {n_rows} rows"
                )
            }
            CoreError::InvalidThreshold(c) => {
                write!(f, "threshold c = {c} must lie in (0, 1]")
            }
            CoreError::BucketOutOfRange { index, len } => {
                write!(f, "bucket index {index} out of range ({len} buckets)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_specifics() {
        assert!(CoreError::EmptyBucket(3).to_string().contains('3'));
        assert!(CoreError::OverlappingBuckets { tuple: 7 }
            .to_string()
            .contains("t7"));
        assert!(CoreError::InvalidThreshold(1.5).to_string().contains("1.5"));
    }
}
