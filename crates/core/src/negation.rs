//! Worst case for the negated-atom sublanguage (the ℓ-diversity model).
//!
//! ℓ-diversity's implicit unit of knowledge is the negated atom
//! `¬ t_p[S] = s`. The worst `k` negations concentrate on a single person and
//! rule out the `k` next-most-frequent values of that person's bucket, giving
//!
//! ```text
//!   max_b  n_b(s⁰_b) / (n_b − Σ_{j=1..min(k, d_b−1)} n_b(s^j_b))
//! ```
//!
//! This is the dotted curve of the paper's Figure 5, always dominated by the
//! basic-implication worst case (negations are expressible as implications,
//! Section 2.2). Optimality of the single-person/next-frequent choice is
//! validated against exhaustive search in the property-test suite.

use wcbk_logic::{BasicImplication, Knowledge};
use wcbk_table::{SValue, TupleId};

use crate::{Bucketization, CoreError};

/// Result of the negated-atom worst-case analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct NegationResult {
    /// The maximum disclosure over conjunctions of at most `k` negated atoms.
    pub value: f64,
    /// The attacker power bound `k` used.
    pub k: usize,
    /// The targeted bucket index.
    pub bucket: usize,
    /// The targeted person (first member of the worst bucket).
    pub person: TupleId,
    /// The predicted value (the bucket's most frequent).
    pub predicted: SValue,
    /// The values ruled out by the worst-case negations
    /// (`min(k, d_b − 1)` of them).
    pub ruled_out: Vec<SValue>,
}

impl NegationResult {
    /// The worst-case negations as basic implications
    /// (`¬ t_p[S]=s ≡ (t_p[S]=s → t_p[S]=predicted)`).
    pub fn knowledge(&self) -> Knowledge {
        Knowledge::from_implications(self.ruled_out.iter().map(|&s| {
            BasicImplication::negated_atom(self.person, s, self.predicted)
                .expect("ruled-out values differ from the predicted value")
        }))
    }
}

/// Maximum disclosure of `bucketization` against `k` negated atoms.
pub fn negation_max_disclosure(
    bucketization: &Bucketization,
    k: usize,
) -> Result<NegationResult, CoreError> {
    let mut best: Option<NegationResult> = None;
    for (bi, bucket) in bucketization.buckets().iter().enumerate() {
        let h = bucket.histogram();
        let d = h.distinct();
        let j_max = k.min(d.saturating_sub(1));
        // Denominator: n − (frequencies of ranks 1..=j_max)
        //            = n − (top_sum(j_max+1) − f0).
        let denom = h.n() - (h.top_sum(j_max + 1) - h.frequency(0));
        debug_assert!(denom >= h.frequency(0));
        let value = h.frequency(0) as f64 / denom as f64;
        if best.as_ref().is_none_or(|b| value > b.value) {
            best = Some(NegationResult {
                value,
                k,
                bucket: bi,
                person: bucket.members()[0],
                predicted: h.value_at(0).expect("bucket is non-empty"),
                ruled_out: (1..=j_max)
                    .map(|rank| h.value_at(rank).expect("rank < distinct"))
                    .collect(),
            });
        }
    }
    best.ok_or(CoreError::EmptyBucketization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    #[test]
    fn k0_is_top_frequency_ratio() {
        let r = negation_max_disclosure(&figure3(), 0).unwrap();
        assert!((r.value - 0.4).abs() < 1e-12);
        assert!(r.ruled_out.is_empty());
    }

    #[test]
    fn k1_rules_out_second_most_frequent() {
        // Male bucket {2,2,1}: 2/(5-2) = 2/3 beats female {2,1,1,1}: 2/(5-1).
        let r = negation_max_disclosure(&figure3(), 1).unwrap();
        assert!((r.value - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.bucket, 0);
        assert_eq!(r.ruled_out.len(), 1);
    }

    #[test]
    fn reaches_one_at_distinct_minus_one() {
        // Male bucket d=3: k=2 negations give certainty.
        let r = negation_max_disclosure(&figure3(), 2).unwrap();
        assert!((r.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_negations_saturate() {
        let r2 = negation_max_disclosure(&figure3(), 2).unwrap();
        let r9 = negation_max_disclosure(&figure3(), 9).unwrap();
        assert_eq!(r2.value, r9.value);
        assert_eq!(r9.ruled_out.len(), 2); // capped at d−1
    }

    #[test]
    fn monotone_in_k() {
        let b = figure3();
        let mut prev = 0.0;
        for k in 0..=5 {
            let v = negation_max_disclosure(&b, k).unwrap().value;
            assert!(v >= prev - 1e-15);
            prev = v;
        }
    }

    #[test]
    fn dominated_by_implications() {
        let b = figure3();
        for k in 0..=5 {
            let neg = negation_max_disclosure(&b, k).unwrap().value;
            let imp = crate::max_disclosure(&b, k).unwrap().value;
            assert!(imp >= neg - 1e-12, "k={k}: imp {imp} < neg {neg}");
        }
    }

    #[test]
    fn knowledge_encoding_is_wellformed() {
        let r = negation_max_disclosure(&figure3(), 2).unwrap();
        let knowledge = r.knowledge();
        assert_eq!(knowledge.k(), 2);
        for imp in knowledge.implications() {
            let s = imp.as_simple().unwrap();
            assert!(s.is_negation());
            assert_eq!(s.antecedent.person, r.person);
        }
    }
}
