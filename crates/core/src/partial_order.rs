//! The partial order `⪯` on bucketizations (Section 3.4) and merging.
//!
//! `B ⪯ B′` iff every bucket of `B′` is a union of buckets of `B` — `B` is
//! *finer*, `B′` *coarser*. The bottom element puts one tuple per bucket, the
//! top puts all tuples in one bucket. Theorem 14 (monotonicity): coarsening
//! never increases maximum disclosure, which is what makes lattice search
//! and binary search for minimal (c,k)-safe bucketizations sound.

use std::collections::HashMap;

use wcbk_table::TupleId;

use crate::{Bucket, Bucketization, CoreError, SensitiveHistogram};

/// Whether `fine ⪯ coarse`: the two cover the same tuples and every bucket of
/// `coarse` is a union of buckets of `fine`.
pub fn refines(fine: &Bucketization, coarse: &Bucketization) -> bool {
    let mut coarse_of: HashMap<TupleId, usize> = HashMap::new();
    for (ci, bucket) in coarse.buckets().iter().enumerate() {
        for &t in bucket.members() {
            coarse_of.insert(t, ci);
        }
    }
    let mut fine_count = 0usize;
    for bucket in fine.buckets() {
        let mut target: Option<usize> = None;
        for &t in bucket.members() {
            fine_count += 1;
            match (coarse_of.get(&t), target) {
                (None, _) => return false, // tuple missing from coarse
                (Some(&ci), None) => target = Some(ci),
                (Some(&ci), Some(prev)) if ci != prev => return false, // split
                _ => {}
            }
        }
    }
    // Same universe: counts match (memberships already checked one way).
    fine_count == coarse_of.len()
}

/// Merges buckets `i` and `j` (`i ≠ j`) into one, producing a coarser
/// bucketization (an immediate step up the partial order when `i`, `j` are
/// the only buckets merged).
pub fn merge_buckets(b: &Bucketization, i: usize, j: usize) -> Result<Bucketization, CoreError> {
    let len = b.n_buckets();
    for &x in &[i, j] {
        if x >= len {
            return Err(CoreError::BucketOutOfRange { index: x, len });
        }
    }
    if i == j {
        return Ok(b.clone());
    }
    let (lo, hi) = (i.min(j), i.max(j));
    let mut buckets: Vec<Bucket> = Vec::with_capacity(len - 1);
    for (bi, bucket) in b.buckets().iter().enumerate() {
        if bi == hi {
            continue;
        }
        if bi == lo {
            let merged_members: Vec<TupleId> = bucket
                .members()
                .iter()
                .chain(b.bucket(hi).members())
                .copied()
                .collect();
            let merged_hist = merge_histograms(bucket.histogram(), b.bucket(hi).histogram());
            buckets.push(Bucket::from_histogram(merged_members, merged_hist));
        } else {
            buckets.push(bucket.clone());
        }
    }
    Bucketization::from_buckets(buckets, b.domain_size())
}

/// Collapses everything into a single bucket — the top element `B⊤`.
pub fn merge_all(b: &Bucketization) -> Result<Bucketization, CoreError> {
    let mut members: Vec<TupleId> = Vec::new();
    let mut hist: Option<SensitiveHistogram> = None;
    for bucket in b.buckets() {
        members.extend_from_slice(bucket.members());
        hist = Some(match hist {
            None => bucket.histogram().clone(),
            Some(h) => merge_histograms(&h, bucket.histogram()),
        });
    }
    let hist = hist.ok_or(CoreError::EmptyBucketization)?;
    Bucketization::from_buckets(vec![Bucket::from_histogram(members, hist)], b.domain_size())
}

/// Adds two histograms (the sensitive multiset of a merged bucket).
pub fn merge_histograms(a: &SensitiveHistogram, b: &SensitiveHistogram) -> SensitiveHistogram {
    let mut counts: HashMap<wcbk_table::SValue, u64> = HashMap::new();
    for h in [a, b] {
        for (v, c) in h.iter_counts() {
            *counts.entry(v).or_insert(0) += c;
        }
    }
    SensitiveHistogram::from_counts(counts)
}

/// A chain of bucketizations from `b` up to the single-bucket top element,
/// merging the first two buckets at each step. Useful for binary search
/// demonstrations (each step is a strict coarsening).
pub fn coarsening_chain(b: &Bucketization) -> Result<Vec<Bucketization>, CoreError> {
    let mut chain = vec![b.clone()];
    let mut current = b.clone();
    while current.n_buckets() > 1 {
        current = merge_buckets(&current, 0, 1)?;
        chain.push(current.clone());
    }
    Ok(chain)
}

/// Binary search along a fine→coarse chain of bucketizations for the first
/// (finest) one satisfying a monotone predicate — "logarithmic in the height
/// of the bucketization lattice" per the remark below Definition 13.
///
/// `chain` must be ordered fine→coarse (`chain[i] ⪯ chain[i+1]`, verified in
/// debug builds) and `is_safe` must be monotone under coarsening (e.g. a
/// (c,k)-safety check, by Theorem 14). Returns the index of the finest safe
/// bucketization, or `None` if even the coarsest fails.
pub fn binary_search_coarsening<F>(
    chain: &[Bucketization],
    mut is_safe: F,
) -> Result<Option<usize>, CoreError>
where
    F: FnMut(&Bucketization) -> Result<bool, CoreError>,
{
    #[cfg(debug_assertions)]
    for w in chain.windows(2) {
        debug_assert!(refines(&w[0], &w[1]), "chain must be ordered fine→coarse");
    }
    if chain.is_empty() {
        return Ok(None);
    }
    let mut lo = 0usize;
    let mut hi = chain.len() - 1;
    if !is_safe(&chain[hi])? {
        return Ok(None);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if is_safe(&chain[mid])? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};
    use wcbk_table::Table;

    fn table() -> Table {
        hospital_table()
    }

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&table(), hospital_bucket_of).unwrap()
    }

    fn bottom() -> Bucketization {
        Bucketization::from_grouping(&table(), |t| t).unwrap()
    }

    #[test]
    fn bottom_refines_everything() {
        let b = figure3();
        let bot = bottom();
        assert!(refines(&bot, &b));
        assert!(refines(&bot, &merge_all(&b).unwrap()));
        assert!(!refines(&b, &bot));
    }

    #[test]
    fn refines_is_reflexive() {
        let b = figure3();
        assert!(refines(&b, &b));
    }

    #[test]
    fn merge_produces_coarser() {
        let b = figure3();
        let merged = merge_buckets(&b, 0, 1).unwrap();
        assert_eq!(merged.n_buckets(), 1);
        assert!(refines(&b, &merged));
        assert_eq!(merged.n_tuples(), b.n_tuples());
        // Merged histogram: Flu 4, LC 2, Mumps/BC/OC/HD 1 each.
        assert_eq!(
            merged.bucket(0).histogram().counts_desc(),
            &[4, 2, 1, 1, 1, 1]
        );
    }

    #[test]
    fn merge_same_index_is_identity() {
        let b = figure3();
        assert_eq!(merge_buckets(&b, 1, 1).unwrap(), b);
    }

    #[test]
    fn merge_out_of_range_rejected() {
        let b = figure3();
        assert!(matches!(
            merge_buckets(&b, 0, 9),
            Err(CoreError::BucketOutOfRange { index: 9, len: 2 })
        ));
    }

    #[test]
    fn different_universes_do_not_refine() {
        let t = table();
        let partial = Bucketization::from_partition(&t, &[vec![wcbk_table::TupleId(0)]]).unwrap();
        assert!(!refines(&partial, &figure3()));
        assert!(!refines(&figure3(), &partial));
    }

    #[test]
    fn monotonicity_theorem14_on_hospital() {
        // Coarsening never increases maximum disclosure.
        let b = figure3();
        let merged = merge_all(&b).unwrap();
        for k in 0..=4 {
            let fine = crate::max_disclosure(&b, k).unwrap().value;
            let coarse = crate::max_disclosure(&merged, k).unwrap().value;
            assert!(
                coarse <= fine + 1e-12,
                "k={k}: coarse {coarse} > fine {fine}"
            );
        }
    }

    #[test]
    fn chain_descends_in_disclosure() {
        let chain = coarsening_chain(&bottom()).unwrap();
        assert_eq!(chain.len(), 10);
        for k in [0usize, 2] {
            let values: Vec<f64> = chain
                .iter()
                .map(|b| crate::max_disclosure(b, k).unwrap().value)
                .collect();
            for w in values.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-12,
                    "chain not monotone at k={k}: {values:?}"
                );
            }
        }
    }

    #[test]
    fn binary_search_finds_first_safe_bucketization() {
        let chain = coarsening_chain(&bottom()).unwrap();
        for (c, k) in [(0.5, 0), (0.7, 1), (0.75, 2)] {
            let safety = crate::CkSafety::new(c, k).unwrap();
            let found = binary_search_coarsening(&chain, |b| safety.is_safe(b)).unwrap();
            // Compare with a linear scan.
            let mut linear = None;
            for (i, b) in chain.iter().enumerate() {
                if safety.is_safe(b).unwrap() {
                    linear = Some(i);
                    break;
                }
            }
            assert_eq!(found, linear, "(c,k)=({c},{k})");
        }
    }

    #[test]
    fn binary_search_none_when_coarsest_unsafe() {
        let chain = coarsening_chain(&bottom()).unwrap();
        // c = 0.2 is below even the fully merged table's top ratio (4/10).
        let safety = crate::CkSafety::new(0.2, 0).unwrap();
        assert_eq!(
            binary_search_coarsening(&chain, |b| safety.is_safe(b)).unwrap(),
            None
        );
        assert_eq!(binary_search_coarsening(&[], |_| Ok(true)).unwrap(), None);
    }

    #[test]
    fn merged_histogram_adds_counts() {
        let a = SensitiveHistogram::from_counts([(wcbk_table::SValue(0), 2)]);
        let b = SensitiveHistogram::from_counts([
            (wcbk_table::SValue(0), 1),
            (wcbk_table::SValue(1), 3),
        ]);
        let m = merge_histograms(&a, &b);
        assert_eq!(m.counts_desc(), &[3, 3]);
        assert_eq!(m.n(), 6);
    }
}
