//! # wcbk-core — worst-case background knowledge, polynomially
//!
//! The primary contribution of Martin et al. (ICDE 2007): computing the
//! **maximum disclosure** of a bucketization against an attacker holding any
//! `k` basic implications (`L^k_basic`), in `O(|B|·k³)` time, and checking
//! **(c,k)-safety**.
//!
//! The pipeline mirrors Section 3 of the paper:
//!
//! 1. Theorem 9 reduces the worst case over all of `L^k_basic` to `k`
//!    *simple* implications sharing one consequent atom `A`, so maximum
//!    disclosure equals `1 / (1 + r_min)` where `r_min` minimizes Formula (1):
//!    `Pr(¬A ∧ ∧_{i∈[k]} ¬A_i | B) / Pr(A | B)`.
//! 2. [`minimize1`] minimizes `Pr(∧ ¬A_i | B)` for atoms within one bucket
//!    via the Lemma 12 closed form (Algorithm 1).
//! 3. [`minimize2`] distributes the `k+1` atoms (including `A`) across
//!    buckets, exploiting cross-bucket independence (Algorithm 2).
//! 4. [`disclosure`] assembles the public API, including **witness
//!    reconstruction**: the actual worst-case implications, checkable against
//!    exact inference.
//! 5. [`negation`] computes the worst case for the ℓ-diversity-style
//!    negated-atom sublanguage (the dotted line of Figure 5).
//! 6. [`safety`] defines (c,k)-safety (Definition 13) and monotonicity
//!    helpers (Theorem 14).
//! 7. [`engine`] adds histogram-keyed memoization across bucketizations and
//!    `O(k²)` what-if re-evaluation when single buckets change
//!    (the incremental remark closing Section 3.3.3); [`registry`] bounds a
//!    long-lived fleet of per-`k` engines under group-weighted LRU budgets.
//! 8. [`sched`] is the scheduler-visible verdict/pruning surface: a
//!    work-stealing evaluator for monotone-pruned DAGs, which the lattice
//!    searches in `wcbk-anonymize` drive whole-lattice instead of
//!    level-synchronously.
//!
//! Two errata in the paper's Algorithm 2 pseudocode are corrected here (the
//! base case and the initial flag value); see `DESIGN.md` and the
//! documentation of [`minimize2::minimize2`].

mod bucket;
pub mod cost;
pub mod disclosure;
pub mod engine;
mod error;
mod histogram;
mod histogram_set;
pub mod minimize1;
pub mod minimize2;
pub mod negation;
pub mod partial_order;
pub mod registry;
pub mod safety;
pub mod sched;

pub use bucket::{Bucket, Bucketization};
pub use cost::{cost_negation_max_disclosure, CostNegationResult, CostVector};
pub use disclosure::{max_disclosure, DisclosureResult, DisclosureWitness};
pub use engine::{CacheStats, DisclosureEngine, IncrementalDisclosure};
pub use error::CoreError;
pub use histogram::SensitiveHistogram;
pub use histogram_set::HistogramSet;
pub use negation::{negation_max_disclosure, NegationResult};
pub use registry::{EngineRegistry, RegistryStats};
pub use safety::{is_ck_safe, CkSafety};
pub use sched::{
    evaluate_sequential, evaluate_work_stealing, MonotoneDag, NodeResolution, ScheduleOutcome,
};
