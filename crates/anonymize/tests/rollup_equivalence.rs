//! Property tests pinning the roll-up pipeline to the re-scanning baseline:
//! for random tables and hierarchies, roll-up histograms at **every** lattice
//! node equal the from-scratch `bucketize` histograms (same buckets, same
//! order), and search outcomes over the new pipeline equal the old ones
//! node-for-node.

use proptest::prelude::*;

use wcbk_anonymize::search::{
    find_minimal_safe, find_minimal_safe_parallel, find_minimal_safe_rescan,
    find_minimal_safe_with, sweep_all, sweep_all_rescan, Schedule, SearchConfig,
};
use wcbk_anonymize::{
    incognito, CkSafetyCriterion, DistinctLDiversity, KAnonymity, PrivacyCriterion,
};
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy, NodeEvaluator};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

/// A random table: `qi_cols` quasi-identifier columns drawn from small
/// numeric domains, one sensitive column. Row count ≥ 1.
fn build_table(qi_cols: usize, rows: &[Vec<u8>]) -> Table {
    let mut attributes: Vec<Attribute> = (0..qi_cols)
        .map(|d| Attribute::new(format!("Q{d}"), AttributeKind::QuasiIdentifier))
        .collect();
    attributes.push(Attribute::new("S", AttributeKind::Sensitive));
    let schema = Schema::new(attributes).unwrap();
    let mut b = TableBuilder::new(schema);
    for row in rows {
        let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        b.push_row(&fields).unwrap();
    }
    b.build()
}

/// A lattice mixing hierarchy shapes: suppression-only on even dimensions,
/// 2-then-4-wide intervals (when the domain parses) on odd ones.
fn build_lattice(table: &Table, qi_cols: usize) -> GeneralizationLattice {
    let dims = (0..qi_cols)
        .map(|d| {
            let dict = table.column(d).dictionary();
            let h = if d % 2 == 1 {
                Hierarchy::intervals(format!("Q{d}"), dict, &[2, 4]).unwrap()
            } else {
                Hierarchy::suppression(format!("Q{d}"), dict)
            };
            (d, h)
        })
        .collect();
    GeneralizationLattice::new(dims).unwrap()
}

/// Strategy: (qi_cols, rows) with each row holding qi values in 0..6 and a
/// sensitive value in 0..4, appended as the last field.
fn row_strategy(qi_cols: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..6, qi_cols + 1).prop_map(move |mut row| {
            row[qi_cols] %= 4; // sensitive domain 0..4
            row
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rollup_histograms_equal_bucketize_at_every_node(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
    ) {
        let rows: Vec<Vec<u8>> = seed_rows
            .into_iter()
            .map(|r| {
                let mut row = r[..qi_cols].to_vec();
                row.push(r[3]);
                row
            })
            .collect();
        let table = build_table(qi_cols, &rows);
        let lattice = build_lattice(&table, qi_cols);
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        for node in lattice.nodes() {
            let rolled = eval.histograms(&node).unwrap();
            let scanned = lattice.bucketize(&table, &node).unwrap();
            prop_assert_eq!(rolled.n_buckets(), scanned.n_buckets(), "node {}", &node);
            prop_assert_eq!(rolled.domain_size(), scanned.domain_size());
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                prop_assert_eq!(
                    &rolled.histograms()[i],
                    bucket.histogram(),
                    "node {} bucket {}", &node, i
                );
            }
        }
        prop_assert_eq!(eval.stats().table_scans, 1);
    }

    #[test]
    fn rollup_subsets_equal_bucketize_subset(
        qi_cols in 2usize..=3,
        seed_rows in row_strategy(3),
        pick in 0usize..64,
    ) {
        let rows: Vec<Vec<u8>> = seed_rows
            .into_iter()
            .map(|r| {
                let mut row = r[..qi_cols].to_vec();
                row.push(r[3]);
                row
            })
            .collect();
        let table = build_table(qi_cols, &rows);
        let lattice = build_lattice(&table, qi_cols);
        let eval = NodeEvaluator::new(&table, &lattice).unwrap();
        // A non-empty dim subset and one level choice per picked dim.
        let dims: Vec<usize> =
            (0..qi_cols).filter(|d| pick & (1 << d) != 0).collect();
        prop_assume!(!dims.is_empty());
        let levels: Vec<usize> = dims
            .iter()
            .map(|&d| (pick >> 3) % lattice.hierarchy(d).n_levels())
            .collect();
        let rolled = eval.histograms_subset(&dims, &levels).unwrap();
        let scanned = lattice.bucketize_subset(&table, &dims, &levels).unwrap();
        prop_assert_eq!(rolled.n_buckets(), scanned.n_buckets());
        for (i, bucket) in scanned.buckets().iter().enumerate() {
            prop_assert_eq!(&rolled.histograms()[i], bucket.histogram());
        }
    }

    #[test]
    fn search_outcomes_match_rescan_node_for_node(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 1u64..5,
    ) {
        let rows: Vec<Vec<u8>> = seed_rows
            .into_iter()
            .map(|r| {
                let mut row = r[..qi_cols].to_vec();
                row.push(r[3]);
                row
            })
            .collect();
        let table = build_table(qi_cols, &rows);
        let lattice = build_lattice(&table, qi_cols);

        // Full sweep: every node's verdict identical on both pipelines.
        let ck = || CkSafetyCriterion::new(0.75, 1).unwrap();
        prop_assert_eq!(
            sweep_all(&table, &lattice, &ck()).unwrap(),
            sweep_all_rescan(&table, &lattice, &ck()).unwrap()
        );

        // Pruned BFS, sequential and parallel, across criteria.
        let criteria: Vec<Box<dyn PrivacyCriterion>> = vec![
            Box::new(KAnonymity::new(k)),
            Box::new(DistinctLDiversity::new(2)),
            Box::new(CkSafetyCriterion::new(0.75, 1).unwrap()),
        ];
        for criterion in &criteria {
            let rollup = find_minimal_safe(&table, &lattice, criterion).unwrap();
            let rescan = find_minimal_safe_rescan(&table, &lattice, criterion).unwrap();
            prop_assert_eq!(&rollup, &rescan, "{} diverged", criterion.name());
            // The default parallel path (work-stealing + speculation).
            let stealing =
                find_minimal_safe_parallel(&table, &lattice, criterion, 3).unwrap();
            prop_assert_eq!(&rollup, &stealing, "{} stealing diverged", criterion.name());
            // The level-synchronous schedule, explicitly.
            let level_cfg = SearchConfig {
                threads: 3,
                schedule: Schedule::LevelSync,
                ..Default::default()
            };
            let level =
                find_minimal_safe_with(&table, &lattice, criterion, &level_cfg).unwrap();
            prop_assert_eq!(&rollup, &level, "{} level-sync diverged", criterion.name());
            // Work-stealing under a tiny memo cap: eviction plus
            // ancestor-fallback derivation must stay invisible.
            let capped_cfg = SearchConfig {
                threads: 3,
                schedule: Schedule::WorkStealing,
                memo_capacity: Some(2),
                ..Default::default()
            };
            let capped =
                find_minimal_safe_with(&table, &lattice, criterion, &capped_cfg).unwrap();
            prop_assert_eq!(&rollup, &capped, "{} capped-memo diverged", criterion.name());
        }

        // Incognito (roll-up subsets) still agrees with the BFS minimal set.
        let inc = incognito(&table, &lattice, &ck()).unwrap();
        let mut bfs = find_minimal_safe_rescan(&table, &lattice, &ck())
            .unwrap()
            .minimal_nodes;
        bfs.sort();
        prop_assert_eq!(inc.minimal_nodes, bfs);
    }
}
