//! Property tests for the anonymization searches: Incognito (subset join)
//! and the plain monotone BFS must find the same minimal safe sets on random
//! tables and lattices, for every supported criterion; Anatomy's output must
//! satisfy its contract whenever eligibility holds.

use proptest::prelude::*;

use wcbk_anonymize::anatomy::{anatomize, is_eligible};
use wcbk_anonymize::criteria::{
    CkSafetyCriterion, DistinctLDiversity, KAnonymity, PrivacyCriterion,
};
use wcbk_anonymize::incognito::incognito;
use wcbk_anonymize::search::{find_minimal_safe, sweep_all};
use wcbk_hierarchy::{GenNode, GeneralizationLattice, Hierarchy};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

/// Random table over two QI attributes (numeric + categorical) and a
/// sensitive attribute.
fn table_strategy() -> impl Strategy<Value = Table> {
    prop::collection::vec((0u8..12, 0u8..3, 0u8..4), 1..=16).prop_map(|rows| {
        let schema = Schema::new(vec![
            Attribute::new("N", AttributeKind::QuasiIdentifier),
            Attribute::new("C", AttributeKind::QuasiIdentifier),
            Attribute::new("S", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (n, c, s) in rows {
            b.push_row(&[format!("{n}"), format!("c{c}"), format!("s{s}")])
                .unwrap();
        }
        b.build()
    })
}

fn lattice_for(table: &Table) -> GeneralizationLattice {
    let n_dict = table.column(0).dictionary().clone();
    let c_dict = table.column(1).dictionary().clone();
    GeneralizationLattice::new(vec![
        (0, Hierarchy::intervals("N", &n_dict, &[3, 6]).unwrap()),
        (1, Hierarchy::suppression("C", &c_dict)),
    ])
    .unwrap()
}

fn sorted(mut nodes: Vec<GenNode>) -> Vec<GenNode> {
    nodes.sort();
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incognito == BFS == brute-force sweep minimality, k-anonymity.
    #[test]
    fn incognito_equals_bfs_k_anonymity(table in table_strategy(), k in 1u64..=6) {
        let lattice = lattice_for(&table);
        let inc = incognito(&table, &lattice, &KAnonymity::new(k)).unwrap();
        let bfs = find_minimal_safe(&table, &lattice, &KAnonymity::new(k)).unwrap();
        prop_assert_eq!(inc.minimal_nodes, sorted(bfs.minimal_nodes));
    }

    /// Incognito == BFS, (c,k)-safety.
    #[test]
    fn incognito_equals_bfs_ck_safety(table in table_strategy(), c10 in 3u32..=10, k in 0usize..=2) {
        let c = c10 as f64 / 10.0;
        let lattice = lattice_for(&table);
        let inc = incognito(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
        let bfs =
            find_minimal_safe(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
        prop_assert_eq!(inc.minimal_nodes, sorted(bfs.minimal_nodes));
    }

    /// BFS minimality cross-checked against the exhaustive sweep for
    /// ℓ-diversity.
    #[test]
    fn bfs_minimality_vs_sweep_l_diversity(table in table_strategy(), l in 1usize..=4) {
        let lattice = lattice_for(&table);
        let outcome =
            find_minimal_safe(&table, &lattice, &DistinctLDiversity::new(l)).unwrap();
        let sweep = sweep_all(&table, &lattice, &DistinctLDiversity::new(l)).unwrap();
        let safe: std::collections::HashSet<GenNode> = sweep
            .into_iter()
            .filter(|(_, ok)| *ok)
            .map(|(n, _)| n)
            .collect();
        prop_assert_eq!(outcome.satisfied, safe.len());
        for m in &outcome.minimal_nodes {
            prop_assert!(safe.contains(m));
            for p in lattice.predecessors(m) {
                prop_assert!(!safe.contains(&p), "{} has safe predecessor {}", m, p);
            }
        }
    }

    /// Anatomy contract: eligible tables produce partitions with distinct
    /// values per bucket and sizes in {l, l+1}.
    #[test]
    fn anatomy_contract(table in table_strategy(), l in 2usize..=4, seed in 0u64..1000) {
        prop_assume!(is_eligible(&table, l));
        let out = anatomize(&table, l, seed).unwrap();
        prop_assert_eq!(out.bucketization.n_tuples() as usize, table.n_rows());
        for bucket in out.bucketization.buckets() {
            let n = bucket.n() as usize;
            prop_assert!(n == l || n == l + 1, "bucket size {n}");
            prop_assert_eq!(bucket.histogram().distinct(), n);
        }
        prop_assert!(DistinctLDiversity::new(l)
            .is_satisfied(&out.bucketization)
            .unwrap());
    }
}
