//! Property tests pinning the chunked/parallel bottom-scan kernel to the
//! row-at-a-time reference scan: for random tables, **every** lattice node's
//! histograms are identical whichever scan built the evaluator — across
//! chunk sizes (including sizes that split signature groups at chunk
//! boundaries), thread counts, and both the `u64` and `u128` signature
//! representations (the latter crossing the 64-bit packing boundary).

use std::sync::Arc;

use proptest::prelude::*;

use wcbk_hierarchy::{GeneralizationLattice, Hierarchy, NodeEvaluator, ScanOptions};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

/// A random table: `qi_cols` quasi-identifier columns drawn from small
/// numeric domains, one sensitive column. Row count ≥ 1.
fn build_table(qi_cols: usize, rows: &[Vec<u8>]) -> Table {
    let mut attributes: Vec<Attribute> = (0..qi_cols)
        .map(|d| Attribute::new(format!("Q{d}"), AttributeKind::QuasiIdentifier))
        .collect();
    attributes.push(Attribute::new("S", AttributeKind::Sensitive));
    let schema = Schema::new(attributes).unwrap();
    let mut b = TableBuilder::new(schema);
    for row in rows {
        let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        b.push_row(&fields).unwrap();
    }
    b.build()
}

/// A lattice mixing hierarchy shapes: suppression-only on even dimensions,
/// 2-then-4-wide intervals on odd ones.
fn build_lattice(table: &Table, qi_cols: usize) -> GeneralizationLattice {
    let dims = (0..qi_cols)
        .map(|d| {
            let dict = table.column(d).dictionary();
            let h = if d % 2 == 1 {
                Hierarchy::intervals(format!("Q{d}"), dict, &[2, 4]).unwrap()
            } else {
                Hierarchy::suppression(format!("Q{d}"), dict)
            };
            (d, h)
        })
        .collect();
    GeneralizationLattice::new(dims).unwrap()
}

/// Strategy: (qi_cols, rows) with each row holding qi values in 0..6 and a
/// sensitive value in 0..4, appended as the last field.
fn row_strategy(qi_cols: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..6, qi_cols + 1).prop_map(move |mut row| {
            row[qi_cols] %= 4; // sensitive domain 0..4
            row
        }),
        1..40,
    )
}

/// Every node's histograms from `eval` equal those from `baseline`.
fn assert_nodes_equal(
    eval: &NodeEvaluator,
    baseline: &NodeEvaluator,
    lattice: &GeneralizationLattice,
    label: &str,
) -> Result<(), TestCaseError> {
    for node in lattice.nodes() {
        let got = eval.histograms(&node).unwrap();
        let want = baseline.histograms(&node).unwrap();
        prop_assert_eq!(
            got.n_buckets(),
            want.n_buckets(),
            "{}: node {}",
            label,
            &node
        );
        prop_assert_eq!(got.domain_size(), want.domain_size());
        for i in 0..want.n_buckets() {
            prop_assert_eq!(
                &got.histograms()[i],
                &want.histograms()[i],
                "{}: node {} bucket {}",
                label,
                &node,
                i
            );
        }
    }
    prop_assert_eq!(eval.stats().table_scans, 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The chunked columnar kernel equals the reference scan at every
    /// lattice node, across chunk sizes — including `chunk_rows` of 1–3,
    /// which split every multi-row signature group across chunk boundaries
    /// and so exercise the cross-chunk merge on every group — and thread
    /// counts above the machine's core count.
    #[test]
    fn chunked_parallel_scan_equals_reference(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
    ) {
        let rows: Vec<Vec<u8>> = seed_rows
            .into_iter()
            .map(|r| {
                let mut row = r[..qi_cols].to_vec();
                row.push(r[3]);
                row
            })
            .collect();
        let table = build_table(qi_cols, &rows);
        let lattice = Arc::new(build_lattice(&table, qi_cols));
        let reference = NodeEvaluator::shared_with_scan(
            &table,
            Arc::clone(&lattice),
            None,
            ScanOptions { reference: true, ..ScanOptions::default() },
        )
        .unwrap();
        for chunk_rows in [1usize, 2, 3, 7, 16, 1000] {
            for threads in [1usize, 2, 4] {
                let eval = NodeEvaluator::shared_with_scan(
                    &table,
                    Arc::clone(&lattice),
                    None,
                    ScanOptions { threads, chunk_rows, reference: false },
                )
                .unwrap();
                assert_nodes_equal(
                    &eval,
                    &reference,
                    &lattice,
                    &format!("chunk_rows={chunk_rows} threads={threads}"),
                )?;
            }
        }
    }

    /// Tables whose packed signature crosses the 64-bit boundary run the
    /// `u128` kernel; it too equals the reference scan — with chunk sizes
    /// small enough to split groups — on a lattice of 22 3-bit dimensions
    /// (66 bits total).
    #[test]
    fn u128_scan_equals_reference_across_packing_boundary(
        seed_rows in row_strategy(1),
    ) {
        // Guarantee the full 6-value QI domain is observed, so the bottom
        // level really needs 3 bits per dimension (22 × 3 = 66 packed).
        let mut rows = seed_rows;
        for v in 0..6u8 {
            rows.push(vec![v, v % 4]);
        }
        let table = build_table(1, &rows);
        let dict = table.column(0).dictionary().clone();
        // 22 copies of a ≤6-value suppression dimension: 3 bits each at the
        // bottom level, 66 bits packed — just past the u64 boundary.
        let dims: Vec<(usize, Hierarchy)> = (0..22)
            .map(|_| (0usize, Hierarchy::suppression("Q0", &dict)))
            .collect();
        let lattice = Arc::new(GeneralizationLattice::new(dims).unwrap());
        let reference = NodeEvaluator::shared_with_scan(
            &table,
            Arc::clone(&lattice),
            None,
            ScanOptions { reference: true, ..ScanOptions::default() },
        )
        .unwrap();
        prop_assert!(!reference.is_narrow(), "66 bits must select the u128 engine");
        let eval = NodeEvaluator::shared_with_scan(
            &table,
            Arc::clone(&lattice),
            None,
            ScanOptions { threads: 2, chunk_rows: 3, reference: false },
        )
        .unwrap();
        // The full 2^22-node lattice is unenumerable; spot-check a mixed
        // sample against the reference evaluator and the row-scanning
        // bucketize baseline.
        let mut nodes = vec![lattice.bottom(), lattice.top()];
        nodes.push(wcbk_hierarchy::GenNode(
            (0..22).map(|d| usize::from(d % 2 == 0)).collect(),
        ));
        nodes.push(wcbk_hierarchy::GenNode(
            (0..22).map(|d| usize::from(d == 21)).collect(),
        ));
        for node in &nodes {
            let got = eval.histograms(node).unwrap();
            let want = reference.histograms(node).unwrap();
            prop_assert_eq!(got.n_buckets(), want.n_buckets(), "node {}", node);
            for i in 0..want.n_buckets() {
                prop_assert_eq!(&got.histograms()[i], &want.histograms()[i]);
            }
            let scanned = lattice.bucketize(&table, node).unwrap();
            prop_assert_eq!(got.n_buckets(), scanned.n_buckets());
            for (i, bucket) in scanned.buckets().iter().enumerate() {
                prop_assert_eq!(&got.histograms()[i], bucket.histogram());
            }
        }
        prop_assert_eq!(eval.stats().table_scans, 1);
    }
}
