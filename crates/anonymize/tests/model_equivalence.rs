//! Property tests pinning the adversary-model plugin surface to the
//! direct MINIMIZE1/MINIMIZE2 paths: for random tables and hierarchies,
//! judging safety through [`ModelSafetyCriterion`] with the conjunction
//! model is **bit-identical** to [`CkSafetyCriterion`] — per-node verdicts
//! at every lattice node, search outcomes across schedules, thread counts
//! and memo budgets, and audit values with their witnesses — and
//! model-tagged composition audits match from-scratch rebuilds however the
//! audits interleave with releases.

use proptest::prelude::*;

use wcbk_anonymize::search::{find_minimal_safe_with, Schedule, SearchConfig};
use wcbk_anonymize::{CkSafetyCriterion, DatasetSession, ModelId, ModelSafetyCriterion};
use wcbk_core::DisclosureEngine;
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

/// A random table: `qi_cols` quasi-identifier columns drawn from small
/// numeric domains, one sensitive column. Row count ≥ 1.
fn build_table(qi_cols: usize, rows: &[Vec<u8>]) -> Table {
    let mut attributes: Vec<Attribute> = (0..qi_cols)
        .map(|d| Attribute::new(format!("Q{d}"), AttributeKind::QuasiIdentifier))
        .collect();
    attributes.push(Attribute::new("S", AttributeKind::Sensitive));
    let schema = Schema::new(attributes).unwrap();
    let mut b = TableBuilder::new(schema);
    for row in rows {
        let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        b.push_row(&fields).unwrap();
    }
    b.build()
}

/// A lattice mixing hierarchy shapes: suppression-only on even dimensions,
/// 2-then-4-wide intervals on odd ones.
fn build_lattice(table: &Table, qi_cols: usize) -> GeneralizationLattice {
    let dims = (0..qi_cols)
        .map(|d| {
            let dict = table.column(d).dictionary();
            let h = if d % 2 == 1 {
                Hierarchy::intervals(format!("Q{d}"), dict, &[2, 4]).unwrap()
            } else {
                Hierarchy::suppression(format!("Q{d}"), dict)
            };
            (d, h)
        })
        .collect();
    GeneralizationLattice::new(dims).unwrap()
}

fn row_strategy(qi_cols: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..6, qi_cols + 1).prop_map(move |mut row| {
            row[qi_cols] %= 4; // sensitive domain 0..4
            row
        }),
        1..40,
    )
}

fn materialize(qi_cols: usize, seed_rows: Vec<Vec<u8>>) -> (Table, GeneralizationLattice) {
    let rows: Vec<Vec<u8>> = seed_rows
        .into_iter()
        .map(|r| {
            let mut row = r[..qi_cols].to_vec();
            row.push(r[3]);
            row
        })
        .collect();
    let table = build_table(qi_cols, &rows);
    let lattice = build_lattice(&table, qi_cols);
    (table, lattice)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At every lattice node, the conjunction model through the trait gives
    /// the same verdict as the direct (c,k)-safety criterion, and the
    /// session sweeps through both agree entry for entry.
    #[test]
    fn conjunction_criterion_matches_direct_at_every_node(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..3,
    ) {
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let session = DatasetSession::new(table, lattice).unwrap();
        let engine = session.engine(k);
        let direct = CkSafetyCriterion::with_engine(0.75, std::sync::Arc::clone(&engine)).unwrap();
        let via_model = ModelSafetyCriterion::new(
            0.75,
            ModelId::Conjunction.resolve(engine),
        )
        .unwrap();
        let swept_direct = session.sweep(&direct).unwrap();
        let swept_model = session.sweep(&via_model).unwrap();
        prop_assert_eq!(&swept_direct, &swept_model);
    }

    /// Search outcomes (the full ⪯-minimal frontier, evaluated/satisfied
    /// counters included) through the trait equal the direct criterion,
    /// across schedules, thread counts, and memo budgets.
    #[test]
    fn conjunction_search_matches_direct_across_configs(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..3,
        memo_cap_raw in 0usize..8,
    ) {
        let memo_cap = memo_cap_raw.checked_sub(1);
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let engine = std::sync::Arc::new(DisclosureEngine::new(k));
        let direct = CkSafetyCriterion::with_engine(0.75, std::sync::Arc::clone(&engine)).unwrap();
        let via_model = ModelSafetyCriterion::new(
            0.75,
            ModelId::Conjunction.resolve(engine),
        )
        .unwrap();
        let configs = [
            SearchConfig { memo_capacity: memo_cap, ..Default::default() },
            SearchConfig {
                threads: 3,
                schedule: Schedule::WorkStealing,
                memo_capacity: memo_cap,
                ..Default::default()
            },
            SearchConfig {
                threads: 2,
                schedule: Schedule::LevelSync,
                memo_capacity: memo_cap,
                ..Default::default()
            },
        ];
        for config in &configs {
            let a = find_minimal_safe_with(&table, &lattice, &direct, config).unwrap();
            let b = find_minimal_safe_with(&table, &lattice, &via_model, config).unwrap();
            prop_assert_eq!(&a, &b, "diverged under {:?}", config);
        }
    }

    /// Session model-audits under the conjunction model equal the plain
    /// audit bit for bit — value bits and verdicts — at every `k`.
    #[test]
    fn conjunction_model_audit_matches_plain(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..4,
    ) {
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let session = DatasetSession::new(table, lattice).unwrap();
        let plain = session.audit(Some(0.8), k).unwrap();
        let model = session.audit_model(ModelId::Conjunction, Some(0.8), k).unwrap();
        prop_assert_eq!(model.value.to_bits(), plain.disclosure.value.to_bits());
        prop_assert_eq!(model.safe, plain.safe);
        prop_assert_eq!(model.buckets, plain.buckets);
        prop_assert!(!model.witness.predicts.is_empty());
        prop_assert!(!model.witness.knowing.is_empty());
    }

    /// Composition audits through the persistent incremental state equal
    /// from-scratch rebuilds no matter how audits interleave with
    /// releases: after **each** release the folded value matches a fresh
    /// `incremental_set` over the concatenated histograms, for both the
    /// plain and the model-tagged path.
    #[test]
    fn interleaved_composition_audits_match_full_rebuilds(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..3,
        picks in prop::collection::vec(0usize..64, 1..4),
    ) {
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let session = DatasetSession::new(table.clone(), lattice.clone()).unwrap();
        let nodes = lattice.nodes();
        let mut histograms = Vec::new();
        for pick in &picks {
            let node = &nodes[pick % nodes.len()];
            session.release(node).unwrap();
            let b = lattice.bucketize(&table, node).unwrap();
            histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));

            // Audit immediately after every release — the occupied-entry
            // fold path — and compare against a full rebuild.
            let report = session.audit_composition(Some(0.8), k).unwrap();
            let set = wcbk_core::HistogramSet::new(
                histograms.clone(),
                table.sensitive_cardinality() as u32,
            )
            .unwrap();
            let direct = DisclosureEngine::new(k).incremental_set(&set).unwrap().value();
            prop_assert_eq!(report.value.to_bits(), direct.to_bits());
            prop_assert_eq!(report.buckets, set.n_buckets());

            let tagged = session
                .audit_composition_model(ModelId::Conjunction, Some(0.8), k)
                .unwrap();
            prop_assert_eq!(tagged.value.to_bits(), direct.to_bits());
            prop_assert_eq!(tagged.safe, report.safe);
        }
    }
}
