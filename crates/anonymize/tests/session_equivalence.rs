//! Property tests pinning the dataset-handle API to the one-shot paths:
//! for random tables and hierarchies, a [`DatasetSession`]'s `audit`,
//! `search`, and `sweep` produce **bit-identical** results to the
//! corresponding one-shot entry points — whatever the schedule, thread
//! count, or memo budget — and repeated session calls never re-scan the
//! table.

use proptest::prelude::*;

use wcbk_anonymize::search::{find_minimal_safe_with, sweep_all, Schedule, SearchConfig};
use wcbk_anonymize::{
    CkSafetyCriterion, DatasetSession, KAnonymity, PrivacyCriterion, SessionOptions,
};
use wcbk_core::{CkSafety, DisclosureEngine};
use wcbk_hierarchy::{GeneralizationLattice, Hierarchy};
use wcbk_table::{Attribute, AttributeKind, Schema, Table, TableBuilder};

/// A random table: `qi_cols` quasi-identifier columns drawn from small
/// numeric domains, one sensitive column. Row count ≥ 1.
fn build_table(qi_cols: usize, rows: &[Vec<u8>]) -> Table {
    let mut attributes: Vec<Attribute> = (0..qi_cols)
        .map(|d| Attribute::new(format!("Q{d}"), AttributeKind::QuasiIdentifier))
        .collect();
    attributes.push(Attribute::new("S", AttributeKind::Sensitive));
    let schema = Schema::new(attributes).unwrap();
    let mut b = TableBuilder::new(schema);
    for row in rows {
        let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        b.push_row(&fields).unwrap();
    }
    b.build()
}

/// A lattice mixing hierarchy shapes: suppression-only on even dimensions,
/// 2-then-4-wide intervals on odd ones.
fn build_lattice(table: &Table, qi_cols: usize) -> GeneralizationLattice {
    let dims = (0..qi_cols)
        .map(|d| {
            let dict = table.column(d).dictionary();
            let h = if d % 2 == 1 {
                Hierarchy::intervals(format!("Q{d}"), dict, &[2, 4]).unwrap()
            } else {
                Hierarchy::suppression(format!("Q{d}"), dict)
            };
            (d, h)
        })
        .collect();
    GeneralizationLattice::new(dims).unwrap()
}

fn row_strategy(qi_cols: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..6, qi_cols + 1).prop_map(move |mut row| {
            row[qi_cols] %= 4; // sensitive domain 0..4
            row
        }),
        1..40,
    )
}

fn materialize(qi_cols: usize, seed_rows: Vec<Vec<u8>>) -> (Table, GeneralizationLattice) {
    let rows: Vec<Vec<u8>> = seed_rows
        .into_iter()
        .map(|r| {
            let mut row = r[..qi_cols].to_vec();
            row.push(r[3]);
            row
        })
        .collect();
    let table = build_table(qi_cols, &rows);
    let lattice = build_lattice(&table, qi_cols);
    (table, lattice)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Session audits equal the direct engine path bit for bit: same
    /// disclosure value bits, same witness, same verdict.
    #[test]
    fn session_audit_equals_oneshot(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..3,
    ) {
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let session = DatasetSession::new(table.clone(), lattice.clone()).unwrap();
        let report = session.audit(Some(0.8), k).unwrap();

        // The one-shot path: exact-QI grouping, fresh engine.
        let b = wcbk_core::Bucketization::from_grouping(&table, |t| {
            (0..qi_cols)
                .map(|col| table.column(col).code(t.index()))
                .collect::<Vec<u32>>()
        })
        .unwrap();
        let engine = DisclosureEngine::new(k);
        let direct = engine.max_disclosure(&b).unwrap();
        prop_assert_eq!(report.disclosure.value.to_bits(), direct.value.to_bits());
        prop_assert_eq!(&report.disclosure.witness, &direct.witness);
        prop_assert_eq!(report.buckets, b.n_buckets());
        prop_assert_eq!(
            report.safe,
            Some(CkSafety::new(0.8, k).unwrap().is_safe_with(&engine, &b).unwrap())
        );
        // Re-audit: still identical, still exactly one scan.
        let again = session.audit(Some(0.8), k).unwrap();
        prop_assert_eq!(again.disclosure.value.to_bits(), direct.value.to_bits());
        prop_assert_eq!(session.rollup_stats().unwrap().table_scans, 1);
    }

    /// Session searches and sweeps equal the one-shot entry points across
    /// criteria, schedules, thread counts, and memo budgets.
    #[test]
    fn session_search_equals_oneshot(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 1u64..5,
        memo_cap_raw in 0usize..8,
    ) {
        // 0 → unbounded; n → a (tiny) budget of n-1 groups, exercising
        // eviction and the ancestor fallback. (The vendored proptest has no
        // option strategy.)
        let memo_cap = memo_cap_raw.checked_sub(1);
        let (table, lattice) = materialize(qi_cols, seed_rows);
        // The session under test carries a random memo budget; results must
        // not depend on it.
        let session = DatasetSession::with_options(
            table.clone(),
            lattice.clone(),
            SessionOptions { memo_capacity: memo_cap, engines: None, scan_threads: 0 },
        )
        .unwrap();

        let criteria: Vec<Box<dyn PrivacyCriterion>> = vec![
            Box::new(KAnonymity::new(k)),
            Box::new(CkSafetyCriterion::new(0.75, 1).unwrap()),
        ];
        let configs = [
            SearchConfig::default(),
            SearchConfig { threads: 3, schedule: Schedule::WorkStealing, ..Default::default() },
            SearchConfig { threads: 2, schedule: Schedule::LevelSync, ..Default::default() },
        ];
        for criterion in &criteria {
            for config in &configs {
                let via_session = session.search(criterion, config).unwrap();
                let direct =
                    find_minimal_safe_with(&table, &lattice, criterion, config).unwrap();
                prop_assert_eq!(
                    &via_session.outcome, &direct,
                    "{} under {:?} diverged", criterion.name(), config
                );
            }
            let swept = session.sweep(criterion).unwrap();
            let direct = sweep_all(&table, &lattice, criterion).unwrap();
            prop_assert_eq!(&swept, &direct, "{} sweep diverged", criterion.name());
        }
        // Everything above cost exactly one scan of the table.
        prop_assert_eq!(session.rollup_stats().unwrap().table_scans, 1);
    }

    /// The composition audit over released nodes equals a from-scratch
    /// incremental_set over the concatenated release histograms.
    #[test]
    fn session_composition_equals_direct(
        qi_cols in 1usize..=3,
        seed_rows in row_strategy(3),
        k in 0usize..3,
        picks in prop::collection::vec(0usize..64, 1..4),
    ) {
        let (table, lattice) = materialize(qi_cols, seed_rows);
        let session = DatasetSession::new(table.clone(), lattice.clone()).unwrap();
        let nodes = lattice.nodes();
        let mut histograms = Vec::new();
        for pick in &picks {
            let node = &nodes[pick % nodes.len()];
            session.release(node).unwrap();
            let b = lattice.bucketize(&table, node).unwrap();
            histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));
        }
        let report = session.audit_composition(Some(0.8), k).unwrap();
        prop_assert_eq!(report.releases, picks.len());
        prop_assert_eq!(report.buckets, histograms.len());
        let set = wcbk_core::HistogramSet::new(histograms, b_domain(&table)).unwrap();
        let engine = DisclosureEngine::new(k);
        let direct = engine.incremental_set(&set).unwrap().value();
        prop_assert_eq!(report.value.to_bits(), direct.to_bits());
        prop_assert_eq!(report.safe, Some(direct < 0.8));
    }
}

fn b_domain(table: &Table) -> u32 {
    table.sensitive_cardinality() as u32
}
