//! Equivalence and concurrency contracts of the parallel lattice search.
//!
//! The load-bearing guarantee of `find_minimal_safe_parallel` (and
//! `incognito_parallel`) is that parallelism is *invisible* in the result:
//! the same minimal antichain, the same `evaluated` count, the same
//! `satisfied` count as the sequential search, for any thread count —
//! verified here on the paper's 72-node Adult benchmark lattice. A separate
//! smoke test drives one shared `DisclosureEngine`-backed criterion from
//! many threads at once and checks that the shared cache still answers
//! consistently.

use wcbk_anonymize::search::{
    find_minimal_safe, find_minimal_safe_parallel, find_minimal_safe_with, Schedule, SearchConfig,
};
use wcbk_anonymize::{
    anonymize, anonymize_parallel, incognito, incognito_parallel, incognito_with, AnonymizeError,
    CkSafetyCriterion, DistinctLDiversity, KAnonymity, PrivacyCriterion, UtilityMetric,
};
use wcbk_core::HistogramSet;
use wcbk_datagen::adult::{synthetic_adult, AdultConfig};
use wcbk_hierarchy::adult::adult_lattice;
use wcbk_hierarchy::GeneralizationLattice;
use wcbk_table::Table;

fn adult(n_rows: usize) -> (Table, GeneralizationLattice) {
    let table = synthetic_adult(AdultConfig {
        n_rows,
        ..Default::default()
    });
    let lattice = adult_lattice(&table).expect("adult lattice");
    (table, lattice)
}

/// The acceptance-criterion test: on the Adult benchmark lattice, the
/// parallel search returns a `SearchOutcome` *equal* (same `minimal_nodes`
/// in the same order, same `evaluated`, same `satisfied`) to the sequential
/// one, for several thread counts and criteria.
#[test]
fn parallel_equals_sequential_on_adult_lattice() {
    let (table, lattice) = adult(1_500);
    for threads in [2usize, 3, 8] {
        let seq =
            find_minimal_safe(&table, &lattice, &CkSafetyCriterion::new(0.8, 2).unwrap()).unwrap();
        let par = find_minimal_safe_parallel(
            &table,
            &lattice,
            &CkSafetyCriterion::new(0.8, 2).unwrap(),
            threads,
        )
        .unwrap();
        assert_eq!(
            seq, par,
            "(c,k)-safety outcome diverged at {threads} threads"
        );
        assert!(
            !seq.minimal_nodes.is_empty(),
            "search found nothing to compare"
        );

        let seq = find_minimal_safe(&table, &lattice, &KAnonymity::new(40)).unwrap();
        let par =
            find_minimal_safe_parallel(&table, &lattice, &KAnonymity::new(40), threads).unwrap();
        assert_eq!(
            seq, par,
            "k-anonymity outcome diverged at {threads} threads"
        );

        let seq = find_minimal_safe(&table, &lattice, &DistinctLDiversity::new(5)).unwrap();
        let par =
            find_minimal_safe_parallel(&table, &lattice, &DistinctLDiversity::new(5), threads)
                .unwrap();
        assert_eq!(
            seq, par,
            "l-diversity outcome diverged at {threads} threads"
        );
    }
}

/// `threads == 0` (all cores) and `threads == 1` (sequential fast path) are
/// also equivalent.
#[test]
fn thread_count_edge_cases_match() {
    let (table, lattice) = adult(800);
    let criterion = || CkSafetyCriterion::new(0.85, 1).unwrap();
    let seq = find_minimal_safe(&table, &lattice, &criterion()).unwrap();
    for threads in [0usize, 1] {
        let par = find_minimal_safe_parallel(&table, &lattice, &criterion(), threads).unwrap();
        assert_eq!(seq, par, "threads={threads}");
    }
}

/// Incognito's apriori subset join with parallel per-level evaluation finds
/// the same minimal nodes (and spends the same evaluation budget) as the
/// sequential run.
#[test]
fn incognito_parallel_equals_sequential() {
    let (table, lattice) = adult(1_000);
    let seq = incognito(&table, &lattice, &CkSafetyCriterion::new(0.8, 2).unwrap()).unwrap();
    for threads in [2usize, 4] {
        let par = incognito_parallel(
            &table,
            &lattice,
            &CkSafetyCriterion::new(0.8, 2).unwrap(),
            threads,
        )
        .unwrap();
        assert_eq!(seq, par, "incognito outcome diverged at {threads} threads");
    }
}

/// The full pipeline picks the same node either way.
#[test]
fn anonymize_parallel_picks_same_node() {
    let (table, lattice) = adult(800);
    let seq = anonymize(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.85, 1).unwrap(),
        UtilityMetric::Discernibility,
    )
    .unwrap();
    let par = anonymize_parallel(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.85, 1).unwrap(),
        UtilityMetric::Discernibility,
        4,
    )
    .unwrap();
    assert_eq!(seq.node, par.node);
    assert_eq!(seq.minimal_nodes, par.minimal_nodes);
    assert_eq!(seq.evaluated, par.evaluated);
    assert_eq!(seq.utility_score, par.utility_score);
}

/// One criterion (hence one engine cache) shared by many threads hammering
/// the same bucketizations must answer every query consistently, and the
/// cache must actually be shared: total misses stay bounded by the number
/// of distinct histograms, not multiplied by the thread count.
#[test]
fn shared_criterion_cache_is_thread_safe() {
    let (table, lattice) = adult(600);
    let criterion = CkSafetyCriterion::new(0.8, 2).unwrap();
    let nodes: Vec<_> = lattice.nodes().into_iter().collect();

    // Sequential reference verdicts.
    let reference: Vec<bool> = nodes
        .iter()
        .map(|n| {
            let b = lattice.bucketize(&table, n).unwrap();
            CkSafetyCriterion::new(0.8, 2)
                .unwrap()
                .is_satisfied(&b)
                .unwrap()
        })
        .collect();

    let n_threads = 8;
    std::thread::scope(|scope| {
        for worker in 0..n_threads {
            let criterion = &criterion;
            let nodes = &nodes;
            let table = &table;
            let lattice = &lattice;
            let reference = &reference;
            scope.spawn(move || {
                // Each worker sweeps every node, offset so workers collide
                // on the cache from different positions.
                for i in 0..nodes.len() {
                    let idx = (i + worker * 7) % nodes.len();
                    let b = lattice.bucketize(table, &nodes[idx]).unwrap();
                    let got = criterion.is_satisfied(&b).unwrap();
                    assert_eq!(got, reference[idx], "node {} verdict changed", nodes[idx]);
                }
            });
        }
    });

    let stats = criterion.engine_stats();
    // Every worker swept all nodes, so lookups are plentiful...
    assert!(
        stats.hits + stats.misses > 0,
        "cache never consulted: {stats:?}"
    );
    // ...but distinct MINIMIZE1 builds are bounded by distinct histograms
    // (entries), plus at most one lost insert race per entry per thread.
    assert!(
        stats.misses <= (stats.entries as u64) * n_threads as u64,
        "cache not shared: {stats:?}"
    );
    assert!(
        stats.hits >= stats.misses,
        "with {n_threads} sweeps the cache should mostly hit: {stats:?}"
    );
}

/// Both parallel schedules — the level-synchronous barrier fan-out and the
/// work-stealing whole-lattice scheduler — must return the sequential
/// outcome exactly, for any thread count.
#[test]
fn both_schedules_equal_sequential() {
    let (table, lattice) = adult(1_200);
    let criterion = || CkSafetyCriterion::new(0.8, 2).unwrap();
    let seq = find_minimal_safe(&table, &lattice, &criterion()).unwrap();
    assert!(!seq.minimal_nodes.is_empty());
    for schedule in [Schedule::LevelSync, Schedule::WorkStealing] {
        for threads in [2usize, 3, 8] {
            let config = SearchConfig {
                threads,
                schedule,
                ..Default::default()
            };
            let got = find_minimal_safe_with(&table, &lattice, &criterion(), &config).unwrap();
            assert_eq!(seq, got, "{schedule:?} at {threads} threads diverged");
        }
    }
}

/// Scheduler edge case: far more workers than lattice nodes (the 72-node
/// Adult lattice under 64 threads) still matches the sequential outcome.
#[test]
fn more_workers_than_nodes_matches_sequential() {
    let (table, lattice) = adult(400);
    let criterion = || KAnonymity::new(10);
    let seq = find_minimal_safe(&table, &lattice, &criterion()).unwrap();
    let config = SearchConfig {
        threads: 64,
        schedule: Schedule::WorkStealing,
        ..Default::default()
    };
    let got = find_minimal_safe_with(&table, &lattice, &criterion(), &config).unwrap();
    assert_eq!(seq, got);
}

/// Capping the roll-up evaluator's memo (forcing evictions and
/// ancestor-fallback derivations) must not change any outcome.
#[test]
fn memo_capacity_does_not_change_outcomes() {
    let (table, lattice) = adult(600);
    let criterion = || CkSafetyCriterion::new(0.8, 2).unwrap();
    let seq = find_minimal_safe(&table, &lattice, &criterion()).unwrap();
    for cap in [1usize, 2, 8] {
        for threads in [1usize, 4] {
            let config = SearchConfig {
                threads,
                schedule: Schedule::WorkStealing,
                memo_capacity: Some(cap),
                ..Default::default()
            };
            let got = find_minimal_safe_with(&table, &lattice, &criterion(), &config).unwrap();
            assert_eq!(seq, got, "cap={cap} threads={threads}");
        }
    }
}

/// A criterion that fails deterministically on specific histogram shapes:
/// errors depend on the node alone, so sequential and stealing runs can be
/// compared error-for-error.
struct ErringCriterion {
    /// Buckets-count band `[lo, hi]` that triggers the error.
    lo: usize,
    hi: usize,
}

impl PrivacyCriterion for ErringCriterion {
    fn name(&self) -> String {
        "erring".to_owned()
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        let n = h.n_buckets();
        if n >= self.lo && n <= self.hi {
            return Err(AnonymizeError::InvalidParameter(format!(
                "criterion failed at {n} buckets"
            )));
        }
        // Monotone in practice on these workloads: few buckets = coarse.
        Ok(n <= 4)
    }
}

/// Scheduler edge case: a criterion that errors mid-search. The
/// work-stealing run must surface exactly the error the sequential loop
/// stops at (first in visit order), for any thread count — even though
/// stealing workers may hit other erroring nodes first.
#[test]
fn first_error_semantics_preserved_under_stealing() {
    let (table, lattice) = adult(500);
    for (lo, hi) in [(10usize, 40usize), (5, 5), (1, 2)] {
        let criterion = || ErringCriterion { lo, hi };
        let seq_err = match find_minimal_safe(&table, &lattice, &criterion()) {
            Err(e) => e.to_string(),
            Ok(_) => continue, // band never hit on this workload
        };
        for threads in [1usize, 2, 4, 16] {
            for schedule in [Schedule::LevelSync, Schedule::WorkStealing] {
                let config = SearchConfig {
                    threads,
                    schedule,
                    ..Default::default()
                };
                let err = find_minimal_safe_with(&table, &lattice, &criterion(), &config)
                    .expect_err("sequential search errored, parallel must too");
                assert_eq!(
                    err.to_string(),
                    seq_err,
                    "band [{lo},{hi}] {schedule:?} threads={threads}"
                );
            }
        }
    }
}

/// Incognito under both schedules equals the sequential run (same minimal
/// nodes, same per-size evaluation budget).
#[test]
fn incognito_schedules_equal_sequential() {
    let (table, lattice) = adult(800);
    let seq = incognito(&table, &lattice, &CkSafetyCriterion::new(0.8, 2).unwrap()).unwrap();
    for schedule in [Schedule::LevelSync, Schedule::WorkStealing] {
        let config = SearchConfig {
            threads: 4,
            schedule,
            ..Default::default()
        };
        let got = incognito_with(
            &table,
            &lattice,
            &CkSafetyCriterion::new(0.8, 2).unwrap(),
            &config,
        )
        .unwrap();
        assert_eq!(seq, got, "{schedule:?} diverged");
    }
}

/// The concrete acceptance criterion: the engine (and the criteria built on
/// it) are `Send + Sync`.
#[test]
fn engine_and_criteria_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<wcbk_core::DisclosureEngine>();
    assert_send_sync::<CkSafetyCriterion>();
    assert_send_sync::<KAnonymity>();
    assert_send_sync::<Box<dyn PrivacyCriterion>>();
}
