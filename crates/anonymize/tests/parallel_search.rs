//! Equivalence and concurrency contracts of the parallel lattice search.
//!
//! The load-bearing guarantee of `find_minimal_safe_parallel` (and
//! `incognito_parallel`) is that parallelism is *invisible* in the result:
//! the same minimal antichain, the same `evaluated` count, the same
//! `satisfied` count as the sequential search, for any thread count —
//! verified here on the paper's 72-node Adult benchmark lattice. A separate
//! smoke test drives one shared `DisclosureEngine`-backed criterion from
//! many threads at once and checks that the shared cache still answers
//! consistently.

use wcbk_anonymize::search::{find_minimal_safe, find_minimal_safe_parallel};
use wcbk_anonymize::{
    anonymize, anonymize_parallel, incognito, incognito_parallel, CkSafetyCriterion,
    DistinctLDiversity, KAnonymity, PrivacyCriterion, UtilityMetric,
};
use wcbk_datagen::adult::{synthetic_adult, AdultConfig};
use wcbk_hierarchy::adult::adult_lattice;
use wcbk_hierarchy::GeneralizationLattice;
use wcbk_table::Table;

fn adult(n_rows: usize) -> (Table, GeneralizationLattice) {
    let table = synthetic_adult(AdultConfig {
        n_rows,
        ..Default::default()
    });
    let lattice = adult_lattice(&table).expect("adult lattice");
    (table, lattice)
}

/// The acceptance-criterion test: on the Adult benchmark lattice, the
/// parallel search returns a `SearchOutcome` *equal* (same `minimal_nodes`
/// in the same order, same `evaluated`, same `satisfied`) to the sequential
/// one, for several thread counts and criteria.
#[test]
fn parallel_equals_sequential_on_adult_lattice() {
    let (table, lattice) = adult(1_500);
    for threads in [2usize, 3, 8] {
        let seq =
            find_minimal_safe(&table, &lattice, &CkSafetyCriterion::new(0.8, 2).unwrap()).unwrap();
        let par = find_minimal_safe_parallel(
            &table,
            &lattice,
            &CkSafetyCriterion::new(0.8, 2).unwrap(),
            threads,
        )
        .unwrap();
        assert_eq!(
            seq, par,
            "(c,k)-safety outcome diverged at {threads} threads"
        );
        assert!(
            !seq.minimal_nodes.is_empty(),
            "search found nothing to compare"
        );

        let seq = find_minimal_safe(&table, &lattice, &KAnonymity::new(40)).unwrap();
        let par =
            find_minimal_safe_parallel(&table, &lattice, &KAnonymity::new(40), threads).unwrap();
        assert_eq!(
            seq, par,
            "k-anonymity outcome diverged at {threads} threads"
        );

        let seq = find_minimal_safe(&table, &lattice, &DistinctLDiversity::new(5)).unwrap();
        let par =
            find_minimal_safe_parallel(&table, &lattice, &DistinctLDiversity::new(5), threads)
                .unwrap();
        assert_eq!(
            seq, par,
            "l-diversity outcome diverged at {threads} threads"
        );
    }
}

/// `threads == 0` (all cores) and `threads == 1` (sequential fast path) are
/// also equivalent.
#[test]
fn thread_count_edge_cases_match() {
    let (table, lattice) = adult(800);
    let criterion = || CkSafetyCriterion::new(0.85, 1).unwrap();
    let seq = find_minimal_safe(&table, &lattice, &criterion()).unwrap();
    for threads in [0usize, 1] {
        let par = find_minimal_safe_parallel(&table, &lattice, &criterion(), threads).unwrap();
        assert_eq!(seq, par, "threads={threads}");
    }
}

/// Incognito's apriori subset join with parallel per-level evaluation finds
/// the same minimal nodes (and spends the same evaluation budget) as the
/// sequential run.
#[test]
fn incognito_parallel_equals_sequential() {
    let (table, lattice) = adult(1_000);
    let seq = incognito(&table, &lattice, &CkSafetyCriterion::new(0.8, 2).unwrap()).unwrap();
    for threads in [2usize, 4] {
        let par = incognito_parallel(
            &table,
            &lattice,
            &CkSafetyCriterion::new(0.8, 2).unwrap(),
            threads,
        )
        .unwrap();
        assert_eq!(seq, par, "incognito outcome diverged at {threads} threads");
    }
}

/// The full pipeline picks the same node either way.
#[test]
fn anonymize_parallel_picks_same_node() {
    let (table, lattice) = adult(800);
    let seq = anonymize(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.85, 1).unwrap(),
        UtilityMetric::Discernibility,
    )
    .unwrap();
    let par = anonymize_parallel(
        &table,
        &lattice,
        &CkSafetyCriterion::new(0.85, 1).unwrap(),
        UtilityMetric::Discernibility,
        4,
    )
    .unwrap();
    assert_eq!(seq.node, par.node);
    assert_eq!(seq.minimal_nodes, par.minimal_nodes);
    assert_eq!(seq.evaluated, par.evaluated);
    assert_eq!(seq.utility_score, par.utility_score);
}

/// One criterion (hence one engine cache) shared by many threads hammering
/// the same bucketizations must answer every query consistently, and the
/// cache must actually be shared: total misses stay bounded by the number
/// of distinct histograms, not multiplied by the thread count.
#[test]
fn shared_criterion_cache_is_thread_safe() {
    let (table, lattice) = adult(600);
    let criterion = CkSafetyCriterion::new(0.8, 2).unwrap();
    let nodes: Vec<_> = lattice.nodes().into_iter().collect();

    // Sequential reference verdicts.
    let reference: Vec<bool> = nodes
        .iter()
        .map(|n| {
            let b = lattice.bucketize(&table, n).unwrap();
            CkSafetyCriterion::new(0.8, 2)
                .unwrap()
                .is_satisfied(&b)
                .unwrap()
        })
        .collect();

    let n_threads = 8;
    std::thread::scope(|scope| {
        for worker in 0..n_threads {
            let criterion = &criterion;
            let nodes = &nodes;
            let table = &table;
            let lattice = &lattice;
            let reference = &reference;
            scope.spawn(move || {
                // Each worker sweeps every node, offset so workers collide
                // on the cache from different positions.
                for i in 0..nodes.len() {
                    let idx = (i + worker * 7) % nodes.len();
                    let b = lattice.bucketize(table, &nodes[idx]).unwrap();
                    let got = criterion.is_satisfied(&b).unwrap();
                    assert_eq!(got, reference[idx], "node {} verdict changed", nodes[idx]);
                }
            });
        }
    });

    let stats = criterion.engine_stats();
    // Every worker swept all nodes, so lookups are plentiful...
    assert!(
        stats.hits + stats.misses > 0,
        "cache never consulted: {stats:?}"
    );
    // ...but distinct MINIMIZE1 builds are bounded by distinct histograms
    // (entries), plus at most one lost insert race per entry per thread.
    assert!(
        stats.misses <= (stats.entries as u64) * n_threads as u64,
        "cache not shared: {stats:?}"
    );
    assert!(
        stats.hits >= stats.misses,
        "with {n_threads} sweeps the cache should mostly hit: {stats:?}"
    );
}

/// The concrete acceptance criterion: the engine (and the criteria built on
/// it) are `Send + Sync`.
#[test]
fn engine_and_criteria_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<wcbk_core::DisclosureEngine>();
    assert_send_sync::<CkSafetyCriterion>();
    assert_send_sync::<KAnonymity>();
    assert_send_sync::<Box<dyn PrivacyCriterion>>();
}
