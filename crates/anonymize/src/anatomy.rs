//! The Anatomy bucketization algorithm [Xiao & Tao, VLDB 2006].
//!
//! The paper (Related Work): "Anatomy is a recently proposed anonymization
//! technique that corresponds exactly to the notion of bucketization that we
//! use in this paper." Anatomy builds an ℓ-diverse bucketization *directly* —
//! no generalization lattice — by repeatedly drawing one tuple from each of
//! the ℓ currently-largest sensitive-value groups:
//!
//! 1. hash tuples into groups by sensitive value;
//! 2. while ≥ ℓ groups are non-empty, emit a bucket containing one tuple
//!    from each of the ℓ largest groups (ties broken deterministically);
//! 3. residue: each leftover tuple (at most ℓ−1, all with distinct values)
//!    joins an existing bucket that does not yet contain its value.
//!
//! The result satisfies **distinct ℓ-diversity** whenever the table is
//! *eligible*: no sensitive value occurs in more than `n/ℓ` tuples. Combined
//! with `wcbk-core`, this gives a second publication strategy to audit with
//! (c,k)-safety and compare against lattice search on utility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk_core::{Bucket, Bucketization};
use wcbk_table::{SValue, Table, TupleId};

use crate::AnonymizeError;

/// The outcome of anatomizing a table.
#[derive(Debug, Clone)]
pub struct AnatomyOutcome {
    /// The ℓ-diverse bucketization.
    pub bucketization: Bucketization,
    /// The diversity parameter used.
    pub l: usize,
    /// Number of residue tuples absorbed into enlarged buckets.
    pub residue: usize,
}

/// Checks Anatomy eligibility: every sensitive value occurs at most `n/ℓ`
/// times (Xiao & Tao, Theorem 1 precondition).
pub fn is_eligible(table: &Table, l: usize) -> bool {
    if l == 0 || table.n_rows() == 0 {
        return false;
    }
    let mut counts = vec![0usize; table.sensitive_cardinality()];
    for t in table.tuple_ids() {
        counts[table.sensitive_value(t).index()] += 1;
    }
    let n = table.n_rows();
    counts.iter().all(|&c| c * l <= n)
}

/// Runs Anatomy on `table` with diversity `l`; tuple draws within a value
/// group are seeded-random (the algorithm's correctness does not depend on
/// the order, only the *published permutation* is random, but a seed keeps
/// experiments reproducible).
pub fn anatomize(table: &Table, l: usize, seed: u64) -> Result<AnatomyOutcome, AnonymizeError> {
    if l < 2 {
        return Err(AnonymizeError::InvalidParameter(format!(
            "anatomy needs l >= 2, got {l}"
        )));
    }
    if !is_eligible(table, l) {
        return Err(AnonymizeError::InvalidParameter(format!(
            "table is not eligible for {l}-diversity: some sensitive value \
             occurs more than n/{l} times"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Group tuples by sensitive value; shuffle each group once so draws are
    // random but O(1) (pop from the back).
    let mut groups: Vec<Vec<TupleId>> = vec![Vec::new(); table.sensitive_cardinality()];
    for t in table.tuple_ids() {
        groups[table.sensitive_value(t).index()].push(t);
    }
    for g in groups.iter_mut() {
        for i in (1..g.len()).rev() {
            let j = rng.gen_range(0..=i);
            g.swap(i, j);
        }
    }

    let mut buckets: Vec<(Vec<TupleId>, Vec<SValue>)> = Vec::new();
    loop {
        // Indices of the l largest non-empty groups (value code breaks ties
        // for determinism).
        let mut order: Vec<usize> = (0..groups.len())
            .filter(|&v| !groups[v].is_empty())
            .collect();
        if order.len() < l {
            break;
        }
        order.sort_by_key(|&v| (std::cmp::Reverse(groups[v].len()), v));
        let chosen = &order[..l];
        let mut members = Vec::with_capacity(l);
        let mut values = Vec::with_capacity(l);
        for &v in chosen {
            let t = groups[v].pop().expect("group was non-empty");
            members.push(t);
            values.push(SValue(v as u32));
        }
        buckets.push((members, values));
    }

    // Residue: at most l-1 leftover values, each with at most one tuple
    // under eligibility (more generally: assign every leftover tuple to a
    // bucket currently missing its value, preferring the smallest bucket so
    // residues spread instead of stacking).
    let mut residue = 0usize;
    for (v, group) in groups.iter_mut().enumerate() {
        while let Some(t) = group.pop() {
            let value = SValue(v as u32);
            let target = buckets
                .iter_mut()
                .filter(|(_, values)| !values.contains(&value))
                .min_by_key(|(members, _)| members.len())
                .ok_or_else(|| {
                    AnonymizeError::InvalidParameter(
                        "residue assignment failed: no bucket without the value \
                         (table violates the eligibility invariant)"
                            .to_owned(),
                    )
                })?;
            target.0.push(t);
            target.1.push(value);
            residue += 1;
        }
    }

    let domain = table.sensitive_cardinality() as u32;
    let buckets: Vec<Bucket> = buckets
        .into_iter()
        .map(|(members, values)| Bucket::new(members, &values))
        .collect();
    let bucketization = Bucketization::from_buckets(buckets, domain)?;
    Ok(AnatomyOutcome {
        bucketization,
        l,
        residue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{DistinctLDiversity, PrivacyCriterion};
    use wcbk_table::{Attribute, AttributeKind, Schema, TableBuilder};

    fn table_with(values: &[&str]) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Id", AttributeKind::Insensitive),
            Attribute::new("Disease", AttributeKind::Sensitive),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, v) in values.iter().enumerate() {
            b.push_row(&[format!("p{i}"), (*v).to_owned()]).unwrap();
        }
        b.build()
    }

    #[test]
    fn eligibility_check() {
        let t = table_with(&["a", "a", "b", "c"]);
        assert!(is_eligible(&t, 2)); // max count 2 <= 4/2
        assert!(!is_eligible(&t, 3)); // 2 > 4/3
        assert!(!is_eligible(&t, 0));
    }

    #[test]
    fn produces_distinct_l_diverse_buckets() {
        let t = table_with(&["a", "a", "a", "b", "b", "c", "c", "d", "e"]);
        let out = anatomize(&t, 3, 7).unwrap();
        assert!(DistinctLDiversity::new(3)
            .is_satisfied(&out.bucketization)
            .unwrap());
        // Every bucket has size l or l+1 (residue absorption).
        for bucket in out.bucketization.buckets() {
            let n = bucket.n() as usize;
            assert!(n == 3 || n == 4, "bucket size {n}");
            // Distinct values within the bucket.
            assert_eq!(bucket.histogram().distinct(), n);
        }
        // Partition covers every tuple exactly once.
        assert_eq!(out.bucketization.n_tuples() as usize, t.n_rows());
    }

    #[test]
    fn ineligible_table_rejected() {
        let t = table_with(&["a", "a", "a", "b"]);
        assert!(matches!(
            anatomize(&t, 2, 0),
            Err(AnonymizeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn l_below_two_rejected() {
        let t = table_with(&["a", "b"]);
        assert!(anatomize(&t, 1, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table_with(&["a", "a", "b", "b", "c", "c", "d", "d"]);
        let x = anatomize(&t, 2, 5).unwrap();
        let y = anatomize(&t, 2, 5).unwrap();
        assert_eq!(x.bucketization, y.bucketization);
        let z = anatomize(&t, 2, 6).unwrap();
        // Same histogram structure even if membership differs.
        assert_eq!(z.bucketization.n_buckets(), x.bucketization.n_buckets());
    }

    #[test]
    fn anatomy_bounds_k0_disclosure_by_one_over_l() {
        // Distinct values in buckets of size l: top ratio <= 1/l... buckets
        // may grow to l+1 with residue, giving 1/(l+1) < ratio <= 1/l; the
        // k=0 disclosure is therefore at most 1/l.
        let t = table_with(&["a", "a", "a", "b", "b", "c", "c", "d", "e", "f", "f", "g"]);
        let out = anatomize(&t, 3, 11).unwrap();
        let d0 = wcbk_core::max_disclosure(&out.bucketization, 0)
            .unwrap()
            .value;
        assert!(d0 <= 1.0 / 3.0 + 1e-12, "k=0 disclosure {d0}");
        // But background knowledge still defeats it (the paper's point):
        let d2 = wcbk_core::max_disclosure(&out.bucketization, 2)
            .unwrap()
            .value;
        assert!((d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residue_counted() {
        // 7 tuples, l=2: three buckets of 2 plus one residue tuple.
        let t = table_with(&["a", "a", "b", "b", "c", "c", "d"]);
        let out = anatomize(&t, 2, 3).unwrap();
        assert_eq!(out.residue, 1);
        assert_eq!(out.bucketization.n_tuples(), 7);
    }
}
