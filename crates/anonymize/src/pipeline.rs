//! End-to-end anonymization: search, rank, report.

use wcbk_core::{max_disclosure, Bucketization, DisclosureResult};
use wcbk_hierarchy::{GenNode, GeneralizationLattice};
use wcbk_table::Table;

use crate::utility::pick_best;
use crate::{AnonymizeError, PrivacyCriterion, UtilityMetric};

/// The result of [`anonymize`]: the chosen generalization and its audit.
#[derive(Debug)]
pub struct AnonymizationOutcome {
    /// The chosen (utility-best among ⪯-minimal safe) lattice node.
    pub node: GenNode,
    /// The bucketization it induces.
    pub bucketization: Bucketization,
    /// All minimal safe nodes found (the chosen one included).
    pub minimal_nodes: Vec<GenNode>,
    /// Criterion evaluations spent by the search.
    pub evaluated: usize,
    /// Utility score of the chosen node (lower is better).
    pub utility_score: f64,
}

impl AnonymizationOutcome {
    /// Audits the outcome with a maximum-disclosure report at power `k`.
    pub fn audit(&self, k: usize) -> Result<DisclosureResult, AnonymizeError> {
        Ok(max_disclosure(&self.bucketization, k)?)
    }
}

/// Finds all ⪯-minimal safe generalizations of `table` under `criterion`,
/// then returns the best one according to `metric`.
///
/// Errors with [`AnonymizeError::NoSafeNode`] when not even the top of the
/// lattice satisfies the criterion.
pub fn anonymize<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    metric: UtilityMetric,
) -> Result<AnonymizationOutcome, AnonymizeError> {
    let outcome = crate::search::find_minimal_safe(table, lattice, criterion)?;
    rank_and_report(table, lattice, metric, outcome)
}

/// [`anonymize`] with the lattice search fanned out over `threads` worker
/// threads (0 = all available cores). Same result, shorter wall clock: the
/// search outcome is deterministic, so ranking sees identical inputs.
pub fn anonymize_parallel<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    metric: UtilityMetric,
    threads: usize,
) -> Result<AnonymizationOutcome, AnonymizeError> {
    let outcome = crate::search::find_minimal_safe_parallel(table, lattice, criterion, threads)?;
    rank_and_report(table, lattice, metric, outcome)
}

fn rank_and_report(
    table: &Table,
    lattice: &GeneralizationLattice,
    metric: UtilityMetric,
    outcome: crate::search::SearchOutcome,
) -> Result<AnonymizationOutcome, AnonymizeError> {
    let node = pick_best(metric, lattice, table, &outcome.minimal_nodes)?
        .ok_or(AnonymizeError::NoSafeNode)?;
    let bucketization = lattice.bucketize(table, &node)?;
    let utility_score = metric.score(lattice, table, &node)?;
    Ok(AnonymizationOutcome {
        node,
        bucketization,
        minimal_nodes: outcome.minimal_nodes,
        evaluated: outcome.evaluated,
        utility_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{CkSafetyCriterion, KAnonymity};
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn setup() -> (Table, GeneralizationLattice) {
        let t = hospital_table();
        let zip = t.column(1).dictionary().clone();
        let age = t.column(2).dictionary().clone();
        let sex = t.column(3).dictionary().clone();
        let l = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap();
        (t, l)
    }

    #[test]
    fn anonymize_with_k_anonymity() {
        let (t, l) = setup();
        let outcome =
            anonymize(&t, &l, &KAnonymity::new(5), UtilityMetric::Discernibility).unwrap();
        assert!(outcome.bucketization.min_bucket_size() >= 5);
        assert!(outcome.minimal_nodes.contains(&outcome.node));
        // The chosen node must truly be 5-anonymous and minimal.
        for p in l.predecessors(&outcome.node) {
            let pb = l.bucketize(&t, &p).unwrap();
            assert!(pb.min_bucket_size() < 5, "predecessor {p} also safe");
        }
    }

    #[test]
    fn anonymize_with_ck_safety_and_audit() {
        let (t, l) = setup();
        let criterion = CkSafetyCriterion::new(0.7, 1).unwrap();
        let outcome = anonymize(&t, &l, &criterion, UtilityMetric::Height).unwrap();
        let audit = outcome.audit(1).unwrap();
        assert!(audit.value < 0.7, "audit {} >= c", audit.value);
        // The witness knowledge must have at most k implications.
        assert!(audit.witness.k() <= 1);
    }

    #[test]
    fn impossible_criterion_errors() {
        let (t, l) = setup();
        let err =
            anonymize(&t, &l, &KAnonymity::new(11), UtilityMetric::Discernibility).unwrap_err();
        assert!(matches!(err, AnonymizeError::NoSafeNode));
    }

    #[test]
    fn stricter_criteria_push_higher_in_lattice() {
        let (t, l) = setup();
        let loose = anonymize(&t, &l, &KAnonymity::new(2), UtilityMetric::Height)
            .unwrap()
            .node;
        let strict = anonymize(&t, &l, &KAnonymity::new(10), UtilityMetric::Height)
            .unwrap()
            .node;
        assert!(loose.height() <= strict.height());
    }
}
