//! The Incognito algorithm [LeFevre, DeWitt, Ramakrishnan, SIGMOD 2005],
//! generalized to any ⪯-monotone privacy criterion.
//!
//! The paper's Section 3.4: "we can modify the Incognito algorithm, which
//! finds all the ⪯-minimal k-anonymous bucketizations, by simply replacing
//! the check for k-anonymity with the check for (c,k)-safety". This module
//! is that modification, done properly: the apriori-style iteration over
//! quasi-identifier **subsets**, not just the monotone BFS over the full
//! lattice.
//!
//! The load-bearing observation: grouping by a *subset* `Q' ⊆ Q` of the
//! quasi-identifiers (at the same levels) yields a **coarser** bucketization
//! than grouping by `Q`. For any criterion that is preserved by coarsening
//! (Theorem 14 for (c,k)-safety; classical for k-anonymity and ℓ-diversity)
//! the contrapositive prunes: *if a level vector already fails on a subset,
//! every extension of it to more attributes fails too.* Incognito therefore
//! computes the safe level-vectors subset-by-subset, of increasing size,
//! joining the size-`i−1` results to generate size-`i` candidates, and only
//! evaluates candidates that survive the join — typically far fewer
//! evaluations than the plain breadth-first search over the full lattice.

use std::collections::{HashMap, HashSet};

use wcbk_core::sched::{evaluate_work_stealing, MonotoneDag};
use wcbk_hierarchy::{GenNode, GeneralizationLattice};
use wcbk_table::Table;

use crate::search::{Schedule, SearchConfig};
use crate::{AnonymizeError, PrivacyCriterion};

/// Statistics and results of an Incognito run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncognitoOutcome {
    /// All ⪯-minimal safe nodes of the **full** lattice (same contract as
    /// [`crate::search::find_minimal_safe`]).
    pub minimal_nodes: Vec<GenNode>,
    /// Criterion evaluations actually performed, across all subsets.
    pub evaluated: usize,
    /// Per-subset-size candidate counts `(size, candidates, evaluated)` —
    /// the quantity Incognito's join is meant to shrink.
    pub per_size: Vec<(usize, usize, usize)>,
}

/// Runs generalized Incognito over the lattice's quasi-identifier subsets.
pub fn incognito<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<IncognitoOutcome, AnonymizeError> {
    incognito_with(table, lattice, criterion, &SearchConfig::with_threads(1))
}

/// [`incognito`] with candidate evaluations spread over worker threads
/// under the default (work-stealing) schedule (0 = all available cores) —
/// see [`incognito_with`].
pub fn incognito_parallel<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    threads: usize,
) -> Result<IncognitoOutcome, AnonymizeError> {
    incognito_with(
        table,
        lattice,
        criterion,
        &SearchConfig::with_threads(threads),
    )
}

/// [`incognito`] with an explicit [`SearchConfig`].
///
/// The apriori join is inherently sequential across subset sizes, but each
/// subset's surviving candidates form a monotone-pruned DAG of their own —
/// under [`Schedule::LevelSync`] it is drained one height at a time with
/// round-robin fan-out; under [`Schedule::WorkStealing`] it goes through
/// `wcbk_core::sched`'s whole-DAG scheduler (candidates become runnable as
/// their last in-set predecessor resolves; idle workers speculate). Either
/// way the outcome — minimal nodes, per-size evaluation counts, first-error
/// semantics — is identical to the sequential run's.
pub fn incognito_with<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    config: &SearchConfig,
) -> Result<IncognitoOutcome, AnonymizeError> {
    let threads = config.effective_threads();
    let n_dims = lattice.n_dims();
    // One table scan up front; every subset projection is evaluated from
    // rolled-up histograms. Signature-overflow tables fall back to
    // per-candidate `bucketize_subset` scans.
    let evaluator = crate::search::try_evaluator_capped(
        table,
        lattice,
        config.memo_capacity,
        config.scan_options(),
    )?;
    let mut evaluated_total = 0usize;
    let mut per_size = Vec::with_capacity(n_dims);
    // safe[subset-bitmask] = set of level vectors (over that subset's dims,
    // ascending dim order) that satisfy the criterion.
    let mut safe: HashMap<u32, HashSet<Vec<usize>>> = HashMap::new();
    safe.insert(0, HashSet::from([Vec::new()]));

    for size in 1..=n_dims {
        let mut candidates_this_size = 0usize;
        let mut evaluated_this_size = 0usize;
        for mask in subsets_of_size(n_dims, size) {
            let dims = mask_dims(mask);
            // Apriori join: a vector is a candidate iff each of its
            // (size-1)-subset projections was safe.
            let candidates = generate_candidates(lattice, mask, &dims, &safe);
            candidates_this_size += candidates.len();

            // Monotone-pruned drain restricted to the candidate set: a
            // candidate with a safe in-set predecessor is safe unseen.
            // (Predecessors outside the candidate set are unsafe — their
            // projections failed — so only in-set ones grant safety or gate
            // evaluation.)
            let mut by_height: Vec<Vec<Vec<usize>>> = Vec::new();
            for v in &candidates {
                let h: usize = v.iter().sum();
                if by_height.len() <= h {
                    by_height.resize(h + 1, Vec::new());
                }
                by_height[h].push(v.clone());
            }
            let candidate_set: HashSet<Vec<usize>> = candidates.into_iter().collect();
            let judge = |v: &Vec<usize>| -> Result<bool, AnonymizeError> {
                match &evaluator {
                    Some(eval) => criterion.is_satisfied_hist(&eval.histograms_subset(&dims, v)?),
                    None => {
                        let b = lattice.bucketize_subset(table, &dims, v)?;
                        criterion.is_satisfied(&b)
                    }
                }
            };
            let subset_safe = if threads > 1 && config.schedule == Schedule::WorkStealing {
                // The subset's candidate DAG through the work-stealing
                // scheduler — outcome-equivalent to the level loop below.
                let order: Vec<Vec<usize>> = by_height.into_iter().flatten().collect();
                let (safe_set, evaluated) =
                    steal_candidates(&order, &candidate_set, threads, &judge)?;
                evaluated_this_size += evaluated;
                safe_set
            } else {
                let mut subset_safe: HashSet<Vec<usize>> = HashSet::new();
                for level in by_height {
                    let mut to_eval: Vec<Vec<usize>> = Vec::new();
                    for v in level {
                        let inherited = predecessors(&v)
                            .into_iter()
                            .any(|p| candidate_set.contains(&p) && subset_safe.contains(&p));
                        if inherited {
                            subset_safe.insert(v);
                        } else {
                            to_eval.push(v);
                        }
                    }
                    evaluated_this_size += to_eval.len();
                    let verdicts = crate::search::parallel_verdicts(&to_eval, threads, judge)?;
                    for (v, ok) in to_eval.into_iter().zip(verdicts) {
                        if ok {
                            subset_safe.insert(v);
                        }
                    }
                }
                subset_safe
            };
            safe.insert(mask, subset_safe);
        }
        evaluated_total += evaluated_this_size;
        per_size.push((size, candidates_this_size, evaluated_this_size));
    }

    // The full-subset safe set; minimal elements are those with no safe
    // immediate predecessor.
    let full_mask = if n_dims == 32 {
        u32::MAX
    } else {
        (1u32 << n_dims) - 1
    };
    let full_safe = safe.remove(&full_mask).unwrap_or_default();
    let mut minimal_nodes: Vec<GenNode> = full_safe
        .iter()
        .filter(|v| predecessors(v).into_iter().all(|p| !full_safe.contains(&p)))
        .map(|v| GenNode(v.clone()))
        .collect();
    minimal_nodes.sort();
    Ok(IncognitoOutcome {
        minimal_nodes,
        evaluated: evaluated_total,
        per_size,
    })
}

/// Drains one subset's candidate DAG (candidates in height-major order,
/// edges between in-set immediate predecessors) through the work-stealing
/// scheduler. Returns the safe level vectors and the number of required
/// evaluations — both identical to what the level-synchronous loop computes.
fn steal_candidates<F>(
    order: &[Vec<usize>],
    candidate_set: &HashSet<Vec<usize>>,
    threads: usize,
    judge: &F,
) -> Result<(HashSet<Vec<usize>>, usize), AnonymizeError>
where
    F: Fn(&Vec<usize>) -> Result<bool, AnonymizeError> + Sync,
{
    use wcbk_core::sched::NodeResolution;

    let index: HashMap<&Vec<usize>, u32> = order
        .iter()
        .enumerate()
        .map(|(i, v)| (v, i as u32))
        .collect();
    let preds: Vec<Vec<u32>> = order
        .iter()
        .map(|v| {
            predecessors(v)
                .iter()
                .filter(|p| candidate_set.contains(*p))
                .map(|p| index[p])
                .collect::<Vec<u32>>()
        })
        .collect();
    let dag = MonotoneDag::new(preds);
    let outcome = evaluate_work_stealing(&dag, threads, true, |i| judge(&order[i]))?;
    let safe_set: HashSet<Vec<usize>> = outcome
        .resolutions
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            matches!(
                r,
                NodeResolution::PrunedSafe | NodeResolution::EvaluatedSafe
            )
        })
        .map(|(i, _)| order[i].clone())
        .collect();
    Ok((safe_set, outcome.evaluated))
}

/// All bitmasks over `n` dims with exactly `size` bits set, ascending.
fn subsets_of_size(n: usize, size: usize) -> Vec<u32> {
    (0u32..(1 << n))
        .filter(|m| m.count_ones() as usize == size)
        .collect()
}

/// The dim indices of a bitmask, ascending.
fn mask_dims(mask: u32) -> Vec<usize> {
    (0..32).filter(|&d| mask & (1 << d) != 0).collect()
}

/// Candidate level vectors for `mask`: the apriori join of its
/// (size−1)-subset safe sets.
fn generate_candidates(
    lattice: &GeneralizationLattice,
    mask: u32,
    dims: &[usize],
    safe: &HashMap<u32, HashSet<Vec<usize>>>,
) -> Vec<Vec<usize>> {
    // Seed from the subset missing the last dim, extended by every level of
    // the last dim; then filter through the remaining (size-1)-subsets.
    let last = *dims.last().expect("subsets are non-empty");
    let seed_mask = mask & !(1 << last);
    let empty = HashSet::new();
    let seeds = safe.get(&seed_mask).unwrap_or(&empty);
    let n_levels = lattice.hierarchy(last).n_levels();
    let mut out = Vec::new();
    for seed in seeds {
        'level: for level in 0..n_levels {
            let mut v = seed.clone();
            v.push(level);
            // Check the other (size-1)-subset projections.
            for (drop_pos, &drop_dim) in dims.iter().enumerate() {
                if drop_dim == last {
                    continue;
                }
                let sub_mask = mask & !(1 << drop_dim);
                let mut proj = v.clone();
                proj.remove(drop_pos);
                match safe.get(&sub_mask) {
                    Some(set) if set.contains(&proj) => {}
                    _ => continue 'level,
                }
            }
            out.push(v);
        }
    }
    out
}

/// Immediate predecessors of a level vector (one coordinate, one level down).
fn predecessors(v: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for (i, &level) in v.iter().enumerate() {
        if level > 0 {
            let mut p = v.to_vec();
            p[i] = level - 1;
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{CkSafetyCriterion, DistinctLDiversity, KAnonymity};
    use crate::search::find_minimal_safe;
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn lattice(table: &Table) -> GeneralizationLattice {
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap()
    }

    fn sorted(mut nodes: Vec<GenNode>) -> Vec<GenNode> {
        nodes.sort();
        nodes
    }

    #[test]
    fn incognito_matches_bfs_for_k_anonymity() {
        let t = hospital_table();
        let l = lattice(&t);
        for k in [2u64, 3, 5, 10, 11] {
            let inc = incognito(&t, &l, &KAnonymity::new(k)).unwrap();
            let bfs = find_minimal_safe(&t, &l, &KAnonymity::new(k)).unwrap();
            assert_eq!(
                inc.minimal_nodes,
                sorted(bfs.minimal_nodes),
                "k={k} mismatch"
            );
        }
    }

    #[test]
    fn incognito_matches_bfs_for_ck_safety() {
        let t = hospital_table();
        let l = lattice(&t);
        for (c, k) in [(0.5, 0), (0.7, 1), (0.9, 1), (1.0, 2), (0.45, 0)] {
            let inc = incognito(&t, &l, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            let bfs = find_minimal_safe(&t, &l, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            assert_eq!(
                inc.minimal_nodes,
                sorted(bfs.minimal_nodes),
                "(c,k)=({c},{k}) mismatch"
            );
        }
    }

    #[test]
    fn incognito_matches_bfs_for_l_diversity() {
        let t = hospital_table();
        let l = lattice(&t);
        for ell in [2usize, 3, 4, 6] {
            let inc = incognito(&t, &l, &DistinctLDiversity::new(ell)).unwrap();
            let bfs = find_minimal_safe(&t, &l, &DistinctLDiversity::new(ell)).unwrap();
            assert_eq!(inc.minimal_nodes, sorted(bfs.minimal_nodes), "l={ell}");
        }
    }

    #[test]
    fn subset_pruning_reduces_candidates() {
        // With an unsatisfiable criterion, size-1 subsets all fail and no
        // larger candidates are ever generated.
        let t = hospital_table();
        let l = lattice(&t);
        let inc = incognito(&t, &l, &KAnonymity::new(11)).unwrap();
        assert!(inc.minimal_nodes.is_empty());
        let size2_candidates = inc.per_size[1].1;
        assert_eq!(size2_candidates, 0, "join should have emptied level 2");
    }

    #[test]
    fn per_size_accounting_is_consistent() {
        let t = hospital_table();
        let l = lattice(&t);
        let inc = incognito(&t, &l, &KAnonymity::new(5)).unwrap();
        assert_eq!(inc.per_size.len(), 3);
        let total: usize = inc.per_size.iter().map(|&(_, _, e)| e).sum();
        assert_eq!(total, inc.evaluated);
        for &(size, candidates, evaluated) in &inc.per_size {
            assert!(evaluated <= candidates, "size {size}");
        }
    }

    #[test]
    fn helpers_behave() {
        assert_eq!(subsets_of_size(3, 2), vec![0b011, 0b101, 0b110]);
        assert_eq!(mask_dims(0b101), vec![0, 2]);
        assert_eq!(predecessors(&[1, 0, 2]), vec![vec![0, 0, 2], vec![1, 0, 1]]);
        assert!(predecessors(&[0, 0]).is_empty());
    }
}
