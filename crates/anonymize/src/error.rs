//! Error type for anonymization search.

use std::fmt;

use wcbk_core::CoreError;
use wcbk_hierarchy::HierarchyError;

/// Errors from criteria evaluation and lattice search.
#[derive(Debug)]
pub enum AnonymizeError {
    /// A core-algorithm failure (bucketization construction, DP, threshold).
    Core(CoreError),
    /// A hierarchy/lattice failure.
    Hierarchy(HierarchyError),
    /// No node of the lattice satisfies the criterion (not even the top).
    NoSafeNode,
    /// A chain handed to binary search was not monotone fine→coarse.
    ChainNotMonotone {
        /// Index of the first out-of-order step.
        at: usize,
    },
    /// A parameter was out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for AnonymizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonymizeError::Core(e) => write!(f, "{e}"),
            AnonymizeError::Hierarchy(e) => write!(f, "{e}"),
            AnonymizeError::NoSafeNode => {
                write!(
                    f,
                    "no generalization in the lattice satisfies the criterion"
                )
            }
            AnonymizeError::ChainNotMonotone { at } => {
                write!(f, "chain is not monotone fine-to-coarse at step {at}")
            }
            AnonymizeError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for AnonymizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnonymizeError::Core(e) => Some(e),
            AnonymizeError::Hierarchy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for AnonymizeError {
    fn from(e: CoreError) -> Self {
        AnonymizeError::Core(e)
    }
}

impl From<HierarchyError> for AnonymizeError {
    fn from(e: HierarchyError) -> Self {
        AnonymizeError::Hierarchy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AnonymizeError = CoreError::EmptyBucketization.into();
        assert!(e.to_string().contains("no buckets"));
        let e: AnonymizeError = HierarchyError::NoLevels("Age".into()).into();
        assert!(e.to_string().contains("Age"));
        assert!(AnonymizeError::NoSafeNode.to_string().contains("lattice"));
    }
}
