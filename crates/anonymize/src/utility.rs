//! Utility metrics for ranking safe generalizations.
//!
//! Minimal sanitization preserves utility (the paper's motivation for the
//! `⪯`-minimality requirement); when several minimal nodes exist, a utility
//! metric picks among them ("return the one that maximizes a specified
//! utility function", Section 3.4).

use wcbk_core::Bucketization;
use wcbk_hierarchy::{GenNode, GeneralizationLattice};
use wcbk_table::Table;

use crate::AnonymizeError;

/// A utility metric; **lower scores are better** for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilityMetric {
    /// Discernibility penalty `Σ_b n_b²` [Bayardo & Agrawal] — penalizes
    /// large equivalence classes.
    Discernibility,
    /// Average equivalence-class size `n / |B|`.
    AverageClassSize,
    /// Total generalization height `Σ levels` — fewer coarsening steps are
    /// better.
    Height,
    /// Negated minimum bucket entropy — prefer anonymizations whose least
    /// diverse bucket is most diverse (the Figure 6 axis).
    NegMinEntropy,
    /// Loss metric (Iyengar's LM / normalized certainty penalty): the mean,
    /// over cells, of `(leaves(group) − 1) / (|domain| − 1)` — 0 for exact
    /// values, 1 for full suppression.
    LossMetric,
}

impl UtilityMetric {
    /// Scores `node` (lower is better). Metrics needing the data receive the
    /// induced bucketization.
    pub fn score(
        &self,
        lattice: &GeneralizationLattice,
        table: &Table,
        node: &GenNode,
    ) -> Result<f64, AnonymizeError> {
        match self {
            UtilityMetric::Height => Ok(node.height() as f64),
            UtilityMetric::LossMetric => Ok(loss_metric(lattice, table, node)?),
            _ => {
                let b = lattice.bucketize(table, node)?;
                Ok(self.score_bucketization(&b))
            }
        }
    }

    /// Scores a pre-computed bucketization (node-dependent metrics — Height,
    /// LossMetric — fall back to 0 since a bucketization alone carries no
    /// generalization information).
    pub fn score_bucketization(&self, b: &Bucketization) -> f64 {
        match self {
            UtilityMetric::Discernibility => discernibility(b) as f64,
            UtilityMetric::AverageClassSize => average_class_size(b),
            UtilityMetric::Height | UtilityMetric::LossMetric => 0.0,
            UtilityMetric::NegMinEntropy => -b.min_bucket_entropy(),
        }
    }
}

/// The loss metric of a generalization: mean over (row, quasi-identifier)
/// cells of `(leaves(cell's group) − 1) / (|attribute domain| − 1)`; an
/// attribute with a single base value contributes 0.
pub fn loss_metric(
    lattice: &GeneralizationLattice,
    table: &Table,
    node: &GenNode,
) -> Result<f64, AnonymizeError> {
    lattice.validate(node)?;
    if table.n_rows() == 0 || lattice.n_dims() == 0 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for (d, &level) in node.0.iter().enumerate() {
        let h = lattice.hierarchy(d);
        let sizes = h.group_sizes(level);
        let domain = h.group_sizes(0).len();
        if domain <= 1 {
            continue;
        }
        let column = table.column(lattice.column(d));
        let mut attr_loss = 0.0;
        for row in 0..table.n_rows() {
            let g = h.generalize(level, column.code(row));
            attr_loss += (sizes[g as usize] - 1) as f64 / (domain - 1) as f64;
        }
        total += attr_loss / table.n_rows() as f64;
    }
    Ok(total / lattice.n_dims() as f64)
}

/// Discernibility penalty `Σ_b n_b²`.
pub fn discernibility(b: &Bucketization) -> u128 {
    b.buckets()
        .iter()
        .map(|bucket| {
            let n = bucket.n() as u128;
            n * n
        })
        .sum()
}

/// Average equivalence-class size `n / |B|`.
pub fn average_class_size(b: &Bucketization) -> f64 {
    b.n_tuples() as f64 / b.n_buckets() as f64
}

/// Picks the best node (lowest score) among `candidates`; ties broken by the
/// lattice node order (deterministic).
pub fn pick_best(
    metric: UtilityMetric,
    lattice: &GeneralizationLattice,
    table: &Table,
    candidates: &[GenNode],
) -> Result<Option<GenNode>, AnonymizeError> {
    let mut best: Option<(f64, GenNode)> = None;
    for node in candidates {
        let s = metric.score(lattice, table, node)?;
        let better = match &best {
            None => true,
            Some((bs, bn)) => s < *bs || (s == *bs && node < bn),
        };
        if better {
            best = Some((s, node.clone()));
        }
    }
    Ok(best.map(|(_, n)| n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn setup() -> (Table, GeneralizationLattice) {
        let t = hospital_table();
        let zip = t.column(1).dictionary().clone();
        let sex = t.column(3).dictionary().clone();
        let l = GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap();
        (t, l)
    }

    #[test]
    fn discernibility_prefers_finer() {
        let (t, l) = setup();
        let fine = l.bucketize(&t, &l.bottom()).unwrap();
        let coarse = l.bucketize(&t, &l.top()).unwrap();
        assert!(discernibility(&fine) < discernibility(&coarse));
        assert_eq!(discernibility(&coarse), 100);
    }

    #[test]
    fn average_class_size_values() {
        let (t, l) = setup();
        let coarse = l.bucketize(&t, &l.top()).unwrap();
        assert_eq!(average_class_size(&coarse), 10.0);
    }

    #[test]
    fn height_scores_node_directly() {
        let (t, l) = setup();
        let s = UtilityMetric::Height.score(&l, &t, &l.top()).unwrap();
        assert_eq!(s, 2.0);
        let s = UtilityMetric::Height.score(&l, &t, &l.bottom()).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn neg_min_entropy_prefers_diverse() {
        let (t, l) = setup();
        // Top (one bucket of 10, 6 values) is more diverse than the
        // sex-split buckets.
        let top_score = UtilityMetric::NegMinEntropy
            .score(&l, &t, &l.top())
            .unwrap();
        let split = GenNode(vec![1, 0]);
        let split_score = UtilityMetric::NegMinEntropy.score(&l, &t, &split).unwrap();
        assert!(top_score < split_score);
    }

    #[test]
    fn loss_metric_bounds_and_monotonicity() {
        let (t, l) = setup();
        // Bottom: no generalization, loss 0. Top: full suppression, loss 1.
        let bottom = UtilityMetric::LossMetric
            .score(&l, &t, &l.bottom())
            .unwrap();
        assert!(bottom.abs() < 1e-12);
        let top = UtilityMetric::LossMetric.score(&l, &t, &l.top()).unwrap();
        assert!((top - 1.0).abs() < 1e-12);
        // Intermediate node: strictly between, and monotone along the chain.
        let mut prev = -1.0;
        for node in l.maximal_chain() {
            let s = UtilityMetric::LossMetric.score(&l, &t, &node).unwrap();
            assert!(s >= prev - 1e-12, "loss not monotone at {node}");
            assert!((0.0..=1.0 + 1e-12).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn pick_best_is_deterministic() {
        let (t, l) = setup();
        let candidates = l.nodes();
        let best = pick_best(UtilityMetric::Discernibility, &l, &t, &candidates)
            .unwrap()
            .unwrap();
        assert_eq!(best, l.bottom());
        assert_eq!(
            pick_best(UtilityMetric::Discernibility, &l, &t, &[]).unwrap(),
            None
        );
    }
}
