//! # wcbk-anonymize — finding safe bucketizations (Section 3.4)
//!
//! The paper plugs the (c,k)-safety check into existing lattice-search
//! frameworks: "we can modify the Incognito algorithm … by simply replacing
//! the check for k-anonymity with the check for (c,k)-safety". This crate
//! supplies that machinery:
//!
//! * [`PrivacyCriterion`] — the pluggable predicate interface, with
//!   implementations for **k-anonymity** [Samarati & Sweeney],
//!   **distinct/entropy/recursive ℓ-diversity** [Machanavajjhala et al.] and
//!   **(c,k)-safety** (Definition 13, backed by the `wcbk-core` engine).
//!   All of these are monotone w.r.t. the generalization lattice
//!   (Theorem 14 for (c,k)-safety), which the searches exploit.
//! * [`search`] — bottom-up breadth-first search over a
//!   [`GeneralizationLattice`](wcbk_hierarchy::GeneralizationLattice) with
//!   monotone pruning, returning **all ⪯-minimal safe nodes**; plus binary
//!   search along chains (the "logarithmic in the height of the lattice"
//!   observation below Definition 13).
//! * [`utility`] — utility metrics for choosing among minimal safe nodes
//!   (discernibility penalty, average class size, generalization height,
//!   minimum bucket entropy).
//! * [`pipeline`] — a one-call anonymizer: search, rank by utility, return
//!   the chosen node, its bucketization and a disclosure report.
//! * [`session`] — the dataset-handle API: a [`DatasetSession`] is built
//!   once from table + hierarchies (one scan), then serves audits,
//!   searches, sweeps, and sequential-release composition checks forever —
//!   the register-once surface the `wcbk-serve` resource endpoints and the
//!   CLI both run on.
//! * Pluggable adversaries: [`ModelSafetyCriterion`] judges safety under
//!   any registered [`AdversaryModel`] (see [`wcbk_adversary`]), and the
//!   session's `audit_model` / `audit_composition_model` paths thread a
//!   [`ModelId`] through audits, releases, and composition checks — with
//!   the conjunction model bit-identical to the classic (c,k) paths.

pub mod anatomy;
pub mod criteria;
mod error;
pub mod incognito;
pub mod pipeline;
pub mod search;
pub mod session;
pub mod swap;
pub mod utility;

pub use anatomy::{anatomize, AnatomyOutcome};
pub use criteria::{
    CkSafetyCriterion, DistinctLDiversity, EntropyLDiversity, KAnonymity, ModelSafetyCriterion,
    PrivacyCriterion, RecursiveCLDiversity,
};
pub use error::AnonymizeError;
pub use incognito::{incognito, incognito_parallel, incognito_with, IncognitoOutcome};
pub use pipeline::{anonymize, anonymize_parallel, AnonymizationOutcome};
pub use search::{
    binary_search_chain, default_threads, find_minimal_safe, find_minimal_safe_parallel,
    find_minimal_safe_report, find_minimal_safe_rescan, find_minimal_safe_with, sweep_all,
    sweep_all_rescan, Schedule, SearchConfig, SearchOutcome, SearchReport,
};
pub use session::{
    AuditReport, CompositionReport, DatasetSession, ModelAuditReport, ModelCompositionReport,
    ReleaseReport, SessionOptions,
};
pub use swap::{swap_sanitize, SwapOutcome};
pub use utility::UtilityMetric;
pub use wcbk_adversary::{
    AdversaryModel, CompositionStyle, ModelId, ModelWitness, MODEL_IDS, MODEL_NAMES,
};
pub use wcbk_hierarchy::ScanOptions;
