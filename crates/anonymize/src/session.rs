//! The dataset-handle API: **register once, audit forever**.
//!
//! The paper's core loop — publish a candidate generalization, check
//! worst-case (c,k)-disclosure, refine — is inherently *repeated* against
//! one table, and sequential-release monitoring makes the same table the
//! unit of many audits over time. A [`DatasetSession`] is that unit made
//! first-class: built **once** from a table plus its generalization
//! lattice, it owns
//!
//! * the shared roll-up [`NodeEvaluator`] (one columnar scan, built
//!   lazily on first need; every later audit and search derives histograms
//!   from the memo, never re-reading rows),
//! * the exact-quasi-identifier [`Bucketization`] (the `wcbk audit`
//!   grouping, for witness reconstruction),
//! * a [`dataset_fingerprint`] — the stable content identity services key
//!   handles by,
//! * a per-`k` [`EngineRegistry`] (own or shared with other sessions), and
//! * a per-release history for sequential-release composition audits
//!   (riding [`DisclosureEngine::incremental_set`]).
//!
//! Every method returns the **same types as the one-shot entry points**
//! ([`SearchReport`], [`DisclosureResult`], …) with bit-identical values —
//! pinned by `tests/session_equivalence.rs` — so "one-shot" is just
//! "register → run → drop" over this API.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use wcbk_adversary::{CompositionStyle, ModelId, ModelWitness};
use wcbk_core::{
    Bucketization, CkSafety, DisclosureEngine, DisclosureResult, EngineRegistry, HistogramSet,
    IncrementalDisclosure, SensitiveHistogram,
};
use wcbk_hierarchy::{
    dataset_fingerprint, GenNode, GeneralizationLattice, NodeEvaluator, RollupStats, ScanOptions,
};
use wcbk_table::{SValue, Table, TupleId};

use crate::search::{minimal_safe_over, sweep_over, try_evaluator_shared, SearchConfig};
use crate::{AnonymizeError, PrivacyCriterion, SearchReport};

/// Construction knobs for a [`DatasetSession`].
#[derive(Default, Clone)]
pub struct SessionOptions {
    /// Group budget for the session's roll-up memo (`None` = unbounded);
    /// fixed at registration — per-search configs cannot change it, because
    /// rebuilding the evaluator would re-scan the table.
    pub memo_capacity: Option<usize>,
    /// The per-`k` engine registry to draw [`DisclosureEngine`]s from.
    /// `None` gives the session a private unbounded registry; services pass
    /// one shared registry so MINIMIZE1 tables memoized through any session
    /// serve every other.
    pub engines: Option<Arc<EngineRegistry>>,
    /// Worker threads for the evaluator's one bottom scan (`0` = all
    /// available cores). Bit-neutral — results never depend on it.
    pub scan_threads: usize,
}

/// One audit of the registered dataset: maximum disclosure (with the
/// worst-case witness) at attacker power `k`, plus the (c,k)-safety verdict
/// when a threshold was given. Field values are bit-identical to the
/// one-shot `wcbk audit` path.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Buckets of the exact-quasi-identifier grouping.
    pub buckets: usize,
    /// Tuples in the table.
    pub tuples: u64,
    /// Sensitive domain size.
    pub domain: u32,
    /// Attacker power bound.
    pub k: usize,
    /// Maximum disclosure and its witness.
    pub disclosure: DisclosureResult,
    /// The threshold checked, when given.
    pub c: Option<f64>,
    /// The (c,k)-safety verdict, when `c` was given.
    pub safe: Option<bool>,
}

/// One recorded release of the dataset (a lattice node's bucketization
/// added to the sequential-release history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseReport {
    /// Zero-based index of this release in the session history.
    pub index: usize,
    /// The node released.
    pub node: GenNode,
    /// Buckets this release contributed.
    pub buckets: usize,
    /// Total buckets across the whole history after this release.
    pub total_buckets: usize,
    /// The adversary model this release was audited under.
    pub model: ModelId,
}

/// A composition audit over **all** recorded releases: the attacker sees
/// every released bucket at once, so maximum disclosure is computed over
/// their union (through [`DisclosureEngine::incremental_set`], so per-bucket
/// MINIMIZE1 work stays cached in the shared engine).
#[derive(Debug, Clone)]
pub struct CompositionReport {
    /// Releases composed.
    pub releases: usize,
    /// Buckets in the union.
    pub buckets: usize,
    /// Attacker power bound.
    pub k: usize,
    /// Maximum disclosure over the union of released buckets.
    pub value: f64,
    /// The threshold checked, when given.
    pub c: Option<f64>,
    /// Whether `value < c`, when `c` was given.
    pub safe: Option<bool>,
}

/// An audit of the exact-quasi-identifier grouping under a pluggable
/// [`AdversaryModel`](wcbk_adversary::AdversaryModel) — the model-generic
/// counterpart of [`AuditReport`]. Under [`ModelId::Conjunction`] the value
/// is bit-identical to [`AuditReport::disclosure`]'s.
#[derive(Debug, Clone)]
pub struct ModelAuditReport {
    /// The model the bound was computed under.
    pub model: ModelId,
    /// Buckets of the exact-quasi-identifier grouping.
    pub buckets: usize,
    /// Tuples in the table.
    pub tuples: u64,
    /// Sensitive domain size.
    pub domain: u32,
    /// Attacker power bound.
    pub k: usize,
    /// The model's worst-case disclosure bound.
    pub value: f64,
    /// An adversary achieving the bound.
    pub witness: ModelWitness,
    /// The threshold checked, when given.
    pub c: Option<f64>,
    /// Whether `value < c`, when `c` was given.
    pub safe: Option<bool>,
}

/// A composition audit under a pluggable model — the model-generic
/// counterpart of [`CompositionReport`]. `buckets` counts the **effective**
/// buckets the adversary attacks: the released buckets for
/// union-of-buckets models, the common-refinement cells for
/// [`ModelId::Sequential`].
#[derive(Debug, Clone)]
pub struct ModelCompositionReport {
    /// The model the bound was computed under.
    pub model: ModelId,
    /// Releases composed.
    pub releases: usize,
    /// Effective buckets audited (see type docs).
    pub buckets: usize,
    /// Attacker power bound.
    pub k: usize,
    /// The model's worst-case disclosure bound over the composition.
    pub value: f64,
    /// The threshold checked, when given.
    pub c: Option<f64>,
    /// Whether `value < c`, when `c` was given.
    pub safe: Option<bool>,
}

/// The sequential-release history: released bucket histograms in release
/// order, plus per-release bookkeeping (node, buckets contributed, and the
/// adversary model the release was audited under).
struct ReleaseHistory {
    histograms: Vec<SensitiveHistogram>,
    per_release: Vec<(GenNode, usize, ModelId)>,
}

/// Persistent union-of-buckets composition state for one attacker power
/// `k`: the prefix/suffix MINIMIZE2 tables over every released bucket
/// folded in so far. A later audit only pushes the buckets released since
/// `folded` — the O(new buckets) contract — and pushing is bit-identical
/// to a fresh [`DisclosureEngine::incremental_set`] build because `push`
/// rebuilds the tables from the full cost list.
struct UnionComp {
    /// Buckets of the history already folded into `inc`.
    folded: usize,
    inc: IncrementalDisclosure,
}

/// Persistent common-refinement composition state (model-independent): for
/// each row, the id of its cell in the common refinement of every release
/// folded in so far. Folding a release is one bucketize + one O(rows)
/// renumbering; audits with no new release reuse the cells as-is.
struct RefinementComp {
    /// Releases already folded into `cells`.
    applied: usize,
    /// Per-row refinement cell ids, numbered by first appearance in row
    /// order (deterministic, so rebuilt sessions re-derive identical ids).
    cells: Vec<u32>,
    n_cells: u32,
}

/// The per-session composition caches, keyed off the release history they
/// mirror; cleared together with it.
#[derive(Default)]
struct CompositionCache {
    union: HashMap<usize, UnionComp>,
    refinement: Option<RefinementComp>,
}

/// A registered dataset: table + lattice + shared evaluation state — see
/// the module docs.
///
/// The expensive pieces (roll-up evaluator, exact grouping, fingerprint)
/// are built **lazily, at most once**: a transient register → audit → drop
/// session only ever pays for the exact grouping, a register → search →
/// drop session only for the evaluator. Long-lived services force
/// everything up front (registration reports the fingerprint and the
/// evaluator's weight), after which every path is scan-free.
pub struct DatasetSession {
    table: Table,
    lattice: Arc<GeneralizationLattice>,
    memo_capacity: Option<usize>,
    scan_threads: usize,
    /// Lazily built; the inner `None` means the packed signature overflows
    /// 128 bits and searches fall back to per-node re-scans, exactly like
    /// the one-shot paths.
    evaluator: OnceLock<Option<NodeEvaluator>>,
    /// The exact-quasi-identifier grouping (the lattice bottom), lazily
    /// built for witness reconstruction.
    exact: OnceLock<Bucketization>,
    fingerprint: OnceLock<u64>,
    engines: Arc<EngineRegistry>,
    releases: Mutex<ReleaseHistory>,
    /// Incremental composition state (always locked **after** `releases`).
    comp: Mutex<CompositionCache>,
}

impl DatasetSession {
    /// Registers `table` under `lattice` with default options (private
    /// unbounded engine registry, unbounded memo). The roll-up evaluator
    /// scans the table once, on first need; every audit and search after
    /// that is scan-free.
    pub fn new(table: Table, lattice: GeneralizationLattice) -> Result<Self, AnonymizeError> {
        Self::with_options(table, lattice, SessionOptions::default())
    }

    /// [`DatasetSession::new`] with explicit [`SessionOptions`].
    pub fn with_options(
        table: Table,
        lattice: GeneralizationLattice,
        options: SessionOptions,
    ) -> Result<Self, AnonymizeError> {
        if table.is_empty() {
            return Err(AnonymizeError::InvalidParameter(
                "dataset session needs a non-empty table".into(),
            ));
        }
        Ok(Self {
            table,
            lattice: Arc::new(lattice),
            memo_capacity: options.memo_capacity,
            scan_threads: options.scan_threads,
            evaluator: OnceLock::new(),
            exact: OnceLock::new(),
            fingerprint: OnceLock::new(),
            engines: options
                .engines
                .unwrap_or_else(|| Arc::new(EngineRegistry::new())),
            releases: Mutex::new(ReleaseHistory {
                histograms: Vec::new(),
                per_release: Vec::new(),
            }),
            comp: Mutex::new(CompositionCache::default()),
        })
    }

    /// The shared evaluator, built (one table scan) on first need. `None`
    /// means the packed signature does not fit 128 bits — callers re-scan
    /// per node, like the one-shot paths.
    fn evaluator(&self) -> Option<&NodeEvaluator> {
        self.evaluator
            .get_or_init(|| {
                try_evaluator_shared(
                    &self.table,
                    Arc::clone(&self.lattice),
                    self.memo_capacity,
                    ScanOptions {
                        threads: self.scan_threads,
                        ..ScanOptions::default()
                    },
                )
                .unwrap_or(None)
            })
            .as_ref()
    }

    /// The exact-quasi-identifier grouping, built on first audit.
    fn exact(&self) -> &Bucketization {
        self.exact.get_or_init(|| {
            self.lattice
                .bucketize(&self.table, &self.lattice.bottom())
                .expect("a non-empty table bucketizes at the lattice bottom")
        })
    }

    /// The stable content identity of this dataset (schema roles, hierarchy
    /// maps, dictionaries, row codes) — what services key handles by.
    /// Computed once, on first request.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| dataset_fingerprint(&self.table, &self.lattice))
    }

    /// The registered table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The generalization lattice the session audits against.
    pub fn lattice(&self) -> &GeneralizationLattice {
        &self.lattice
    }

    /// The memo budget fixed at construction (`None` = unbounded). A
    /// durable catalog persists this so a rehydrated session is rebuilt
    /// with the same options it was registered with.
    pub fn memo_capacity(&self) -> Option<usize> {
        self.memo_capacity
    }

    /// The scan thread count fixed at construction (0 = sequential).
    pub fn scan_threads(&self) -> usize {
        self.scan_threads
    }

    /// Whether the roll-up pipeline is active (`false`: the packed
    /// signature overflowed and searches re-scan per node). Forces the
    /// evaluator build.
    pub fn has_evaluator(&self) -> bool {
        self.evaluator().is_some()
    }

    /// Cumulative roll-up counters since the evaluator's one scan (`None`
    /// when the signature-overflow fallback is active). Forces the
    /// evaluator build; `table_scans` stays `1` for the session's whole
    /// life afterwards — the register-once contract.
    pub fn rollup_stats(&self) -> Option<RollupStats> {
        self.evaluator().map(NodeEvaluator::stats)
    }

    /// Like [`rollup_stats`](Self::rollup_stats) but never forces the
    /// evaluator build: returns `None` both when the fallback is active and
    /// when no search has needed the evaluator yet. Profiling callers take
    /// their "before" snapshot through this so the one table scan stays
    /// inside the timed section instead of being pulled forward.
    pub fn rollup_stats_peek(&self) -> Option<RollupStats> {
        self.evaluator
            .get()
            .and_then(|e| e.as_ref())
            .map(NodeEvaluator::stats)
    }

    /// Whether `other` holds exactly the same dataset: same schema (names
    /// and roles), same row codes and dictionary values in every column,
    /// and the same lattice structure (columns, level maps). This is the
    /// collision check behind fingerprint-keyed handle stores — two
    /// distinct datasets colliding on [`fingerprint`](Self::fingerprint)
    /// must be rejected, never silently merged.
    pub fn same_dataset(&self, other: &DatasetSession) -> bool {
        let (a, b) = (&self.table, &other.table);
        if a.n_rows() != b.n_rows() || a.schema().arity() != b.schema().arity() {
            return false;
        }
        let same_attr = a
            .schema()
            .attributes()
            .iter()
            .zip(b.schema().attributes())
            .all(|(x, y)| x.name() == y.name() && x.kind() == y.kind());
        if !same_attr {
            return false;
        }
        for col in 0..a.schema().arity() {
            let (ca, cb) = (a.column(col), b.column(col));
            if ca.codes() != cb.codes() || ca.dictionary().values() != cb.dictionary().values() {
                return false;
            }
        }
        let (la, lb) = (&self.lattice, &other.lattice);
        if la.n_dims() != lb.n_dims() {
            return false;
        }
        (0..la.n_dims()).all(|d| {
            la.column(d) == lb.column(d)
                && la.hierarchy(d).attribute() == lb.hierarchy(d).attribute()
                && la.hierarchy(d).n_levels() == lb.hierarchy(d).n_levels()
                && (0..la.hierarchy(d).n_levels())
                    .all(|l| la.hierarchy(d).level_map(l) == lb.hierarchy(d).level_map(l))
        })
    }

    /// The shared engine for attacker power `k` (from the session's
    /// registry — pass one registry to many sessions to share MINIMIZE1
    /// tables across them).
    pub fn engine(&self, k: usize) -> Arc<DisclosureEngine> {
        self.engines.engine(k)
    }

    /// Audits the exact-quasi-identifier grouping at attacker power `k`:
    /// maximum disclosure with witness, plus the (c,k)-safety verdict when
    /// `c` is given. Bit-identical to `wcbk audit` / `POST /audit`.
    pub fn audit(&self, c: Option<f64>, k: usize) -> Result<AuditReport, AnonymizeError> {
        let engine = self.engines.engine(k);
        let exact = self.exact();
        let disclosure = engine.max_disclosure(exact)?;
        let safe = match c {
            Some(c) => {
                let safety = CkSafety::new(c, k)?;
                Some(safety.is_safe_with(&engine, exact)?)
            }
            None => None,
        };
        Ok(AuditReport {
            buckets: exact.n_buckets(),
            tuples: exact.n_tuples(),
            domain: exact.domain_size(),
            k,
            disclosure,
            c,
            safe,
        })
    }

    /// Finds all ⪯-minimal nodes satisfying `criterion`, through the
    /// session's shared evaluator — no table scan, whatever `config` says.
    /// The outcome is bit-identical to [`crate::find_minimal_safe_with`];
    /// the report's `rollup` is the session's **cumulative** counters
    /// (`config.memo_capacity` is ignored: the memo budget was fixed at
    /// registration).
    pub fn search<C: PrivacyCriterion>(
        &self,
        criterion: &C,
        config: &SearchConfig,
    ) -> Result<SearchReport, AnonymizeError> {
        let outcome = minimal_safe_over(
            &self.table,
            &self.lattice,
            self.evaluator(),
            criterion,
            config,
        )?;
        Ok(SearchReport {
            outcome,
            rollup: self.rollup_stats(),
        })
    }

    /// Evaluates `criterion` on **every** lattice node (the unpruned
    /// baseline), through the shared evaluator — bit-identical to
    /// [`crate::sweep_all`].
    pub fn sweep<C: PrivacyCriterion>(
        &self,
        criterion: &C,
    ) -> Result<Vec<(GenNode, bool)>, AnonymizeError> {
        sweep_over(&self.table, &self.lattice, self.evaluator(), criterion)
    }

    /// Records a release of `node`'s bucketization into the
    /// sequential-release history (histograms only — no tuple membership is
    /// retained, matching what a published anatomized table reveals). The
    /// release is tagged with the default (conjunction) adversary model.
    pub fn release(&self, node: &GenNode) -> Result<ReleaseReport, AnonymizeError> {
        self.release_with_model(node, ModelId::Conjunction)
    }

    /// [`DatasetSession::release`] tagged with the adversary model the
    /// release was audited under — what a durable catalog persists so the
    /// node rehydrates under the same model.
    pub fn release_with_model(
        &self,
        node: &GenNode,
        model: ModelId,
    ) -> Result<ReleaseReport, AnonymizeError> {
        let histograms: Vec<SensitiveHistogram> = match self.evaluator() {
            Some(eval) => eval.histograms(node)?.histograms().to_vec(),
            None => self
                .lattice
                .bucketize(&self.table, node)?
                .buckets()
                .iter()
                .map(|b| b.histogram().clone())
                .collect(),
        };
        let buckets = histograms.len();
        let mut history = self.releases.lock().expect("release history poisoned");
        history.histograms.extend(histograms);
        history.per_release.push((node.clone(), buckets, model));
        Ok(ReleaseReport {
            index: history.per_release.len() - 1,
            node: node.clone(),
            buckets,
            total_buckets: history.histograms.len(),
            model,
        })
    }

    /// The recorded release history as `(node, buckets)` pairs in release
    /// order. Replaying these nodes through [`DatasetSession::release`] on
    /// a fresh session of the same dataset reproduces the composition
    /// history bit-identically.
    pub fn release_history(&self) -> Vec<(GenNode, usize)> {
        self.releases
            .lock()
            .expect("release history poisoned")
            .per_release
            .iter()
            .map(|(node, buckets, _)| (node.clone(), *buckets))
            .collect()
    }

    /// The recorded release history with model tags, in release order —
    /// what a durable catalog persists and an export endpoint serves.
    pub fn release_history_models(&self) -> Vec<(GenNode, usize, ModelId)> {
        self.releases
            .lock()
            .expect("release history poisoned")
            .per_release
            .clone()
    }

    /// Number of releases recorded so far.
    pub fn releases(&self) -> usize {
        self.releases
            .lock()
            .expect("release history poisoned")
            .per_release
            .len()
    }

    /// Forgets the release history (the next composition starts empty)
    /// along with the incremental composition state derived from it.
    pub fn clear_releases(&self) {
        let mut history = self.releases.lock().expect("release history poisoned");
        let mut comp = self.comp.lock().expect("composition cache poisoned");
        history.histograms.clear();
        history.per_release.clear();
        *comp = CompositionCache::default();
    }

    /// Audits the **composition** of every recorded release: the attacker
    /// holds all released buckets at once, so maximum disclosure is
    /// computed over their union through a persistent per-`k`
    /// [`IncrementalDisclosure`] kept in the session. The first audit at a
    /// given `k` builds the full state; every later audit folds in only the
    /// buckets released since — O(new buckets) bucket-cost work, with the
    /// per-bucket MINIMIZE1 tables additionally cached in the shared
    /// engine. Because [`IncrementalDisclosure::push`] rebuilds from the
    /// full cost list, the folded value is bit-identical to a fresh
    /// [`DisclosureEngine::incremental_set`] over the whole union.
    ///
    /// Errors when no release has been recorded.
    pub fn audit_composition(
        &self,
        c: Option<f64>,
        k: usize,
    ) -> Result<CompositionReport, AnonymizeError> {
        let (releases, buckets, value) = self.union_composition_value(k)?;
        let safe = match c {
            Some(c) => {
                CkSafety::new(c, k)?;
                Some(value < c)
            }
            None => None,
        };
        Ok(CompositionReport {
            releases,
            buckets,
            k,
            value,
            c,
            safe,
        })
    }

    /// The union-of-buckets composition value at attacker power `k`,
    /// through the persistent per-`k` incremental state. Returns
    /// `(releases, buckets, value)`.
    fn union_composition_value(&self, k: usize) -> Result<(usize, usize, f64), AnonymizeError> {
        let history = self.releases.lock().expect("release history poisoned");
        if history.histograms.is_empty() {
            return Err(AnonymizeError::InvalidParameter(
                "composition audit needs at least one recorded release".into(),
            ));
        }
        let releases = history.per_release.len();
        let buckets = history.histograms.len();
        let engine = self.engines.engine(k);
        let mut comp = self.comp.lock().expect("composition cache poisoned");
        let value = match comp.union.entry(k) {
            Entry::Occupied(mut slot) => {
                let state = slot.get_mut();
                for h in &history.histograms[state.folded..] {
                    state.inc.push(engine.costs(h));
                }
                state.folded = buckets;
                state.inc.value()
            }
            Entry::Vacant(slot) => {
                let set = HistogramSet::new(
                    history.histograms.clone(),
                    self.table.sensitive_cardinality() as u32,
                )?;
                let inc = engine.incremental_set(&set)?;
                slot.insert(UnionComp {
                    folded: buckets,
                    inc,
                })
                .inc
                .value()
            }
        };
        Ok((releases, buckets, value))
    }

    /// Audits the exact-quasi-identifier grouping under the adversary
    /// `model` at attacker power `k`: the model's worst-case disclosure
    /// bound plus a reconstructed witness, and the safety verdict when `c`
    /// is given. Under [`ModelId::Conjunction`] the value is bit-identical
    /// to [`DatasetSession::audit`].
    pub fn audit_model(
        &self,
        model: ModelId,
        c: Option<f64>,
        k: usize,
    ) -> Result<ModelAuditReport, AnonymizeError> {
        let resolved = model.resolve(self.engines.engine(k));
        let exact = self.exact();
        let set = HistogramSet::from_bucketization(exact);
        let value = resolved.max_disclosure(&set)?;
        let witness = resolved.witness(&set)?;
        let safe = match c {
            Some(c) => {
                CkSafety::new(c, k)?;
                Some(value < c)
            }
            None => None,
        };
        Ok(ModelAuditReport {
            model,
            buckets: set.n_buckets(),
            tuples: set.n_tuples(),
            domain: set.domain_size(),
            k,
            value,
            witness,
            c,
            safe,
        })
    }

    /// Audits the composition of every recorded release under the adversary
    /// `model`, honoring the model's [`CompositionStyle`]:
    ///
    /// - [`CompositionStyle::UnionOfBuckets`] prices the union of all
    ///   released bucket histograms. Under [`ModelId::Conjunction`] this
    ///   rides the same persistent incremental state as
    ///   [`DatasetSession::audit_composition`], so the value is
    ///   bit-identical to that path; the stateless models price the union
    ///   set directly.
    /// - [`CompositionStyle::CommonRefinement`] intersects the released
    ///   groupings tuple-by-tuple (the linkage attacker knows each
    ///   individual appears in every release), prices the refined cells,
    ///   and keeps the refined partition in the session so each audit folds
    ///   in only releases recorded since the last one.
    ///
    /// Errors when no release has been recorded.
    pub fn audit_composition_model(
        &self,
        model: ModelId,
        c: Option<f64>,
        k: usize,
    ) -> Result<ModelCompositionReport, AnonymizeError> {
        let resolved = model.resolve(self.engines.engine(k));
        let (releases, buckets, value) = match resolved.composition() {
            CompositionStyle::UnionOfBuckets => {
                if matches!(model, ModelId::Conjunction) {
                    self.union_composition_value(k)?
                } else {
                    let history = self.releases.lock().expect("release history poisoned");
                    if history.histograms.is_empty() {
                        return Err(AnonymizeError::InvalidParameter(
                            "composition audit needs at least one recorded release".into(),
                        ));
                    }
                    let set = HistogramSet::new(
                        history.histograms.clone(),
                        self.table.sensitive_cardinality() as u32,
                    )?;
                    (
                        history.per_release.len(),
                        set.n_buckets(),
                        resolved.max_disclosure(&set)?,
                    )
                }
            }
            CompositionStyle::CommonRefinement => {
                let (releases, set) = self.refined_composition_set()?;
                (releases, set.n_buckets(), resolved.max_disclosure(&set)?)
            }
        };
        let safe = match c {
            Some(c) => {
                CkSafety::new(c, k)?;
                Some(value < c)
            }
            None => None,
        };
        Ok(ModelCompositionReport {
            model,
            releases,
            buckets,
            k,
            value,
            c,
            safe,
        })
    }

    /// The common refinement of all recorded releases as a histogram set,
    /// folding releases newer than the cached refined partition into it —
    /// each release costs one bucketization plus one pass over the rows.
    /// Cell ids are assigned by first appearance in row order, so replaying
    /// the same releases on a fresh session reproduces the partition (and
    /// therefore the priced set) bit-identically.
    fn refined_composition_set(&self) -> Result<(usize, HistogramSet), AnonymizeError> {
        let history = self.releases.lock().expect("release history poisoned");
        if history.per_release.is_empty() {
            return Err(AnonymizeError::InvalidParameter(
                "composition audit needs at least one recorded release".into(),
            ));
        }
        let releases = history.per_release.len();
        let rows = self.table.n_rows();
        let mut comp = self.comp.lock().expect("composition cache poisoned");
        let state = comp.refinement.get_or_insert_with(|| RefinementComp {
            applied: 0,
            cells: vec![0; rows],
            n_cells: 1,
        });
        for (node, _, _) in &history.per_release[state.applied..] {
            let grouping = self.lattice.bucketize(&self.table, node)?;
            let mut owner = vec![0u32; rows];
            for (b, bucket) in grouping.buckets().iter().enumerate() {
                for t in bucket.members() {
                    owner[t.index()] = b as u32;
                }
            }
            let mut renumber: HashMap<(u32, u32), u32> = HashMap::new();
            let mut next = 0u32;
            for (row, &own) in owner.iter().enumerate() {
                let key = (state.cells[row], own);
                let cell = *renumber.entry(key).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                state.cells[row] = cell;
            }
            state.n_cells = next;
        }
        state.applied = releases;
        let mut members: Vec<Vec<SValue>> = vec![Vec::new(); state.n_cells as usize];
        for row in 0..rows {
            members[state.cells[row] as usize]
                .push(self.table.sensitive_value(TupleId(row as u32)));
        }
        let histograms = members
            .iter()
            .map(|vals| SensitiveHistogram::from_values(vals))
            .collect();
        let set = HistogramSet::new(histograms, self.table.sensitive_cardinality() as u32)?;
        Ok((releases, set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_minimal_safe_with, sweep_all, Schedule};
    use crate::CkSafetyCriterion;
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn hospital_lattice(table: &Table) -> GeneralizationLattice {
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap()
    }

    fn session() -> DatasetSession {
        let table = hospital_table();
        let lattice = hospital_lattice(&table);
        DatasetSession::new(table, lattice).unwrap()
    }

    #[test]
    fn audit_matches_the_oneshot_engine_path() {
        let s = session();
        for k in 0..=2 {
            let report = s.audit(Some(0.9), k).unwrap();
            // The one-shot path: exact-QI grouping through a fresh engine.
            let table = hospital_table();
            let qi = [1usize, 2, 3];
            let b = Bucketization::from_grouping(&table, |t| {
                qi.iter()
                    .map(|&col| table.column(col).code(t.index()))
                    .collect::<Vec<u32>>()
            })
            .unwrap();
            let engine = DisclosureEngine::new(k);
            let direct = engine.max_disclosure(&b).unwrap();
            assert_eq!(
                report.disclosure.value.to_bits(),
                direct.value.to_bits(),
                "k={k}"
            );
            assert_eq!(report.disclosure.witness, direct.witness, "k={k}");
            assert_eq!(report.buckets, b.n_buckets());
            assert_eq!(report.tuples, b.n_tuples());
            assert_eq!(
                report.safe,
                Some(
                    CkSafety::new(0.9, k)
                        .unwrap()
                        .is_safe_with(&engine, &b)
                        .unwrap()
                )
            );
        }
    }

    #[test]
    fn repeated_audits_never_rescan() {
        let s = session();
        for _ in 0..5 {
            s.audit(Some(0.7), 1).unwrap();
        }
        let stats = s.rollup_stats().unwrap();
        assert_eq!(stats.table_scans, 1, "{stats:?}");
    }

    #[test]
    fn search_and_sweep_match_the_oneshot_paths() {
        let s = session();
        let table = hospital_table();
        let lattice = hospital_lattice(&table);
        for (c, k) in [(0.5, 0), (0.7, 1), (0.9, 1), (1.0, 2)] {
            for config in [
                SearchConfig::default(),
                SearchConfig {
                    threads: 3,
                    schedule: Schedule::WorkStealing,
                    ..Default::default()
                },
                SearchConfig {
                    threads: 2,
                    schedule: Schedule::LevelSync,
                    ..Default::default()
                },
            ] {
                let criterion = CkSafetyCriterion::new(c, k).unwrap();
                let via_session = s.search(&criterion, &config).unwrap();
                let direct = find_minimal_safe_with(
                    &table,
                    &lattice,
                    &CkSafetyCriterion::new(c, k).unwrap(),
                    &config,
                )
                .unwrap();
                assert_eq!(via_session.outcome, direct, "(c,k)=({c},{k}) {config:?}");
            }
            let via_session = s.sweep(&CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            let direct =
                sweep_all(&table, &lattice, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            assert_eq!(via_session, direct, "sweep (c,k)=({c},{k})");
        }
        // All of the above cost exactly one scan.
        assert_eq!(s.rollup_stats().unwrap().table_scans, 1);
    }

    #[test]
    fn shared_registry_shares_minimize1_tables() {
        let registry = Arc::new(EngineRegistry::new());
        let table = hospital_table();
        let lattice = hospital_lattice(&table);
        let s1 = DatasetSession::with_options(
            table.clone(),
            lattice.clone(),
            SessionOptions {
                memo_capacity: None,
                engines: Some(Arc::clone(&registry)),
                scan_threads: 0,
            },
        )
        .unwrap();
        s1.audit(None, 1).unwrap();
        let after_first = registry.stats().totals();
        assert!(after_first.misses > 0);
        // A second session over the same data hits the shared cache.
        let s2 = DatasetSession::with_options(
            table,
            lattice,
            SessionOptions {
                memo_capacity: None,
                engines: Some(registry.clone()),
                scan_threads: 0,
            },
        )
        .unwrap();
        s2.audit(None, 1).unwrap();
        let after_second = registry.stats().totals();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn composition_audit_rides_incremental_set() {
        let s = session();
        assert_eq!(s.releases(), 0);
        assert!(s.audit_composition(None, 1).is_err(), "empty history");

        let lattice = hospital_lattice(&hospital_table());
        let first = s.release(&lattice.top()).unwrap();
        assert_eq!(first.index, 0);
        assert_eq!(first.buckets, 1);
        let node = GenNode(vec![1, 2, 0]); // the Figure 3 by-sex split
        let second = s.release(&node).unwrap();
        assert_eq!(second.index, 1);
        assert_eq!(second.total_buckets, 3);

        let report = s.audit_composition(Some(0.9), 1).unwrap();
        assert_eq!(report.releases, 2);
        assert_eq!(report.buckets, 3);

        // Direct recomputation over the concatenated histograms.
        let table = hospital_table();
        let mut histograms: Vec<SensitiveHistogram> = Vec::new();
        for n in [lattice.top(), node] {
            let b = lattice.bucketize(&table, &n).unwrap();
            histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));
        }
        let set = HistogramSet::new(histograms, b_domain(&table)).unwrap();
        let engine = DisclosureEngine::new(1);
        let direct = engine.incremental_set(&set).unwrap().value();
        assert_eq!(report.value.to_bits(), direct.to_bits());
        assert_eq!(report.safe, Some(direct < 0.9));

        s.clear_releases();
        assert_eq!(s.releases(), 0);
    }

    fn b_domain(table: &Table) -> u32 {
        table.sensitive_cardinality() as u32
    }

    /// The conjunction model through the plugin surface is bit-identical
    /// to the classic audit path — value bits and safety verdict.
    #[test]
    fn model_audit_conjunction_is_bit_identical_to_plain_audit() {
        let s = session();
        for k in 0..=2 {
            let plain = s.audit(Some(0.9), k).unwrap();
            let model = s.audit_model(ModelId::Conjunction, Some(0.9), k).unwrap();
            assert_eq!(model.value.to_bits(), plain.disclosure.value.to_bits());
            assert_eq!(model.safe, plain.safe);
            assert_eq!(model.buckets, plain.buckets);
            assert_eq!(model.tuples, plain.tuples);
            assert_eq!(model.k, k);
            assert!(!model.witness.predicts.is_empty());
        }
    }

    /// The persistent per-`k` incremental state makes successive
    /// composition audits O(new buckets): a repeat audit does **zero**
    /// engine cost lookups, and an audit after one more release does at
    /// most that release's bucket count — observed through the shared
    /// engine's cache counters. Values stay bit-identical to full rebuilds.
    #[test]
    fn composition_cache_folds_only_new_buckets() {
        let s = session();
        let lattice = hospital_lattice(&hospital_table());
        let engine = s.engine(1);
        s.release(&lattice.top()).unwrap();
        s.release(&GenNode(vec![1, 2, 0])).unwrap();

        let first = s.audit_composition(None, 1).unwrap();
        let after_build = engine.stats();

        // No new release: the cached tables answer directly.
        let repeat = s.audit_composition(None, 1).unwrap();
        let after_repeat = engine.stats();
        assert_eq!(repeat.value.to_bits(), first.value.to_bits());
        assert_eq!(after_repeat.misses, after_build.misses);
        assert_eq!(after_repeat.hits, after_build.hits);

        // One more release: only its buckets get folded in.
        let third = s.release(&GenNode(vec![1, 1, 1])).unwrap();
        let report = s.audit_composition(None, 1).unwrap();
        let after_fold = engine.stats();
        let lookups =
            (after_fold.misses - after_repeat.misses) + (after_fold.hits - after_repeat.hits);
        assert!(
            lookups <= third.buckets as u64,
            "folded {} buckets with {lookups} cost lookups",
            third.buckets
        );

        // Bit-identical to a from-scratch rebuild over the whole union.
        let table = hospital_table();
        let mut histograms: Vec<SensitiveHistogram> = Vec::new();
        for n in [
            lattice.top(),
            GenNode(vec![1, 2, 0]),
            GenNode(vec![1, 1, 1]),
        ] {
            let b = lattice.bucketize(&table, &n).unwrap();
            histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));
        }
        let set = HistogramSet::new(histograms, b_domain(&table)).unwrap();
        let direct = DisclosureEngine::new(1).incremental_set(&set).unwrap();
        assert_eq!(report.value.to_bits(), direct.value().to_bits());
        assert_eq!(report.buckets, set.n_buckets());
    }

    /// `audit_composition_model` under the conjunction model rides the
    /// same incremental state as the plain path — identical reports.
    #[test]
    fn model_composition_conjunction_is_bit_identical_to_plain() {
        let s = session();
        let lattice = hospital_lattice(&hospital_table());
        s.release(&lattice.top()).unwrap();
        s.release(&GenNode(vec![1, 2, 0])).unwrap();
        for k in 0..=2 {
            let plain = s.audit_composition(Some(0.9), k).unwrap();
            let model = s
                .audit_composition_model(ModelId::Conjunction, Some(0.9), k)
                .unwrap();
            assert_eq!(model.value.to_bits(), plain.value.to_bits());
            assert_eq!(model.safe, plain.safe);
            assert_eq!(model.releases, plain.releases);
            assert_eq!(model.buckets, plain.buckets);
        }
    }

    /// The sequential model composes by **common refinement**: the linked
    /// adversary confines each tuple to the intersection of its buckets
    /// across releases, so the audited set is the per-row
    /// (bucket-in-A, bucket-in-B) partition — not the union of histograms.
    #[test]
    fn sequential_composition_prices_the_common_refinement() {
        let s = session();
        let table = hospital_table();
        let lattice = hospital_lattice(&table);
        let by_sex = GenNode(vec![1, 2, 0]);
        let by_age = GenNode(vec![1, 1, 1]);
        s.release_with_model(&by_sex, ModelId::Sequential).unwrap();
        s.release_with_model(&by_age, ModelId::Sequential).unwrap();
        let report = s
            .audit_composition_model(ModelId::Sequential, None, 1)
            .unwrap();

        // Manual refinement: group rows on their (bucket-in-A, bucket-in-B)
        // pair and price the resulting cells through the same engine.
        let a = lattice.bucketize(&table, &by_sex).unwrap();
        let b = lattice.bucketize(&table, &by_age).unwrap();
        let rows = table.n_rows();
        let mut owner_a = vec![0usize; rows];
        let mut owner_b = vec![0usize; rows];
        for (i, bucket) in a.buckets().iter().enumerate() {
            for t in bucket.members() {
                owner_a[t.index()] = i;
            }
        }
        for (i, bucket) in b.buckets().iter().enumerate() {
            for t in bucket.members() {
                owner_b[t.index()] = i;
            }
        }
        let mut cells: HashMap<(usize, usize), Vec<SValue>> = HashMap::new();
        for row in 0..rows {
            cells
                .entry((owner_a[row], owner_b[row]))
                .or_default()
                .push(table.sensitive_value(TupleId(row as u32)));
        }
        let histograms: Vec<SensitiveHistogram> = cells
            .values()
            .map(|vals| SensitiveHistogram::from_values(vals))
            .collect();
        assert_eq!(report.buckets, histograms.len());
        let set = HistogramSet::new(histograms, b_domain(&table)).unwrap();
        let direct = DisclosureEngine::new(1)
            .max_disclosure_value_set(&set)
            .unwrap();
        assert_eq!(report.value.to_bits(), direct.to_bits());

        // Folding is idempotent: a repeat audit reuses the cached cells.
        let repeat = s
            .audit_composition_model(ModelId::Sequential, None, 1)
            .unwrap();
        assert_eq!(repeat.value.to_bits(), report.value.to_bits());
        assert_eq!(repeat.buckets, report.buckets);

        // The linked adversary is at least as strong as union-of-buckets.
        let union = s.audit_composition(None, 1).unwrap();
        assert!(report.value >= union.value);
    }

    /// Stateless union models (distribution, minimality) price the union
    /// of released histograms directly.
    #[test]
    fn stateless_models_compose_over_the_union() {
        let s = session();
        let table = hospital_table();
        let lattice = hospital_lattice(&table);
        s.release(&lattice.top()).unwrap();
        s.release(&GenNode(vec![1, 2, 0])).unwrap();
        let mut histograms: Vec<SensitiveHistogram> = Vec::new();
        for n in [lattice.top(), GenNode(vec![1, 2, 0])] {
            let b = lattice.bucketize(&table, &n).unwrap();
            histograms.extend(b.buckets().iter().map(|x| x.histogram().clone()));
        }
        let set = HistogramSet::new(histograms, b_domain(&table)).unwrap();
        for model in [ModelId::Distribution, ModelId::Minimality] {
            let report = s.audit_composition_model(model, None, 2).unwrap();
            let direct = model.resolve(s.engine(2)).max_disclosure(&set).unwrap();
            assert_eq!(report.value.to_bits(), direct.to_bits());
            assert_eq!(report.buckets, set.n_buckets());
        }
    }

    /// `clear_releases` drops the incremental composition state along with
    /// the history — a later composition starts from scratch, not from
    /// stale tables or cells.
    #[test]
    fn clear_releases_resets_composition_state() {
        let s = session();
        let lattice = hospital_lattice(&hospital_table());
        s.release(&lattice.top()).unwrap();
        s.release(&GenNode(vec![1, 2, 0])).unwrap();
        s.audit_composition(None, 1).unwrap();
        s.audit_composition_model(ModelId::Sequential, None, 1)
            .unwrap();
        s.clear_releases();
        assert!(s.audit_composition(None, 1).is_err());

        s.release(&GenNode(vec![1, 2, 0])).unwrap();
        let after = s.audit_composition(None, 1).unwrap();
        let seq_after = s
            .audit_composition_model(ModelId::Sequential, None, 1)
            .unwrap();

        let fresh = session();
        fresh.release(&GenNode(vec![1, 2, 0])).unwrap();
        let expected = fresh.audit_composition(None, 1).unwrap();
        let seq_expected = fresh
            .audit_composition_model(ModelId::Sequential, None, 1)
            .unwrap();
        assert_eq!(after.value.to_bits(), expected.value.to_bits());
        assert_eq!(after.buckets, expected.buckets);
        assert_eq!(seq_after.value.to_bits(), seq_expected.value.to_bits());
        assert_eq!(seq_after.buckets, seq_expected.buckets);
    }

    /// Model tags ride the release history (what a durable catalog
    /// persists), while the untagged accessor stays shape-compatible.
    #[test]
    fn release_history_carries_model_tags() {
        let s = session();
        let lattice = hospital_lattice(&hospital_table());
        let plain = s.release(&lattice.top()).unwrap();
        assert_eq!(plain.model, ModelId::Conjunction);
        let tagged = s
            .release_with_model(&GenNode(vec![1, 2, 0]), ModelId::Distribution)
            .unwrap();
        assert_eq!(tagged.model, ModelId::Distribution);
        let tags: Vec<ModelId> = s
            .release_history_models()
            .into_iter()
            .map(|(_, _, m)| m)
            .collect();
        assert_eq!(tags, vec![ModelId::Conjunction, ModelId::Distribution]);
        assert_eq!(
            s.release_history(),
            s.release_history_models()
                .into_iter()
                .map(|(n, b, _)| (n, b))
                .collect::<Vec<_>>()
        );
    }

    /// The fingerprint-collision guard: identical datasets compare equal;
    /// any difference in rows, values, or hierarchy structure does not.
    #[test]
    fn same_dataset_detects_content_differences() {
        let table = hospital_table();
        let a = DatasetSession::new(table.clone(), hospital_lattice(&table)).unwrap();
        let b = DatasetSession::new(table.clone(), hospital_lattice(&table)).unwrap();
        assert!(a.same_dataset(&b));
        assert!(b.same_dataset(&a));

        // Different hierarchy structure over the same table.
        let zip = table.column(1).dictionary().clone();
        let narrower =
            GeneralizationLattice::new(vec![(1, Hierarchy::suppression("Zip", &zip))]).unwrap();
        let c = DatasetSession::new(table.clone(), narrower).unwrap();
        assert!(!a.same_dataset(&c));

        // Different rows.
        let mut builder = wcbk_table::TableBuilder::new(table.schema().clone());
        builder
            .push_row(&["Zed", "13068", "21", "M", "Flu"])
            .unwrap();
        let other = builder.build();
        let lattice = GeneralizationLattice::new(vec![(
            1,
            Hierarchy::suppression("Zip", other.column(1).dictionary()),
        )])
        .unwrap();
        let d = DatasetSession::new(other, lattice).unwrap();
        assert!(!c.same_dataset(&d));
    }

    #[test]
    fn empty_tables_are_rejected_at_registration() {
        let table = hospital_table();
        let schema = table.schema().clone();
        let empty = wcbk_table::TableBuilder::new(schema).build();
        let lattice = GeneralizationLattice::new(Vec::new()).unwrap();
        assert!(DatasetSession::new(empty, lattice).is_err());
    }

    #[test]
    fn zero_quasi_identifiers_means_one_bucket() {
        // An empty lattice (no dims) groups everything into one bucket —
        // the `wcbk audit` behavior with no --qi.
        let table = hospital_table();
        let lattice = GeneralizationLattice::new(Vec::new()).unwrap();
        let s = DatasetSession::new(table, lattice).unwrap();
        let report = s.audit(Some(0.9), 0).unwrap();
        assert_eq!(report.buckets, 1);
        assert_eq!(report.tuples, 10);
    }
}
