//! Data swapping [Dalenius & Reiss 1982] as a post-processing sanitizer.
//!
//! The paper lists data swapping ("which, like bucketization, also permutes
//! the sensitive values, but in more complex ways") as future work for the
//! framework. This module implements the classic rank-free variant: a
//! fraction of tuple pairs in *different* buckets exchange sensitive values.
//! The published object is still a bucketization — of the swapped table —
//! so the worst-case machinery applies verbatim; what changes is the
//! *semantics*: inferences now target possibly-swapped values, trading
//! per-tuple truthfulness (measured here as displacement) for lower
//! disclosure about the original values.
//!
//! Swapping preserves the global sensitive histogram (each swap moves one
//! value out of a bucket and another in), so aggregate one-way marginals
//! stay exact — the property that made swapping attractive to statistical
//! agencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcbk_core::{Bucket, Bucketization};
use wcbk_table::SValue;

use crate::AnonymizeError;

/// Result of a swapping pass.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// The bucketization of the swapped table.
    pub bucketization: Bucketization,
    /// Swap operations performed (each touches two tuples).
    pub swaps: usize,
    /// Tuples whose bucket histogram slot changed value (≤ 2·swaps; swaps
    /// of equal values displace nothing).
    pub displaced: usize,
}

/// Swaps sensitive values between `rate · n / 2` random cross-bucket pairs.
///
/// `rate` is the expected fraction of tuples touched (0 = no-op, 1 ≈ every
/// tuple swapped once on average). Requires at least two buckets.
pub fn swap_sanitize(
    b: &Bucketization,
    rate: f64,
    seed: u64,
) -> Result<SwapOutcome, AnonymizeError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(AnonymizeError::InvalidParameter(format!(
            "swap rate must be in [0,1], got {rate}"
        )));
    }
    if b.n_buckets() < 2 {
        return Err(AnonymizeError::InvalidParameter(
            "swapping needs at least two buckets".to_owned(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Materialize per-bucket value vectors (aligned with members).
    let mut values: Vec<Vec<SValue>> = b.to_parts().into_iter().map(|(_, vals)| vals).collect();
    let n = b.n_tuples() as usize;
    let swaps = ((rate * n as f64) / 2.0).round() as usize;
    let mut displaced = 0usize;
    for _ in 0..swaps {
        let bi = rng.gen_range(0..values.len());
        let mut bj = rng.gen_range(0..values.len());
        while bj == bi {
            bj = rng.gen_range(0..values.len());
        }
        let ti = rng.gen_range(0..values[bi].len());
        let tj = rng.gen_range(0..values[bj].len());
        let (vi, vj) = (values[bi][ti], values[bj][tj]);
        if vi != vj {
            displaced += 2;
        }
        values[bi][ti] = vj;
        values[bj][tj] = vi;
    }

    let buckets: Vec<Bucket> = b
        .buckets()
        .iter()
        .zip(&values)
        .map(|(bucket, vals)| Bucket::new(bucket.members().to_vec(), vals))
        .collect();
    let bucketization = Bucketization::from_buckets(buckets, b.domain_size())?;
    Ok(SwapOutcome {
        bucketization,
        swaps,
        displaced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_core::partial_order::merge_histograms;
    use wcbk_core::SensitiveHistogram;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    fn global_histogram(b: &Bucketization) -> SensitiveHistogram {
        let mut acc: Option<SensitiveHistogram> = None;
        for bucket in b.buckets() {
            acc = Some(match acc {
                None => bucket.histogram().clone(),
                Some(h) => merge_histograms(&h, bucket.histogram()),
            });
        }
        acc.unwrap()
    }

    #[test]
    fn rate_zero_is_identity() {
        let b = figure3();
        let out = swap_sanitize(&b, 0.0, 1).unwrap();
        assert_eq!(out.bucketization, b);
        assert_eq!(out.swaps, 0);
        assert_eq!(out.displaced, 0);
    }

    #[test]
    fn preserves_global_histogram_and_sizes() {
        let b = figure3();
        for rate in [0.2, 0.6, 1.0] {
            let out = swap_sanitize(&b, rate, 42).unwrap();
            assert_eq!(global_histogram(&out.bucketization), global_histogram(&b));
            let before: Vec<u64> = b.buckets().iter().map(|x| x.n()).collect();
            let after: Vec<u64> = out.bucketization.buckets().iter().map(|x| x.n()).collect();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn displacement_bounded_by_two_per_swap() {
        let b = figure3();
        let out = swap_sanitize(&b, 1.0, 7).unwrap();
        assert!(out.displaced <= 2 * out.swaps);
        assert_eq!(out.swaps, 5); // rate 1.0 * 10 tuples / 2
    }

    #[test]
    fn deterministic_per_seed() {
        let b = figure3();
        let x = swap_sanitize(&b, 0.5, 9).unwrap();
        let y = swap_sanitize(&b, 0.5, 9).unwrap();
        assert_eq!(x.bucketization, y.bucketization);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let b = figure3();
        assert!(swap_sanitize(&b, 1.5, 0).is_err());
        assert!(swap_sanitize(&b, -0.1, 0).is_err());
        let single = wcbk_core::partial_order::merge_all(&b).unwrap();
        assert!(swap_sanitize(&single, 0.5, 0).is_err());
    }

    #[test]
    fn heavy_swapping_mixes_values_across_buckets() {
        // The female bucket contains no Lung Cancer or Mumps before
        // swapping (codes 1 and 2 in the hospital dictionary); cross-bucket
        // swaps should import one in a majority of seeds.
        let b = figure3();
        let male_only: Vec<SValue> = vec![SValue(1), SValue(2)];
        for v in &male_only {
            assert!(b
                .bucket(1)
                .histogram()
                .iter_counts()
                .all(|(value, _)| value != *v));
        }
        let mut gained = 0;
        for seed in 0..20u64 {
            let out = swap_sanitize(&b, 1.0, seed).unwrap();
            let has_import = out
                .bucketization
                .bucket(1)
                .histogram()
                .iter_counts()
                .any(|(value, _)| male_only.contains(&value));
            if has_import {
                gained += 1;
            }
        }
        assert!(
            gained >= 10,
            "only {gained}/20 seeds mixed values across buckets"
        );
    }
}
