//! Pluggable privacy criteria.
//!
//! Each criterion is a predicate over bucketizations that is **monotone**
//! with respect to the `⪯` partial order: if it holds for `B`, it holds for
//! every coarsening of `B`. Monotonicity is what lets lattice search prune
//! (evaluate a node's predecessors first) and chain binary search work. For
//! (c,k)-safety this is the paper's Theorem 14; for k-anonymity and the
//! ℓ-diversity family it is classical.

use wcbk_adversary::AdversaryModel;
use wcbk_core::{Bucketization, CacheStats, CkSafety, CoreError, DisclosureEngine, HistogramSet};

use crate::AnonymizeError;

/// A monotone privacy predicate over bucketizations.
///
/// `Send + Sync` so one criterion instance can be shared across the worker
/// threads of the parallel lattice search; implementations that memoize
/// (the (c,k)-safety criterion caches MINIMIZE1 tables across calls) do so
/// through interior mutability — both check methods take `&self`.
///
/// The primary surface is [`is_satisfied_hist`](Self::is_satisfied_hist):
/// every shipped criterion depends only on per-bucket sensitive histograms,
/// which is what lets the lattice search evaluate nodes from rolled-up
/// histograms without materializing a [`Bucketization`].
pub trait PrivacyCriterion: Send + Sync {
    /// Human-readable name with parameters, e.g. `"(0.70,3)-safety"`.
    fn name(&self) -> String;

    /// Whether the histogram-only view satisfies the criterion — the search
    /// hot path.
    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError>;

    /// Whether `b` satisfies the criterion. The default delegates to the
    /// histogram surface; implementations may override to skip the
    /// histogram-cloning view.
    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        self.is_satisfied_hist(&HistogramSet::from_bucketization(b))
    }
}

/// Boxed criteria (e.g. `Box<dyn PrivacyCriterion>`) plug into the generic
/// search functions by delegation.
impl<T: PrivacyCriterion + ?Sized> PrivacyCriterion for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied_hist(h)
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied(b)
    }
}

/// Borrowed criteria delegate too, so a caller can hand the same instance
/// to several searches (the scheduler workers already share it by `&C`).
impl<T: PrivacyCriterion + ?Sized> PrivacyCriterion for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied_hist(h)
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied(b)
    }
}

/// `Arc`-shared criteria delegate as well — the shape long-running services
/// use to share one memoizing criterion across concurrent searches.
impl<T: PrivacyCriterion + ?Sized> PrivacyCriterion for std::sync::Arc<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied_hist(h)
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        (**self).is_satisfied(b)
    }
}

/// k-anonymity: every bucket holds at least `k` tuples.
///
/// (The grouping view of k-anonymity — under full identification information
/// bucketization and full-domain generalization are equivalent, Section 2.1.)
#[derive(Debug, Clone, Copy)]
pub struct KAnonymity {
    k: u64,
}

impl KAnonymity {
    /// Creates the criterion; `k ≥ 1`.
    pub fn new(k: u64) -> Self {
        Self { k: k.max(1) }
    }
}

impl PrivacyCriterion for KAnonymity {
    fn name(&self) -> String {
        format!("{}-anonymity", self.k)
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        Ok(h.min_bucket_size() >= self.k)
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        Ok(b.min_bucket_size() >= self.k)
    }
}

/// Distinct ℓ-diversity: every bucket contains at least `l` distinct
/// sensitive values.
#[derive(Debug, Clone, Copy)]
pub struct DistinctLDiversity {
    l: usize,
}

impl DistinctLDiversity {
    /// Creates the criterion; `l ≥ 1`.
    pub fn new(l: usize) -> Self {
        Self { l: l.max(1) }
    }
}

impl PrivacyCriterion for DistinctLDiversity {
    fn name(&self) -> String {
        format!("distinct {}-diversity", self.l)
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        Ok(h.histograms().iter().all(|hist| hist.distinct() >= self.l))
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        Ok(b.buckets()
            .iter()
            .all(|bucket| bucket.histogram().distinct() >= self.l))
    }
}

/// Entropy ℓ-diversity: every bucket's sensitive-value entropy is at least
/// `ln(l)`.
#[derive(Debug, Clone, Copy)]
pub struct EntropyLDiversity {
    l: f64,
}

impl EntropyLDiversity {
    /// Creates the criterion; requires `l ≥ 1`.
    pub fn new(l: f64) -> Result<Self, AnonymizeError> {
        if l.is_nan() || l < 1.0 {
            return Err(AnonymizeError::InvalidParameter(format!(
                "entropy ℓ-diversity needs l ≥ 1, got {l}"
            )));
        }
        Ok(Self { l })
    }
}

impl PrivacyCriterion for EntropyLDiversity {
    fn name(&self) -> String {
        format!("entropy {}-diversity", self.l)
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        let threshold = self.l.ln();
        Ok(h.histograms()
            .iter()
            .all(|hist| hist.entropy() >= threshold - 1e-12))
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        let threshold = self.l.ln();
        Ok(b.buckets()
            .iter()
            .all(|bucket| bucket.histogram().entropy() >= threshold - 1e-12))
    }
}

/// Recursive (c,ℓ)-diversity: in every bucket,
/// `f⁰ < c · (f^ℓ⁻¹ + f^ℓ + … )` (frequencies in descending order).
#[derive(Debug, Clone, Copy)]
pub struct RecursiveCLDiversity {
    c: f64,
    l: usize,
}

impl RecursiveCLDiversity {
    /// Creates the criterion; requires `c > 0` and `l ≥ 2`.
    pub fn new(c: f64, l: usize) -> Result<Self, AnonymizeError> {
        if c.is_nan() || c <= 0.0 || l < 2 {
            return Err(AnonymizeError::InvalidParameter(format!(
                "recursive (c,l)-diversity needs c > 0 and l ≥ 2, got c={c}, l={l}"
            )));
        }
        Ok(Self { c, l })
    }
}

impl RecursiveCLDiversity {
    fn histogram_ok(&self, h: &wcbk_core::SensitiveHistogram) -> bool {
        let tail: u64 = (self.l - 1..h.distinct()).map(|r| h.frequency(r)).sum();
        (h.frequency(0) as f64) < self.c * tail as f64
    }
}

impl PrivacyCriterion for RecursiveCLDiversity {
    fn name(&self) -> String {
        format!("recursive ({},{})-diversity", self.c, self.l)
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        Ok(h.histograms().iter().all(|hist| self.histogram_ok(hist)))
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        Ok(b.buckets()
            .iter()
            .all(|bucket| self.histogram_ok(bucket.histogram())))
    }
}

/// (c,k)-safety (Definition 13), evaluated through a memoizing
/// [`DisclosureEngine`].
///
/// The engine's sharded cache is interior-mutable, so the criterion can be
/// shared across search threads: concurrent `is_satisfied` calls memoize
/// MINIMIZE1 tables into the same cache. The engine itself is held behind an
/// [`Arc`](std::sync::Arc), so long-lived callers (the `wcbk-serve` audit
/// service) can hand **one** engine to many criteria via
/// [`with_engine`](Self::with_engine) and keep its cache warm across
/// requests that share bucket histograms.
pub struct CkSafetyCriterion {
    safety: CkSafety,
    engine: std::sync::Arc<DisclosureEngine>,
}

impl CkSafetyCriterion {
    /// Creates the criterion for threshold `c` and attacker power `k`, with
    /// a fresh private engine.
    pub fn new(c: f64, k: usize) -> Result<Self, CoreError> {
        Ok(Self {
            safety: CkSafety::new(c, k)?,
            engine: std::sync::Arc::new(DisclosureEngine::new(k)),
        })
    }

    /// Creates the criterion for threshold `c` sharing an existing `engine`
    /// (whose `k` fixes the attacker power): MINIMIZE1 tables memoized by
    /// any prior search through the same engine are reused, the shape
    /// long-running services want across requests.
    pub fn with_engine(
        c: f64,
        engine: std::sync::Arc<DisclosureEngine>,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            safety: CkSafety::new(c, engine.k())?,
            engine,
        })
    }

    /// Cache statistics of the underlying engine (`hits`, `misses`).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.engine.cache_stats()
    }

    /// Full cache snapshot of the underlying engine, entry count included.
    pub fn engine_stats(&self) -> CacheStats {
        self.engine.stats()
    }
}

impl PrivacyCriterion for CkSafetyCriterion {
    fn name(&self) -> String {
        format!("({},{})-safety", self.safety.c(), self.safety.k())
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        Ok(self.safety.is_safe_set(&self.engine, h)?)
    }

    fn is_satisfied(&self, b: &Bucketization) -> Result<bool, AnonymizeError> {
        Ok(self.safety.is_safe_with(&self.engine, b)?)
    }
}

/// (c,k)-safety under **any** registered [`AdversaryModel`]: satisfied when
/// the model's worst-case disclosure bound stays below `c`.
///
/// With the conjunction model this is exactly [`CkSafetyCriterion`] (the
/// bound is computed by the same engine, bit-for-bit); the other models
/// substitute their own knowledge language. All shipped models are
/// merge-monotone (pinned by the `wcbk-adversary` proptests), which is the
/// property the pruned lattice search requires.
pub struct ModelSafetyCriterion {
    model: std::sync::Arc<dyn AdversaryModel>,
    c: f64,
}

impl ModelSafetyCriterion {
    /// Creates the criterion for threshold `c` under `model` (whose `k`
    /// fixes the attacker power). `c` is validated exactly like
    /// [`CkSafety`].
    pub fn new(c: f64, model: std::sync::Arc<dyn AdversaryModel>) -> Result<Self, CoreError> {
        CkSafety::new(c, model.k())?;
        Ok(Self { model, c })
    }

    /// The model judging safety.
    pub fn model(&self) -> &std::sync::Arc<dyn AdversaryModel> {
        &self.model
    }

    /// The disclosure threshold.
    pub fn c(&self) -> f64 {
        self.c
    }
}

impl PrivacyCriterion for ModelSafetyCriterion {
    fn name(&self) -> String {
        format!("({},{})-{}", self.c, self.model.k(), self.model.name())
    }

    fn is_satisfied_hist(&self, h: &HistogramSet) -> Result<bool, AnonymizeError> {
        Ok(self.model.max_disclosure(h)? < self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcbk_core::partial_order::merge_all;
    use wcbk_table::datasets::{hospital_bucket_of, hospital_table};

    fn figure3() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), hospital_bucket_of).unwrap()
    }

    fn bottom() -> Bucketization {
        Bucketization::from_grouping(&hospital_table(), |t| t).unwrap()
    }

    #[test]
    fn k_anonymity_thresholds() {
        let b = figure3();
        assert!(KAnonymity::new(5).is_satisfied(&b).unwrap());
        assert!(!KAnonymity::new(6).is_satisfied(&b).unwrap());
        assert!(!KAnonymity::new(2).is_satisfied(&bottom()).unwrap());
    }

    #[test]
    fn distinct_l_diversity() {
        let b = figure3();
        // Male bucket has 3 distinct, female 4.
        assert!(DistinctLDiversity::new(3).is_satisfied(&b).unwrap());
        assert!(!DistinctLDiversity::new(4).is_satisfied(&b).unwrap());
    }

    #[test]
    fn entropy_l_diversity() {
        let b = figure3();
        let male_entropy = b.bucket(0).histogram().entropy();
        let ok_l = male_entropy.exp() - 0.01;
        let bad_l = male_entropy.exp() + 0.1;
        assert!(EntropyLDiversity::new(ok_l)
            .unwrap()
            .is_satisfied(&b)
            .unwrap());
        assert!(!EntropyLDiversity::new(bad_l)
            .unwrap()
            .is_satisfied(&b)
            .unwrap());
        assert!(EntropyLDiversity::new(0.5).is_err());
    }

    #[test]
    fn recursive_cl_diversity() {
        let b = figure3();
        // Male bucket (2,2,1), l=2: f0=2 < c·(f1+f2)=c·3 ⟺ c > 2/3.
        // Female bucket (2,1,1,1), l=2: 2 < c·3 — same bound.
        assert!(RecursiveCLDiversity::new(0.7, 2)
            .unwrap()
            .is_satisfied(&b)
            .unwrap());
        assert!(!RecursiveCLDiversity::new(0.6, 2)
            .unwrap()
            .is_satisfied(&b)
            .unwrap());
        assert!(RecursiveCLDiversity::new(1.0, 1).is_err());
    }

    #[test]
    fn ck_safety_criterion_delegates_to_core() {
        let b = figure3();
        let safe = CkSafetyCriterion::new(0.7, 1).unwrap();
        assert!(safe.is_satisfied(&b).unwrap());
        let unsafe_ = CkSafetyCriterion::new(0.5, 1).unwrap();
        assert!(!unsafe_.is_satisfied(&b).unwrap());
    }

    #[test]
    fn with_engine_shares_cache_across_criteria() {
        use std::sync::Arc;
        let b = figure3();
        let engine = Arc::new(DisclosureEngine::new(1));
        let first = CkSafetyCriterion::with_engine(0.7, Arc::clone(&engine)).unwrap();
        assert!(first.is_satisfied(&b).unwrap());
        let (hits0, misses0) = engine.cache_stats();
        assert_eq!(hits0, 0);
        assert!(misses0 > 0);
        // A second criterion (different c, same engine) reuses the MINIMIZE1
        // tables the first one built.
        let second = CkSafetyCriterion::with_engine(0.5, Arc::clone(&engine)).unwrap();
        assert!(!second.is_satisfied(&b).unwrap());
        let (hits1, misses1) = engine.cache_stats();
        assert!(hits1 > 0, "second criterion must hit the shared cache");
        assert_eq!(misses1, misses0);
        assert_eq!(second.engine_stats().entries, engine.stats().entries);
    }

    #[test]
    fn criteria_are_monotone_under_full_merge() {
        let fine = figure3();
        let coarse = merge_all(&fine).unwrap();
        let criteria: Vec<Box<dyn PrivacyCriterion>> = vec![
            Box::new(KAnonymity::new(5)),
            Box::new(DistinctLDiversity::new(3)),
            Box::new(EntropyLDiversity::new(2.5).unwrap()),
            Box::new(CkSafetyCriterion::new(0.7, 1).unwrap()),
        ];
        for c in criteria.iter() {
            if c.is_satisfied(&fine).unwrap() {
                assert!(
                    c.is_satisfied(&coarse).unwrap(),
                    "{} not monotone",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn histogram_surface_agrees_with_bucketization_surface() {
        let criteria: Vec<Box<dyn PrivacyCriterion>> = vec![
            Box::new(KAnonymity::new(3)),
            Box::new(KAnonymity::new(6)),
            Box::new(DistinctLDiversity::new(3)),
            Box::new(DistinctLDiversity::new(4)),
            Box::new(EntropyLDiversity::new(2.5).unwrap()),
            Box::new(RecursiveCLDiversity::new(0.7, 2).unwrap()),
            Box::new(CkSafetyCriterion::new(0.7, 1).unwrap()),
            Box::new(CkSafetyCriterion::new(0.5, 1).unwrap()),
        ];
        for b in [figure3(), bottom()] {
            let h = wcbk_core::HistogramSet::from_bucketization(&b);
            for c in &criteria {
                assert_eq!(
                    c.is_satisfied(&b).unwrap(),
                    c.is_satisfied_hist(&h).unwrap(),
                    "{} disagrees across surfaces",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn names_include_parameters() {
        assert_eq!(KAnonymity::new(5).name(), "5-anonymity");
        assert!(CkSafetyCriterion::new(0.7, 3)
            .unwrap()
            .name()
            .contains("0.7"));
    }
}
