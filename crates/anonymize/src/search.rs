//! Lattice search for minimal safe generalizations — sequential and
//! level-parallel.
//!
//! Both searches share the same monotone-pruning structure: nodes are
//! visited level by level (increasing height); a node with a known-safe
//! predecessor is safe by monotonicity and never evaluated. Because a node's
//! predecessors all live on strictly lower levels, the nodes that need
//! evaluation within one level are **independent of each other** — which is
//! exactly what [`find_minimal_safe_parallel`] exploits: it partitions each
//! level's unpruned nodes across scoped worker threads sharing one
//! `&C` criterion (hence [`PrivacyCriterion`]`: Send + Sync`), then merges
//! results in level order so the outcome is bit-for-bit identical to the
//! sequential search.

use std::collections::HashSet;
use std::num::NonZeroUsize;

use wcbk_hierarchy::{GenNode, GeneralizationLattice};
use wcbk_table::Table;

use crate::{AnonymizeError, PrivacyCriterion};

/// Outcome of a bottom-up lattice search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// All ⪯-minimal nodes satisfying the criterion (antichain).
    pub minimal_nodes: Vec<GenNode>,
    /// Nodes whose criterion was actually evaluated (≤ lattice size; the
    /// rest were inferred safe by monotonicity).
    pub evaluated: usize,
    /// Nodes known safe (evaluated or inferred).
    pub satisfied: usize,
}

/// The number of worker threads the parallel search uses by default: the
/// machine's available parallelism (1 when that cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Bottom-up breadth-first search (Incognito-style) for **all minimal safe
/// nodes** of the lattice under a monotone criterion.
///
/// Nodes are visited by increasing height. A node with a known-safe
/// predecessor is safe by monotonicity and skipped (it cannot be minimal);
/// otherwise the criterion is evaluated. Evaluated-safe nodes are exactly
/// the minimal ones: all their predecessors were found unsafe.
pub fn find_minimal_safe<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<SearchOutcome, AnonymizeError> {
    let mut safe: HashSet<GenNode> = HashSet::new();
    let mut minimal: Vec<GenNode> = Vec::new();
    let mut evaluated = 0usize;

    for level in lattice.nodes_by_height() {
        for node in level {
            let inherited = lattice
                .predecessors(&node)
                .into_iter()
                .any(|p| safe.contains(&p));
            if inherited {
                safe.insert(node);
                continue;
            }
            evaluated += 1;
            let b = lattice.bucketize(table, &node)?;
            if criterion.is_satisfied(&b)? {
                minimal.push(node.clone());
                safe.insert(node);
            }
        }
    }
    Ok(SearchOutcome {
        minimal_nodes: minimal,
        evaluated,
        satisfied: safe.len(),
    })
}

/// Level-synchronous parallel variant of [`find_minimal_safe`].
///
/// Per lattice level: nodes pruned by monotonicity are rolled into the safe
/// set as usual; the remaining nodes are split into contiguous chunks and
/// evaluated by `threads` scoped workers sharing `criterion` (and therefore
/// its memoization cache). Verdicts are merged back **in level order**, so
/// `minimal_nodes`, `evaluated`, and `satisfied` are exactly what the
/// sequential search produces — monotonicity pruning is preserved because a
/// node's predecessors are always on strictly lower, already-merged levels.
///
/// `threads == 0` selects [`default_threads`]; `threads == 1` degenerates to
/// the sequential algorithm (without spawning).
pub fn find_minimal_safe_parallel<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    threads: usize,
) -> Result<SearchOutcome, AnonymizeError> {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    if threads == 1 {
        return find_minimal_safe(table, lattice, criterion);
    }

    let mut safe: HashSet<GenNode> = HashSet::new();
    let mut minimal: Vec<GenNode> = Vec::new();
    let mut evaluated = 0usize;

    for level in lattice.nodes_by_height() {
        // Partition the level: inherited-safe vs. needs-evaluation. The
        // order of `to_eval` is the sequential visit order.
        let mut to_eval: Vec<GenNode> = Vec::new();
        for node in level {
            let inherited = lattice
                .predecessors(&node)
                .into_iter()
                .any(|p| safe.contains(&p));
            if inherited {
                safe.insert(node);
            } else {
                to_eval.push(node);
            }
        }
        if to_eval.is_empty() {
            continue;
        }
        evaluated += to_eval.len();
        let verdicts = evaluate_nodes(table, lattice, criterion, &to_eval, threads)?;
        for (node, ok) in to_eval.into_iter().zip(verdicts) {
            if ok {
                minimal.push(node.clone());
                safe.insert(node);
            }
        }
    }
    Ok(SearchOutcome {
        minimal_nodes: minimal,
        evaluated,
        satisfied: safe.len(),
    })
}

/// Evaluates `criterion` on every node concurrently, returning verdicts
/// aligned with `nodes`. Errors from any worker are propagated (the first
/// one in node order wins, matching what the sequential search would hit).
fn evaluate_nodes<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    nodes: &[GenNode],
    threads: usize,
) -> Result<Vec<bool>, AnonymizeError> {
    parallel_verdicts(nodes, threads, |node| {
        let b = lattice.bucketize(table, node)?;
        criterion.is_satisfied(&b)
    })
}

/// Maps `eval` over `items` on up to `threads` scoped worker threads,
/// returning results aligned with `items`. The error reported is the first
/// one in item order. Shared by the parallel BFS and parallel Incognito.
pub(crate) fn parallel_verdicts<T, F>(
    items: &[T],
    threads: usize,
    eval: F,
) -> Result<Vec<bool>, AnonymizeError>
where
    T: Sync,
    F: Fn(&T) -> Result<bool, AnonymizeError> + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(eval).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut chunk_results: Vec<Result<Vec<bool>, AnonymizeError>> = Vec::new();
    std::thread::scope(|scope| {
        let eval = &eval;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || chunk.iter().map(eval).collect::<Result<Vec<bool>, _>>())
            })
            .collect();
        chunk_results = handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect();
    });
    let mut verdicts = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        verdicts.extend(chunk?);
    }
    Ok(verdicts)
}

/// Exhaustive sweep evaluating the criterion on **every** node — the
/// unpruned baseline (used by benches to quantify the pruning win and by the
/// Figure 6 experiment which needs per-node statistics anyway).
pub fn sweep_all<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<Vec<(GenNode, bool)>, AnonymizeError> {
    let mut out = Vec::with_capacity(lattice.n_nodes());
    for node in lattice.nodes() {
        let b = lattice.bucketize(table, &node)?;
        let ok = criterion.is_satisfied(&b)?;
        out.push((node, ok));
    }
    Ok(out)
}

/// Binary search along a fine→coarse chain for the first (finest) safe node
/// — logarithmic in the chain length thanks to monotonicity (Theorem 14).
///
/// Returns `None` when even the last (coarsest) node fails.
pub fn binary_search_chain<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    chain: &[GenNode],
    criterion: &C,
) -> Result<Option<GenNode>, AnonymizeError> {
    for (i, w) in chain.windows(2).enumerate() {
        if !w[0].le(&w[1]) {
            return Err(AnonymizeError::ChainNotMonotone { at: i });
        }
    }
    if chain.is_empty() {
        return Ok(None);
    }
    // Invariant: everything below `lo` is unsafe; if `hi_safe` then chain[hi]
    // is safe.
    let mut lo = 0usize;
    let mut hi = chain.len() - 1;
    let b = lattice.bucketize(table, &chain[hi])?;
    if !criterion.is_satisfied(&b)? {
        return Ok(None);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let b = lattice.bucketize(table, &chain[mid])?;
        if criterion.is_satisfied(&b)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(chain[lo].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{CkSafetyCriterion, KAnonymity, PrivacyCriterion};
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn lattice(table: &Table) -> GeneralizationLattice {
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap()
    }

    /// Independent check of minimality against the exhaustive sweep.
    fn assert_minimal_consistent<C: PrivacyCriterion>(
        table: &Table,
        lattice: &GeneralizationLattice,
        make: impl Fn() -> C,
    ) {
        let outcome = find_minimal_safe(table, lattice, &make()).unwrap();
        let sweep = sweep_all(table, lattice, &make()).unwrap();
        let safe: HashSet<GenNode> = sweep
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(n, _)| n.clone())
            .collect();
        // 1. Search count of safe nodes matches sweep.
        assert_eq!(outcome.satisfied, safe.len());
        // 2. Every reported minimal node is safe with no safe predecessor.
        for m in &outcome.minimal_nodes {
            assert!(safe.contains(m), "{m} not actually safe");
            for p in lattice.predecessors(m) {
                assert!(!safe.contains(&p), "{m} has safe predecessor {p}");
            }
        }
        // 3. Every safe node with no safe predecessor is reported.
        for s in &safe {
            let has_safe_pred = lattice.predecessors(s).iter().any(|p| safe.contains(p));
            if !has_safe_pred {
                assert!(outcome.minimal_nodes.contains(s), "{s} missing");
            }
        }
    }

    #[test]
    fn k_anonymity_search_matches_sweep() {
        let t = hospital_table();
        let l = lattice(&t);
        for k in [2u64, 3, 5, 10] {
            assert_minimal_consistent(&t, &l, || KAnonymity::new(k));
        }
    }

    #[test]
    fn ck_safety_search_matches_sweep() {
        let t = hospital_table();
        let l = lattice(&t);
        for (c, k) in [(0.5, 0), (0.7, 1), (0.9, 1), (1.0, 2)] {
            assert_minimal_consistent(&t, &l, || CkSafetyCriterion::new(c, k).unwrap());
        }
    }

    #[test]
    fn pruning_saves_evaluations() {
        let t = hospital_table();
        let l = lattice(&t);
        let outcome = find_minimal_safe(&t, &l, &KAnonymity::new(2)).unwrap();
        assert!(outcome.evaluated < l.n_nodes(), "no pruning happened");
        assert!(!outcome.minimal_nodes.is_empty());
    }

    #[test]
    fn impossible_criterion_yields_empty() {
        let t = hospital_table();
        let l = lattice(&t);
        // 11-anonymity is impossible for a 10-row table.
        let outcome = find_minimal_safe(&t, &l, &KAnonymity::new(11)).unwrap();
        assert!(outcome.minimal_nodes.is_empty());
        assert_eq!(outcome.satisfied, 0);
    }

    #[test]
    fn binary_search_finds_first_safe_on_chain() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        let criterion = KAnonymity::new(5);
        let found = binary_search_chain(&t, &l, &chain, &criterion)
            .unwrap()
            .expect("top is 5-anonymous");
        // Verify: found is safe, its chain predecessor is not.
        let idx = chain.iter().position(|n| *n == found).unwrap();
        assert!(KAnonymity::new(5)
            .is_satisfied(&l.bucketize(&t, &chain[idx]).unwrap())
            .unwrap());
        if idx > 0 {
            assert!(!KAnonymity::new(5)
                .is_satisfied(&l.bucketize(&t, &chain[idx - 1]).unwrap())
                .unwrap());
        }
    }

    #[test]
    fn binary_search_none_when_even_top_fails() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        let found = binary_search_chain(&t, &l, &chain, &KAnonymity::new(11)).unwrap();
        assert_eq!(found, None);
    }

    #[test]
    fn binary_search_rejects_bad_chain() {
        let t = hospital_table();
        let l = lattice(&t);
        let mut chain = l.maximal_chain();
        chain.reverse();
        let err = binary_search_chain(&t, &l, &chain, &KAnonymity::new(2)).unwrap_err();
        assert!(matches!(err, AnonymizeError::ChainNotMonotone { at: 0 }));
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        for (c, k) in [(0.5, 0), (0.5, 1), (0.9, 2), (0.41, 0)] {
            let criterion = CkSafetyCriterion::new(c, k).unwrap();
            let binary = binary_search_chain(&t, &l, &chain, &criterion).unwrap();
            let mut linear = None;
            for node in &chain {
                let b = l.bucketize(&t, node).unwrap();
                if CkSafetyCriterion::new(c, k)
                    .unwrap()
                    .is_satisfied(&b)
                    .unwrap()
                {
                    linear = Some(node.clone());
                    break;
                }
            }
            assert_eq!(binary, linear, "c={c} k={k}");
        }
    }

    use wcbk_table::Table;
}
