//! Lattice search for minimal safe generalizations — sequential,
//! level-parallel, and work-stealing whole-lattice, over the one-scan
//! roll-up pipeline.
//!
//! All searches share the same monotone-pruning contract: a node with a
//! known-safe predecessor is safe by monotonicity and never evaluated; a
//! node whose predecessors are all unsafe must be. Two parallel schedules
//! implement it (see [`Schedule`]):
//!
//! * **Level-synchronous** — each height level's unpruned nodes are dealt
//!   round-robin across scoped worker threads sharing one `&C` criterion
//!   (hence [`PrivacyCriterion`]`: Send + Sync`), with verdicts merged in
//!   item order. Every level waits on its slowest node.
//! * **Work-stealing** (the default) — the whole lattice is handed to
//!   [`wcbk_core::sched`]'s scheduler: a node becomes runnable the moment
//!   its last predecessor's verdict lands, safe verdicts prune entire
//!   up-sets immediately through the generalization partial order, and idle
//!   workers speculatively evaluate still-pending nodes (discarding the
//!   work if the node gets pruned). No level barriers.
//!
//! Either way the outcome is **bit-for-bit identical** to the sequential
//! search — same minimal antichain in the same order, same `evaluated` and
//! `satisfied` counts, same first-error semantics (pinned by
//! `tests/parallel_search.rs` and `tests/rollup_equivalence.rs`).
//!
//! **Evaluation never re-scans the table.** A [`NodeEvaluator`] scans it
//! once at search start; every node is then judged from rolled-up
//! [`HistogramSet`](wcbk_core::HistogramSet)s via
//! [`PrivacyCriterion::is_satisfied_hist`], and a full
//! `Bucketization` is only materialized (by callers such as the
//! [`pipeline`](crate::pipeline)) for chosen minimal nodes. Tables whose
//! packed quasi-identifier signature exceeds 128 bits fall back to the
//! legacy `*_rescan` path, which bucketizes per node. On deep lattices the
//! evaluator's memo can be capped via [`SearchConfig::memo_capacity`].

use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;

use wcbk_adversary::ModelId;
use wcbk_core::sched::{evaluate_work_stealing, MonotoneDag};
use wcbk_hierarchy::{
    GenNode, GeneralizationLattice, HierarchyError, NodeEvaluator, RollupStats, ScanOptions,
};
use wcbk_table::Table;

use crate::{AnonymizeError, PrivacyCriterion};

/// How a parallel lattice search spreads node evaluations across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One fan-out per height level; the level is a barrier.
    LevelSync,
    /// Whole-lattice work stealing with speculative evaluation — see the
    /// module docs. The default.
    #[default]
    WorkStealing,
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "level" | "level-sync" => Ok(Schedule::LevelSync),
            "steal" | "work-stealing" => Ok(Schedule::WorkStealing),
            other => Err(format!("unknown schedule {other:?} (want level|steal)")),
        }
    }
}

/// Knobs for the parallel searches ([`find_minimal_safe_with`],
/// [`crate::incognito::incognito_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchConfig {
    /// Worker threads: `0` = all available cores, `1` = sequential.
    pub threads: usize,
    /// Parallel schedule (ignored at 1 thread).
    pub schedule: Schedule,
    /// Group budget for the roll-up evaluator's memo (`None` = unbounded):
    /// retained node tables may total at most this many groups, weighed by
    /// actual size; see [`NodeEvaluator::with_memo_capacity`].
    pub memo_capacity: Option<usize>,
    /// Worker threads for the evaluator's one bottom scan (`0` = all
    /// available cores, `1` = in-thread). Bit-neutral: the scan's output is
    /// identical at any thread count — see [`ScanOptions`].
    pub scan_threads: usize,
    /// The adversary model the caller judges safety under (the default is
    /// the paper's conjunction language). The search machinery itself is
    /// model-agnostic — the criterion carries the actual bound — but the
    /// selection rides here so services and reports can thread it alongside
    /// the other search knobs.
    pub model: ModelId,
}

impl SearchConfig {
    /// A config running `threads` workers under the default schedule.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The effective worker count (`0` resolved to all cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// The bottom-scan tuning this config implies.
    pub fn scan_options(&self) -> ScanOptions {
        ScanOptions {
            threads: self.scan_threads,
            ..ScanOptions::default()
        }
    }
}

/// Outcome of a bottom-up lattice search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// All ⪯-minimal nodes satisfying the criterion (antichain).
    pub minimal_nodes: Vec<GenNode>,
    /// Nodes whose criterion was actually evaluated (≤ lattice size; the
    /// rest were inferred safe by monotonicity).
    pub evaluated: usize,
    /// Nodes known safe (evaluated or inferred).
    pub satisfied: usize,
}

/// The number of worker threads the parallel search uses by default: the
/// machine's available parallelism (1 when that cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builds the roll-up evaluator, or `None` when the table's packed signature
/// does not fit (the caller then takes the legacy re-scanning path). Shared
/// with [`crate::incognito`] so the fallback policy lives in one place.
pub(crate) fn try_evaluator(
    table: &Table,
    lattice: &GeneralizationLattice,
) -> Result<Option<NodeEvaluator>, AnonymizeError> {
    try_evaluator_capped(table, lattice, None, ScanOptions::default())
}

/// [`try_evaluator`] with a memo entry cap (see
/// [`NodeEvaluator::with_memo_capacity`]) and explicit bottom-scan tuning.
pub(crate) fn try_evaluator_capped(
    table: &Table,
    lattice: &GeneralizationLattice,
    memo_capacity: Option<usize>,
    scan: ScanOptions,
) -> Result<Option<NodeEvaluator>, AnonymizeError> {
    try_evaluator_shared(
        table,
        std::sync::Arc::new(lattice.clone()),
        memo_capacity,
        scan,
    )
}

/// Builds a **shared** evaluator over an `Arc`-held lattice, with the same
/// overflow-fallback policy: `None` means the packed signature does not fit
/// and callers must re-scan per node. The session constructor uses this.
pub(crate) fn try_evaluator_shared(
    table: &Table,
    lattice: std::sync::Arc<GeneralizationLattice>,
    memo_capacity: Option<usize>,
    scan: ScanOptions,
) -> Result<Option<NodeEvaluator>, AnonymizeError> {
    match NodeEvaluator::shared_with_scan(table, lattice, memo_capacity, scan) {
        Ok(eval) => Ok(Some(eval)),
        Err(HierarchyError::SignatureOverflow { .. }) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// The monotone-pruned BFS skeleton, generic over how a node is judged.
fn minimal_safe_with<E>(
    lattice: &GeneralizationLattice,
    mut eval: E,
) -> Result<SearchOutcome, AnonymizeError>
where
    E: FnMut(&GenNode) -> Result<bool, AnonymizeError>,
{
    let mut safe: HashSet<GenNode> = HashSet::new();
    let mut minimal: Vec<GenNode> = Vec::new();
    let mut evaluated = 0usize;

    for level in lattice.nodes_by_height() {
        for node in level {
            let inherited = lattice
                .predecessors(&node)
                .into_iter()
                .any(|p| safe.contains(&p));
            if inherited {
                safe.insert(node);
                continue;
            }
            evaluated += 1;
            if eval(&node)? {
                minimal.push(node.clone());
                safe.insert(node);
            }
        }
    }
    Ok(SearchOutcome {
        minimal_nodes: minimal,
        evaluated,
        satisfied: safe.len(),
    })
}

/// Bottom-up breadth-first search (Incognito-style) for **all minimal safe
/// nodes** of the lattice under a monotone criterion.
///
/// Nodes are visited by increasing height. A node with a known-safe
/// predecessor is safe by monotonicity and skipped (it cannot be minimal);
/// otherwise the criterion is evaluated — on rolled-up histograms, after a
/// single table scan. Evaluated-safe nodes are exactly the minimal ones: all
/// their predecessors were found unsafe.
pub fn find_minimal_safe<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<SearchOutcome, AnonymizeError> {
    match try_evaluator(table, lattice)? {
        Some(eval) => minimal_safe_with(lattice, |node| {
            criterion.is_satisfied_hist(&eval.histograms(node)?)
        }),
        None => find_minimal_safe_rescan(table, lattice, criterion),
    }
}

/// [`find_minimal_safe`] over the legacy per-node `bucketize` path (one full
/// table scan per evaluated node). Kept public as the fallback for
/// signature-overflow tables and as the baseline the equivalence tests and
/// `bench_report` compare against.
pub fn find_minimal_safe_rescan<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<SearchOutcome, AnonymizeError> {
    minimal_safe_with(lattice, |node| {
        criterion.is_satisfied(&lattice.bucketize(table, node)?)
    })
}

/// The level-synchronous parallel BFS skeleton, generic over a `Sync` judge.
fn minimal_safe_parallel_with<E>(
    lattice: &GeneralizationLattice,
    threads: usize,
    eval: E,
) -> Result<SearchOutcome, AnonymizeError>
where
    E: Fn(&GenNode) -> Result<bool, AnonymizeError> + Sync,
{
    let mut safe: HashSet<GenNode> = HashSet::new();
    let mut minimal: Vec<GenNode> = Vec::new();
    let mut evaluated = 0usize;

    for level in lattice.nodes_by_height() {
        // Partition the level: inherited-safe vs. needs-evaluation. The
        // order of `to_eval` is the sequential visit order.
        let mut to_eval: Vec<GenNode> = Vec::new();
        for node in level {
            let inherited = lattice
                .predecessors(&node)
                .into_iter()
                .any(|p| safe.contains(&p));
            if inherited {
                safe.insert(node);
            } else {
                to_eval.push(node);
            }
        }
        if to_eval.is_empty() {
            continue;
        }
        evaluated += to_eval.len();
        let verdicts = parallel_verdicts(&to_eval, threads, &eval)?;
        for (node, ok) in to_eval.into_iter().zip(verdicts) {
            if ok {
                minimal.push(node.clone());
                safe.insert(node);
            }
        }
    }
    Ok(SearchOutcome {
        minimal_nodes: minimal,
        evaluated,
        satisfied: safe.len(),
    })
}

/// The work-stealing whole-lattice skeleton: hands the lattice (nodes in
/// sequential visit order — by height, mixed-radix within a height) to
/// [`wcbk_core::sched::evaluate_work_stealing`] and maps the resolutions
/// back onto a [`SearchOutcome`]. Outcome-equivalent to the sequential
/// skeleton by the scheduler's contract.
fn minimal_safe_steal_with<E>(
    lattice: &GeneralizationLattice,
    threads: usize,
    eval: E,
) -> Result<SearchOutcome, AnonymizeError>
where
    E: Fn(&GenNode) -> Result<bool, AnonymizeError> + Sync,
{
    let nodes: Vec<GenNode> = lattice.nodes_by_height().into_iter().flatten().collect();
    let index: HashMap<&GenNode, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n, i as u32))
        .collect();
    let preds: Vec<Vec<u32>> = nodes
        .iter()
        .map(|n| {
            lattice
                .predecessors(n)
                .iter()
                .map(|p| index[p])
                .collect::<Vec<u32>>()
        })
        .collect();
    let dag = MonotoneDag::new(preds);
    let outcome = evaluate_work_stealing(&dag, threads, true, |i| eval(&nodes[i]))?;
    Ok(SearchOutcome {
        minimal_nodes: outcome
            .evaluated_safe()
            .into_iter()
            .map(|i| nodes[i].clone())
            .collect(),
        evaluated: outcome.evaluated,
        satisfied: outcome.safe_count(),
    })
}

/// Parallel variant of [`find_minimal_safe`] with explicit [`SearchConfig`]
/// — thread count, schedule, and evaluator memo cap.
///
/// Whatever the configuration, `minimal_nodes`, `evaluated`, and
/// `satisfied` are exactly what the sequential search produces:
///
/// * under [`Schedule::LevelSync`], each level's unpruned nodes are dealt
///   round-robin to scoped workers sharing `criterion` (and therefore its
///   memoization cache) and one roll-up evaluator, with verdicts merged in
///   item order;
/// * under [`Schedule::WorkStealing`], the whole lattice drains through
///   per-worker deques with stealing, immediate up-set pruning on safe
///   verdicts, and speculative evaluation on idle workers — required
///   evaluations, and therefore outcomes, are scheduling-independent.
pub fn find_minimal_safe_with<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    config: &SearchConfig,
) -> Result<SearchOutcome, AnonymizeError> {
    Ok(find_minimal_safe_report(table, lattice, criterion, config)?.outcome)
}

/// A [`SearchOutcome`] together with the roll-up evaluator's work counters —
/// what long-running callers (the `wcbk-serve` audit service) aggregate
/// across searches. `rollup` is `None` when the signature-overflow fallback
/// re-scanned the table per node instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// The search result, identical to [`find_minimal_safe_with`]'s.
    pub outcome: SearchOutcome,
    /// The evaluator's counters at the end of the search.
    pub rollup: Option<RollupStats>,
}

/// [`find_minimal_safe_with`], also reporting the roll-up evaluator's
/// counters (table scans, derivations, memo traffic) for this search.
pub fn find_minimal_safe_report<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    config: &SearchConfig,
) -> Result<SearchReport, AnonymizeError> {
    let evaluator =
        try_evaluator_capped(table, lattice, config.memo_capacity, config.scan_options())?;
    let outcome = minimal_safe_over(table, lattice, evaluator.as_ref(), criterion, config)?;
    Ok(SearchReport {
        outcome,
        rollup: evaluator.as_ref().map(NodeEvaluator::stats),
    })
}

/// The schedule dispatcher over an **injected** evaluator (`None` = the
/// signature-overflow re-scanning fallback). This is the primitive both the
/// one-shot entry points and [`crate::DatasetSession`] (which owns a
/// long-lived evaluator shared across many searches) run on; outcomes are
/// identical either way.
pub(crate) fn minimal_safe_over<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    evaluator: Option<&NodeEvaluator>,
    criterion: &C,
    config: &SearchConfig,
) -> Result<SearchOutcome, AnonymizeError> {
    let threads = config.effective_threads();
    let judge = |node: &GenNode| -> Result<bool, AnonymizeError> {
        match evaluator {
            Some(eval) => criterion.is_satisfied_hist(&eval.histograms(node)?),
            None => criterion.is_satisfied(&lattice.bucketize(table, node)?),
        }
    };
    if threads == 1 {
        minimal_safe_with(lattice, judge)
    } else {
        match config.schedule {
            Schedule::LevelSync => minimal_safe_parallel_with(lattice, threads, judge),
            Schedule::WorkStealing => minimal_safe_steal_with(lattice, threads, judge),
        }
    }
}

/// The exhaustive sweep over an injected evaluator — the session-owned
/// counterpart of [`sweep_all`].
pub(crate) fn sweep_over<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    evaluator: Option<&NodeEvaluator>,
    criterion: &C,
) -> Result<Vec<(GenNode, bool)>, AnonymizeError> {
    let mut out = Vec::with_capacity(lattice.n_nodes());
    for node in lattice.nodes() {
        let ok = match evaluator {
            Some(eval) => criterion.is_satisfied_hist(&eval.histograms(&node)?)?,
            None => criterion.is_satisfied(&lattice.bucketize(table, &node)?)?,
        };
        out.push((node, ok));
    }
    Ok(out)
}

/// Parallel variant of [`find_minimal_safe`] under the default
/// (work-stealing) schedule — see [`find_minimal_safe_with`] for the full
/// contract and [`Schedule`] for the alternatives.
///
/// `threads == 0` selects [`default_threads`]; `threads == 1` degenerates to
/// the sequential algorithm (without spawning).
pub fn find_minimal_safe_parallel<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
    threads: usize,
) -> Result<SearchOutcome, AnonymizeError> {
    find_minimal_safe_with(
        table,
        lattice,
        criterion,
        &SearchConfig::with_threads(threads),
    )
}

/// Maps `eval` over `items` on up to `threads` scoped worker threads,
/// returning results aligned with `items`. Work is dealt **round-robin**
/// (worker `w` takes items `w, w + workers, w + 2·workers, …`) rather than
/// in contiguous chunks, so expensive neighbouring items — e.g. the slow
/// top-of-lattice nodes, which sit together in level order — spread across
/// all workers instead of piling onto one. The error reported is the first
/// one in item order. Shared by the parallel BFS and parallel Incognito.
pub(crate) fn parallel_verdicts<T, F>(
    items: &[T],
    threads: usize,
    eval: F,
) -> Result<Vec<bool>, AnonymizeError>
where
    T: Sync,
    F: Fn(&T) -> Result<bool, AnonymizeError> + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(eval).collect();
    }
    type WorkerResult = Result<Vec<(usize, bool)>, (usize, AnonymizeError)>;
    let mut worker_results: Vec<WorkerResult> = Vec::new();
    std::thread::scope(|scope| {
        let eval = &eval;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> WorkerResult {
                    let mut out = Vec::with_capacity(items.len() / workers + 1);
                    for (i, item) in items.iter().enumerate().skip(w).step_by(workers) {
                        match eval(item) {
                            Ok(v) => out.push((i, v)),
                            Err(e) => return Err((i, e)),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        worker_results = handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect();
    });
    let mut verdicts = vec![false; items.len()];
    let mut first_err: Option<(usize, AnonymizeError)> = None;
    for r in worker_results {
        match r {
            Ok(pairs) => {
                for (i, v) in pairs {
                    verdicts[i] = v;
                }
            }
            Err((i, e)) => {
                if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(verdicts),
    }
}

/// Exhaustive sweep evaluating the criterion on **every** node — the
/// unpruned baseline (used by benches to quantify the pruning win and by the
/// Figure 6 experiment which needs per-node statistics anyway). Runs on the
/// roll-up pipeline: one table scan total.
pub fn sweep_all<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<Vec<(GenNode, bool)>, AnonymizeError> {
    let Some(eval) = try_evaluator(table, lattice)? else {
        return sweep_all_rescan(table, lattice, criterion);
    };
    let mut out = Vec::with_capacity(lattice.n_nodes());
    for node in lattice.nodes() {
        let ok = criterion.is_satisfied_hist(&eval.histograms(&node)?)?;
        out.push((node, ok));
    }
    Ok(out)
}

/// [`sweep_all`] over the legacy per-node `bucketize` path — the
/// fallback for signature-overflow tables and the `bench_report` baseline.
pub fn sweep_all_rescan<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    criterion: &C,
) -> Result<Vec<(GenNode, bool)>, AnonymizeError> {
    let mut out = Vec::with_capacity(lattice.n_nodes());
    for node in lattice.nodes() {
        let b = lattice.bucketize(table, &node)?;
        let ok = criterion.is_satisfied(&b)?;
        out.push((node, ok));
    }
    Ok(out)
}

/// Binary search along a fine→coarse chain for the first (finest) safe node
/// — logarithmic in the chain length thanks to monotonicity (Theorem 14).
///
/// Returns `None` when even the last (coarsest) node fails.
pub fn binary_search_chain<C: PrivacyCriterion>(
    table: &Table,
    lattice: &GeneralizationLattice,
    chain: &[GenNode],
    criterion: &C,
) -> Result<Option<GenNode>, AnonymizeError> {
    for (i, w) in chain.windows(2).enumerate() {
        if !w[0].le(&w[1]) {
            return Err(AnonymizeError::ChainNotMonotone { at: i });
        }
    }
    if chain.is_empty() {
        return Ok(None);
    }
    let evaluator = try_evaluator(table, lattice)?;
    let check = |node: &GenNode| -> Result<bool, AnonymizeError> {
        match &evaluator {
            Some(eval) => criterion.is_satisfied_hist(&eval.histograms(node)?),
            None => criterion.is_satisfied(&lattice.bucketize(table, node)?),
        }
    };
    // Invariant: everything below `lo` is unsafe; if `hi_safe` then chain[hi]
    // is safe.
    let mut lo = 0usize;
    let mut hi = chain.len() - 1;
    if !check(&chain[hi])? {
        return Ok(None);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if check(&chain[mid])? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(chain[lo].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{CkSafetyCriterion, KAnonymity, PrivacyCriterion};
    use wcbk_hierarchy::Hierarchy;
    use wcbk_table::datasets::hospital_table;

    fn lattice(table: &Table) -> GeneralizationLattice {
        let zip = table.column(1).dictionary().clone();
        let age = table.column(2).dictionary().clone();
        let sex = table.column(3).dictionary().clone();
        GeneralizationLattice::new(vec![
            (1, Hierarchy::suppression("Zip", &zip)),
            (2, Hierarchy::intervals("Age", &age, &[5]).unwrap()),
            (3, Hierarchy::suppression("Sex", &sex)),
        ])
        .unwrap()
    }

    /// Independent check of minimality against the exhaustive sweep.
    fn assert_minimal_consistent<C: PrivacyCriterion>(
        table: &Table,
        lattice: &GeneralizationLattice,
        make: impl Fn() -> C,
    ) {
        let outcome = find_minimal_safe(table, lattice, &make()).unwrap();
        let sweep = sweep_all(table, lattice, &make()).unwrap();
        let safe: HashSet<GenNode> = sweep
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(n, _)| n.clone())
            .collect();
        // 1. Search count of safe nodes matches sweep.
        assert_eq!(outcome.satisfied, safe.len());
        // 2. Every reported minimal node is safe with no safe predecessor.
        for m in &outcome.minimal_nodes {
            assert!(safe.contains(m), "{m} not actually safe");
            for p in lattice.predecessors(m) {
                assert!(!safe.contains(&p), "{m} has safe predecessor {p}");
            }
        }
        // 3. Every safe node with no safe predecessor is reported.
        for s in &safe {
            let has_safe_pred = lattice.predecessors(s).iter().any(|p| safe.contains(p));
            if !has_safe_pred {
                assert!(outcome.minimal_nodes.contains(s), "{s} missing");
            }
        }
    }

    #[test]
    fn k_anonymity_search_matches_sweep() {
        let t = hospital_table();
        let l = lattice(&t);
        for k in [2u64, 3, 5, 10] {
            assert_minimal_consistent(&t, &l, || KAnonymity::new(k));
        }
    }

    #[test]
    fn ck_safety_search_matches_sweep() {
        let t = hospital_table();
        let l = lattice(&t);
        for (c, k) in [(0.5, 0), (0.7, 1), (0.9, 1), (1.0, 2)] {
            assert_minimal_consistent(&t, &l, || CkSafetyCriterion::new(c, k).unwrap());
        }
    }

    #[test]
    fn rollup_search_matches_rescan_search() {
        let t = hospital_table();
        let l = lattice(&t);
        for (c, k) in [(0.5, 0), (0.7, 1), (0.9, 1), (1.0, 2), (0.41, 0)] {
            let rollup = find_minimal_safe(&t, &l, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            let rescan =
                find_minimal_safe_rescan(&t, &l, &CkSafetyCriterion::new(c, k).unwrap()).unwrap();
            assert_eq!(rollup, rescan, "(c,k)=({c},{k})");
        }
        for k in [2u64, 5, 11] {
            let rollup = find_minimal_safe(&t, &l, &KAnonymity::new(k)).unwrap();
            let rescan = find_minimal_safe_rescan(&t, &l, &KAnonymity::new(k)).unwrap();
            assert_eq!(rollup, rescan, "k={k}");
        }
    }

    #[test]
    fn sweep_matches_rescan_sweep() {
        let t = hospital_table();
        let l = lattice(&t);
        let a = sweep_all(&t, &l, &CkSafetyCriterion::new(0.7, 1).unwrap()).unwrap();
        let b = sweep_all_rescan(&t, &l, &CkSafetyCriterion::new(0.7, 1).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_saves_evaluations() {
        let t = hospital_table();
        let l = lattice(&t);
        let outcome = find_minimal_safe(&t, &l, &KAnonymity::new(2)).unwrap();
        assert!(outcome.evaluated < l.n_nodes(), "no pruning happened");
        assert!(!outcome.minimal_nodes.is_empty());
    }

    #[test]
    fn impossible_criterion_yields_empty() {
        let t = hospital_table();
        let l = lattice(&t);
        // 11-anonymity is impossible for a 10-row table.
        let outcome = find_minimal_safe(&t, &l, &KAnonymity::new(11)).unwrap();
        assert!(outcome.minimal_nodes.is_empty());
        assert_eq!(outcome.satisfied, 0);
    }

    #[test]
    fn binary_search_finds_first_safe_on_chain() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        let criterion = KAnonymity::new(5);
        let found = binary_search_chain(&t, &l, &chain, &criterion)
            .unwrap()
            .expect("top is 5-anonymous");
        // Verify: found is safe, its chain predecessor is not.
        let idx = chain.iter().position(|n| *n == found).unwrap();
        assert!(KAnonymity::new(5)
            .is_satisfied(&l.bucketize(&t, &chain[idx]).unwrap())
            .unwrap());
        if idx > 0 {
            assert!(!KAnonymity::new(5)
                .is_satisfied(&l.bucketize(&t, &chain[idx - 1]).unwrap())
                .unwrap());
        }
    }

    #[test]
    fn binary_search_none_when_even_top_fails() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        let found = binary_search_chain(&t, &l, &chain, &KAnonymity::new(11)).unwrap();
        assert_eq!(found, None);
    }

    #[test]
    fn binary_search_rejects_bad_chain() {
        let t = hospital_table();
        let l = lattice(&t);
        let mut chain = l.maximal_chain();
        chain.reverse();
        let err = binary_search_chain(&t, &l, &chain, &KAnonymity::new(2)).unwrap_err();
        assert!(matches!(err, AnonymizeError::ChainNotMonotone { at: 0 }));
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let t = hospital_table();
        let l = lattice(&t);
        let chain = l.maximal_chain();
        for (c, k) in [(0.5, 0), (0.5, 1), (0.9, 2), (0.41, 0)] {
            let criterion = CkSafetyCriterion::new(c, k).unwrap();
            let binary = binary_search_chain(&t, &l, &chain, &criterion).unwrap();
            let mut linear = None;
            for node in &chain {
                let b = l.bucketize(&t, node).unwrap();
                if CkSafetyCriterion::new(c, k)
                    .unwrap()
                    .is_satisfied(&b)
                    .unwrap()
                {
                    linear = Some(node.clone());
                    break;
                }
            }
            assert_eq!(binary, linear, "c={c} k={k}");
        }
    }

    #[test]
    fn report_carries_outcome_and_rollup_stats() {
        let t = hospital_table();
        let l = lattice(&t);
        let criterion = CkSafetyCriterion::new(0.7, 1).unwrap();
        let config = SearchConfig::default();
        let report = find_minimal_safe_report(&t, &l, &criterion, &config).unwrap();
        let direct = find_minimal_safe_with(&t, &l, &criterion, &config).unwrap();
        assert_eq!(report.outcome, direct);
        let rollup = report.rollup.expect("hospital packs into u64 signatures");
        assert_eq!(rollup.table_scans, 1);
        assert!(rollup.derived > 0);
    }

    #[test]
    fn strided_verdicts_align_with_items() {
        // Verdicts must land at their item's index no matter the stride.
        let items: Vec<u32> = (0..37).collect();
        for threads in [2usize, 3, 4, 8, 64] {
            let verdicts = parallel_verdicts(&items, threads, |&x| Ok(x % 3 == 0)).unwrap();
            let expected: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
            assert_eq!(verdicts, expected, "threads={threads}");
        }
    }

    #[test]
    fn strided_verdicts_report_first_error_in_item_order() {
        let items: Vec<u32> = (0..20).collect();
        let err = parallel_verdicts(&items, 4, |&x| {
            if x >= 7 {
                Err(AnonymizeError::InvalidParameter(format!("item {x}")))
            } else {
                Ok(true)
            }
        })
        .unwrap_err();
        // Items 7, 8, 9, … all fail on different workers; item order wins.
        assert!(err.to_string().contains("item 7"), "{err}");
    }

    use wcbk_table::Table;
}
