//! Std-only observability primitives for the wcbk stack.
//!
//! Three pieces, all dependency-free and lock-free on the record path:
//!
//! - [`MetricsRegistry`] — a process-wide set of named metric families
//!   ([`Counter`], [`Gauge`], [`Histogram`]) rendered in Prometheus text
//!   exposition format by [`MetricsRegistry::render`]. Registration takes a
//!   lock; recording is pure atomics on the `Arc` handles callers keep.
//! - [`Histogram`] — log-bucketed latency histogram over a fixed 1-2.5-5
//!   microsecond ladder spanning 10µs..10s, with p50/p90/p99/max derivable
//!   from the buckets via [`Histogram::quantile`].
//! - Trace ids — [`next_trace_id`] mints 16-hex-char request ids and
//!   [`sanitize_trace_id`] validates client-supplied `X-Request-Id` values.
//!
//! The serving layer owns the only long-lived registry; engine-layer crates
//! stay obs-free and expose raw cumulative micros that the server mirrors
//! into counters at scrape time (see [`Counter::record_total`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket upper bounds in microseconds: a 1-2.5-5 ladder from
/// 10µs to 10s. Values above the last bound land in the implicit `+Inf`
/// bucket and saturate quantile estimates at the observed max.
pub const BUCKET_BOUNDS: [u64; 19] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Number of buckets including the `+Inf` overflow bucket.
pub const N_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Mirrors an already-monotone cumulative total into this counter:
    /// raises the value to `total` and never lowers it, so re-syncing from
    /// a source that was reset (or scraping twice) cannot make the series
    /// go backwards.
    pub fn record_total(&self, total: u64) {
        self.value.fetch_max(total, Ordering::Relaxed);
    }
}

/// A value that goes up and down (occupancy, weights, high-water marks).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water mark upkeep).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log-bucketed latency histogram over [`BUCKET_BOUNDS`] (microseconds).
///
/// `record` is wait-free: one linear bound scan plus four relaxed atomic
/// updates. Reads (`quantile`, `snapshot`, rendering) tolerate the benign
/// races that come with relaxed per-field atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (last entry is the `+Inf` bucket).
    pub buckets: [u64; N_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket that holds `micros`.
    fn bucket_index(micros: u64) -> usize {
        BUCKET_BOUNDS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(BUCKET_BOUNDS.len())
    }

    /// Records one latency observation in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in microseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation in microseconds.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum(),
            count: self.count(),
            max: self.max(),
        }
    }

    /// Folds another histogram's observations into this one (shard
    /// aggregation; also exercised by the unit tests).
    pub fn merge(&self, other: &Histogram) {
        for i in 0..N_BUCKETS {
            self.buckets[i].fetch_add(other.buckets[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (0.0..=1.0) in microseconds by linear
    /// interpolation within the owning bucket. Observations in the `+Inf`
    /// bucket saturate to the observed max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += n;
            if cum >= rank {
                if i == BUCKET_BOUNDS.len() {
                    // Overflow bucket: saturate at the observed max.
                    return self.max;
                }
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS[i - 1] };
                let upper = BUCKET_BOUNDS[i].min(self.max.max(lower));
                let frac = (rank - prev_cum) as f64 / n as f64;
                return lower + ((upper - lower) as f64 * frac).round() as u64;
            }
        }
        self.max
    }
}

/// What a metric family measures, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Latency distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    /// Rendered label set, e.g. `endpoint="audit",class="2xx"` (empty for
    /// an unlabelled series).
    labels: String,
    metric: Metric,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    series: Vec<Series>,
}

/// Process-wide registry of metric families.
///
/// Registration (`counter`, `gauge`, `histogram` and their `_with` label
/// variants) is get-or-create and takes a mutex; callers hold the returned
/// `Arc` so the hot record path never touches the lock. Families render in
/// registration order, series within a family in label registration order.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<T>>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        cast: G,
    ) -> T {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric {name} re-registered with a new kind");
                f
            }
            None => {
                families.push(Family {
                    name,
                    help,
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == rendered) {
            return cast(&s.metric).expect("metric kind is checked per family");
        }
        let metric = make();
        let out = cast(&metric).expect("freshly made metric matches its kind");
        family.series.push(Series {
            labels: rendered,
            metric,
        });
        out
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter with labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.series(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a gauge with labels.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.series(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every family in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(family.name);
            out.push(' ');
            out.push_str(family.help);
            out.push_str("\n# TYPE ");
            out.push_str(family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        push_sample(&mut out, family.name, "", &series.labels, None, c.get());
                    }
                    Metric::Gauge(g) => {
                        push_sample(&mut out, family.name, "", &series.labels, None, g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            cum += n;
                            let le = if i == BUCKET_BOUNDS.len() {
                                "+Inf".to_string()
                            } else {
                                BUCKET_BOUNDS[i].to_string()
                            };
                            push_sample(
                                &mut out,
                                family.name,
                                "_bucket",
                                &series.labels,
                                Some(("le", &le)),
                                cum,
                            );
                        }
                        push_sample(
                            &mut out,
                            family.name,
                            "_sum",
                            &series.labels,
                            None,
                            snap.sum,
                        );
                        push_sample(
                            &mut out,
                            family.name,
                            "_count",
                            &series.labels,
                            None,
                            snap.count,
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    extra: Option<(&str, &str)>,
    value: u64,
) {
    out.push_str(name);
    out.push_str(suffix);
    let has_extra = extra.is_some();
    if !labels.is_empty() || has_extra {
        out.push('{');
        out.push_str(labels);
        if let Some((k, v)) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Process-unique trace id sequence number.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mints a fresh 16-hex-char trace id, unique within the process and
/// seeded with wall time and pid so concurrent processes rarely collide.
pub fn next_trace_id() -> String {
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mixed = splitmix64(nanos ^ (u64::from(std::process::id()) << 32) ^ seq.rotate_left(17));
    format!("{mixed:016x}")
}

/// Validates a client-supplied `X-Request-Id`: 1..=64 visible ASCII
/// characters (no spaces, no controls — it is echoed into headers and log
/// lines verbatim). Returns `None` when unusable, in which case the caller
/// should mint one with [`next_trace_id`].
pub fn sanitize_trace_id(raw: &str) -> Option<&str> {
    let raw = raw.trim();
    if raw.is_empty() || raw.len() > 64 {
        return None;
    }
    if raw.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        Some(raw)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // A value exactly on a bound lands in that bound's bucket; one past
        // it lands in the next.
        for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(bound), i, "bound {bound}");
            let next = Histogram::bucket_index(bound + 1);
            assert_eq!(next, i + 1, "bound {bound} + 1");
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKET_BOUNDS.len());
    }

    #[test]
    fn histogram_records_sum_count_max() {
        let h = Histogram::new();
        for v in [5, 30, 30, 700, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 30 + 30 + 700 + 2_000_000);
        assert_eq!(h.max(), 2_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1); // 5 <= 10
        assert_eq!(snap.buckets[2], 2); // 30s land in (25, 50]
        assert_eq!(snap.buckets[6], 1); // 700 in (500, 1000]
        assert_eq!(snap.buckets[16], 1); // 2ms*1000 in (1s, 2.5s]
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations spread evenly through the (100, 250] bucket.
        for i in 0..100 {
            h.record(101 + i);
        }
        let p50 = h.quantile(0.5);
        assert!((100..=250).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > p50, "p99 {p99} should exceed p50 {p50}");
        assert!(p99 <= 250, "p99 = {p99}");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn overflow_bucket_saturates_at_observed_max() {
        let h = Histogram::new();
        h.record(50_000_000); // 50s, past the 10s top bound
        h.record(99_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[N_BUCKETS - 1], 2);
        // Every quantile inside the +Inf bucket reports the observed max,
        // not an extrapolated bound.
        assert_eq!(h.quantile(0.5), 99_000_000);
        assert_eq!(h.quantile(0.99), 99_000_000);
    }

    #[test]
    fn merge_adds_buckets_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(20);
        a.record(300);
        b.record(20);
        b.record(7_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 20 + 300 + 20 + 7_000_000);
        assert_eq!(a.max(), 7_000_000);
        let snap = a.snapshot();
        assert_eq!(snap.buckets[1], 2, "both 20s merged into (10, 25]");
    }

    #[test]
    fn counter_record_total_never_goes_backwards() {
        let c = Counter::new();
        c.record_total(100);
        assert_eq!(c.get(), 100);
        c.record_total(40); // source was reset; mirror must hold
        assert_eq!(c.get(), 100);
        c.record_total(250);
        assert_eq!(c.get(), 250);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn registry_get_or_create_returns_same_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("wcbk_test_total", "help");
        let b = reg.counter("wcbk_test_total", "help");
        a.inc();
        assert_eq!(b.get(), 1, "same name resolves to the same counter");
        let l1 = reg.counter_with("wcbk_labeled_total", "help", &[("endpoint", "audit")]);
        let l2 = reg.counter_with("wcbk_labeled_total", "help", &[("endpoint", "search")]);
        l1.add(2);
        assert_eq!(l2.get(), 0, "distinct labels are distinct series");
    }

    #[test]
    fn render_emits_well_formed_exposition_text() {
        let reg = MetricsRegistry::new();
        reg.counter_with(
            "wcbk_http_requests_total",
            "Requests",
            &[("endpoint", "audit")],
        )
        .add(3);
        reg.gauge("wcbk_pool_entries", "Occupancy").set(9);
        let h = reg.histogram("wcbk_http_request_micros", "Latency");
        h.record(30);
        h.record(600);
        let text = reg.render();
        assert!(text.contains("# HELP wcbk_http_requests_total Requests\n"));
        assert!(text.contains("# TYPE wcbk_http_requests_total counter\n"));
        assert!(text.contains("wcbk_http_requests_total{endpoint=\"audit\"} 3\n"));
        assert!(text.contains("# TYPE wcbk_pool_entries gauge\n"));
        assert!(text.contains("wcbk_pool_entries 9\n"));
        assert!(text.contains("# TYPE wcbk_http_request_micros histogram\n"));
        assert!(text.contains("wcbk_http_request_micros_bucket{le=\"25\"} 0\n"));
        assert!(text.contains("wcbk_http_request_micros_bucket{le=\"50\"} 1\n"));
        assert!(text.contains("wcbk_http_request_micros_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("wcbk_http_request_micros_sum 630\n"));
        assert!(text.contains("wcbk_http_request_micros_count 2\n"));
        // Buckets are cumulative and end at +Inf == count.
        let inf: u64 = text
            .lines()
            .find(|l| l.starts_with("wcbk_http_request_micros_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(inf, 2);
    }

    #[test]
    fn trace_ids_are_unique_and_well_formed() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn sanitize_trace_id_rejects_junk() {
        assert_eq!(sanitize_trace_id("abc-123_XYZ"), Some("abc-123_XYZ"));
        assert_eq!(sanitize_trace_id("  padded  "), Some("padded"));
        assert_eq!(sanitize_trace_id(""), None);
        assert_eq!(sanitize_trace_id("   "), None);
        assert_eq!(sanitize_trace_id("has space"), None);
        assert_eq!(sanitize_trace_id("ctrl\u{7}char"), None);
        assert_eq!(sanitize_trace_id(&"x".repeat(65)), None);
        let max = "x".repeat(64);
        assert_eq!(sanitize_trace_id(&max), Some(max.as_str()));
    }
}
