//! The HTTP front-end: a readiness-based connection reactor over one shared
//! [`AuditService`] and a bounded CPU worker pool.
//!
//! * **Evented I/O** — every socket is nonblocking. One reactor thread (the
//!   caller of [`Server::run`]) multiplexes all connections with
//!   [`crate::poll`]: it accepts, parses requests incrementally
//!   ([`RequestParser`]), flushes response bytes as sockets become
//!   writable, and parks when nothing is ready. A connection is a small
//!   state machine (reading → dispatched → writing → idle keep-alive), so
//!   thousands of mostly-idle keep-alive clients cost a few hundred bytes
//!   each — not a thread.
//! * **Workers never touch sockets** — CPU-bound service work runs on
//!   `workers` pool threads. A worker receives a fully parsed request,
//!   renders the response into memory (`ConnWriter`), and hands the bytes
//!   back to the reactor (`Completion`); the reactor alone writes to the
//!   socket. Connections never block a worker; workers never block on a
//!   socket. Streaming batches work the same way: each NDJSON line becomes
//!   one completion, flushed by write-readiness.
//! * **Admission** — with `max_connections = 0` (the default) the server
//!   reproduces the classic bounded-queue semantics exactly: `workers`
//!   virtual *leases*, up to `queue_depth` connections waiting for one, and
//!   an immediate `503` (with `Retry-After`) beyond that. With
//!   `max_connections = N` the server switches to evented admission: up to
//!   `N` concurrent connections, each dispatching as soon as a request
//!   parses, `503` past `N`.
//! * **Deadlines** — the reactor reaps slow clients without spending a
//!   worker on them: headers must complete within `read_timeout` of the
//!   first request byte (slowloris), body and response writes must keep
//!   making progress, and idle keep-alive connections are reaped after
//!   `read_timeout` (lease mode) or `idle_timeout` (evented mode). Reaped
//!   connections are closed silently and counted in `/stats`.
//! * **Graceful shutdown** — `POST /shutdown` (or
//!   [`ServerHandle::shutdown`]) stops accepting, closes idle connections
//!   immediately, gives partially-read requests a short grace period, and
//!   lets every dispatched request — including a streaming batch — run to
//!   completion before [`Server::run`] returns.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wcbk_core::sched::{evaluate_work_stealing, MonotoneDag};
use wcbk_obs::{next_trace_id, sanitize_trace_id};
use wcbk_store::DatasetStore;

use crate::http::{
    write_json, write_json_with, write_response_with, ChunkedWriter, HttpError, Request,
    RequestParser,
};
use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::poll::{fd_of, Fd, Interest, Poller, Waker};
use crate::service::{AuditService, CsvUpload, ServeError, ServiceLimits};

/// Bytes read from a socket per reactor pass over a readable connection.
const READ_CHUNK: usize = 64 * 1024;
/// A worker's response buffer auto-flushes to the reactor past this size.
const FLUSH_THRESHOLD: usize = 256 * 1024;
/// Hard cap on un-flushed response bytes buffered for one connection; a
/// client that stops reading its (streaming) response is cut off here
/// rather than ballooning memory.
const MAX_PENDING_OUT: usize = 32 * 1024 * 1024;
/// How long a partially-read request may linger once shutdown begins.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);
/// Pause on persistent `accept` errors (EMFILE under fd exhaustion) so the
/// reactor doesn't busy-spin while workers release descriptors.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Server knobs; `Default` gives a loopback server with
/// hardware-parallelism workers and classic bounded-queue admission.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads running service work (`0` = all cores).
    pub workers: usize,
    /// Lease mode only: connections held waiting for a worker lease before
    /// new ones get 503.
    pub queue_depth: usize,
    /// Threads each `/batch` request fans out over (`0` = the worker count).
    pub batch_threads: usize,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Slow-client deadline: headers must complete within this of the first
    /// request byte, body bytes and response writes must keep progressing,
    /// and (in lease mode) an idle keep-alive connection is reaped after
    /// this long. `None` disables the bound.
    pub read_timeout: Option<Duration>,
    /// Evented mode (`max_connections > 0`): connection cap, beyond which
    /// new connections are answered 503 at accept. `0` keeps the classic
    /// worker-lease admission (`workers` + `queue_depth` bound concurrency).
    pub max_connections: usize,
    /// Evented mode: idle keep-alive connections are reaped after this.
    /// `None` keeps them forever (until `max_connections` pushes back).
    pub idle_timeout: Option<Duration>,
    /// Memory budgets for the engine registry and the session store
    /// (`Default`: unbounded — the one-shot behavior).
    pub limits: ServiceLimits,
    /// Durable catalog directory (`wcbk serve --data-dir`). `Some` makes
    /// registrations and releases crash-safe: the WAL is replayed at bind,
    /// known handles resume serving (lazily rebuilt on first touch), and
    /// `DELETE` deletes durably. `None` keeps the classic in-memory server.
    pub data_dir: Option<PathBuf>,
    /// Emit one structured JSON access-log line per request to stdout
    /// (`wcbk serve --log-json`).
    pub log_json: bool,
    /// Requests whose end-to-end latency meets or exceeds this many
    /// milliseconds are logged (in the access-log format) even without
    /// `log_json`, and counted in `wcbk_http_slow_requests_total`.
    pub slow_request_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            batch_threads: 0,
            max_body: 64 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(5)),
            max_connections: 0,
            idle_timeout: Some(Duration::from_secs(60)),
            limits: ServiceLimits::default(),
            data_dir: None,
            log_json: false,
            slow_request_ms: None,
        }
    }
}

/// Counters the server adds to `/stats` next to the service's.
#[derive(Default)]
struct ServerCounters {
    requests: AtomicU64,
    rejected: AtomicU64,
    open: AtomicU64,
    peak: AtomicU64,
    reaped_idle: AtomicU64,
    reaped_slow: AtomicU64,
    wakeups: AtomicU64,
    /// Σ reactor queue wait (parse-complete → worker pickup), micros.
    queue_wait_micros: AtomicU64,
    /// Requests that went through the worker queue (the divisor for the
    /// mean queue wait).
    dispatched: AtomicU64,
}

/// A parsed request handed from the reactor to the worker pool.
struct Job {
    conn: u64,
    request: Request,
    /// Set by the reactor when the connection dies, so the worker aborts
    /// (streamed) work nobody will read.
    dead: Arc<AtomicBool>,
    /// A streamed CSV upload decoded off the wire, ready to finalize.
    upload: Option<CsvUpload>,
    /// Client-supplied `X-Request-Id` (sanitized) or a generated id; echoed
    /// on the response and stamped on every log line for this request.
    trace_id: String,
    /// First request byte → parse complete, micros.
    parse_micros: u64,
    /// When parsing completed — the queue-wait clock, read by the worker.
    queued_at: Instant,
}

/// Bytes (or the end-of-response marker) a worker hands back to the
/// reactor for socket flushing.
enum Completion {
    Data(Vec<u8>),
    End { keep_alive: bool },
}

/// State shared by the reactor, the workers, and every handle.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    completions: Mutex<Vec<(u64, Completion)>>,
    waker: Waker,
    shutdown: AtomicBool,
    /// Set once the reactor has drained every connection; workers exit when
    /// this is set and the job queue is empty.
    drained: AtomicBool,
    counters: ServerCounters,
    local_addr: SocketAddr,
    queue_depth: usize,
    workers: usize,
    batch_threads: usize,
    max_body: usize,
    read_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    max_connections: usize,
    started: Instant,
    /// The `/metrics` registry plus every pre-registered series.
    metrics: ServeMetrics,
    log_json: bool,
    slow_request_ms: Option<u64>,
}

impl Shared {
    /// Initiates graceful shutdown: flag it, wake parked workers, and poke
    /// the reactor so it observes the flag immediately.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ready.notify_all();
        self.waker.wake();
    }
}

/// Locks a mutex, recovering from poisoning: none of the shared queues has
/// an invariant a panicked holder can break, and giving up the lock forever
/// would turn one handler panic into a full-server outage.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn push_completion(shared: &Shared, conn: u64, completion: Completion) {
    lock(&shared.completions).push((conn, completion));
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful shutdown (idempotent): in-flight and queued requests
    /// finish, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound listener plus the shared service — see the module docs.
pub struct Server {
    listener: TcpListener,
    poller: Poller,
    service: Arc<AuditService>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and materializes the shared state. The server
    /// does not serve until [`run`](Self::run).
    pub fn bind(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (poller, waker) = Poller::new()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            counters: ServerCounters::default(),
            local_addr,
            queue_depth: config.queue_depth.max(1),
            workers,
            batch_threads: if config.batch_threads == 0 {
                workers
            } else {
                config.batch_threads
            },
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            max_connections: config.max_connections,
            started: Instant::now(),
            metrics: ServeMetrics::new(),
            log_json: config.log_json,
            slow_request_ms: config.slow_request_ms,
        });
        // Open (and replay) the durable catalog before serving: a corrupt
        // store fails the bind loudly instead of 500ing every request.
        let service = match &config.data_dir {
            Some(dir) => {
                let store = DatasetStore::open(dir)?;
                AuditService::with_store(config.limits, Arc::new(store))
            }
            None => AuditService::with_limits(config.limits),
        };
        Ok(Self {
            listener,
            poller,
            service: Arc::new(service),
            shared,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A remote control valid for the server's whole life.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared audit service (tests inspect its stats directly).
    pub fn service(&self) -> Arc<AuditService> {
        Arc::clone(&self.service)
    }

    /// Serves until graceful shutdown completes. The calling thread runs
    /// the reactor; workers run on scoped threads.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        let service = &self.service;
        let mut reactor = Reactor {
            shared,
            service,
            listener: Some(self.listener),
            poller: self.poller,
            conns: HashMap::new(),
            next_id: 0,
            leases_free: shared.workers,
            waiters: 0,
            evented: shared.max_connections > 0,
            shutdown_seen: false,
            shutdown_at: Instant::now(),
            accept_backoff_until: None,
            open: 0,
        };
        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(move || worker_loop(shared, service));
            }
            reactor.run();
            shared.drained.store(true, Ordering::SeqCst);
            shared.ready.notify_all();
        });
        Ok(())
    }
}

/// Where a connection's state machine currently stands.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Parsing request bytes (or idle between keep-alive requests).
    Reading,
    /// Lease mode: a complete request is parsed but waiting for a free
    /// worker lease (the classic bounded queue, without the thread).
    Pending,
    /// A request is on the worker pool; response bytes arrive as
    /// completions.
    Dispatched,
    /// Flushing the last bytes, then close.
    Closing,
}

/// Which deadline fired, for the reap counters.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    Idle,
    Slow,
    Grace,
}

/// One connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Response bytes not yet written; `out_pos` marks the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    dead: Arc<AtomicBool>,
    /// Lease mode: this connection holds one of the `workers` leases.
    has_lease: bool,
    /// A synthetic connection that only delivers a 503 (not counted open).
    is_reject: bool,
    read_eof: bool,
    /// When the current request's first byte arrived — the whole-headers
    /// deadline anchors here, so trickling headers can't evade it.
    first_byte_at: Option<Instant>,
    /// Last observed progress (bytes read or written).
    last_progress: Instant,
    /// When the connection last went idle between requests.
    idle_since: Instant,
    /// An in-flight streamed CSV upload being decoded as bytes arrive.
    upload: Option<CsvUpload>,
    /// Lease mode: the parsed request waiting for a lease.
    pending_job: Option<Job>,
}

/// Poll-set key for the listener (connection ids count up from zero).
const LISTENER_KEY: u64 = u64::MAX;

/// The reactor: owns every connection and the listener, multiplexed by one
/// [`Poller`].
struct Reactor<'a> {
    shared: &'a Shared,
    service: &'a AuditService,
    listener: Option<TcpListener>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Lease mode: worker leases not currently held by a connection.
    leases_free: usize,
    /// Lease mode: connections waiting for a lease (the bounded queue).
    waiters: usize,
    evented: bool,
    shutdown_seen: bool,
    shutdown_at: Instant,
    accept_backoff_until: Option<Instant>,
    /// Admitted (non-reject) connections currently open.
    open: u64,
}

impl Reactor<'_> {
    fn run(&mut self) {
        loop {
            self.shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            self.drain_completions();
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.shutdown_seen {
                self.enter_shutdown();
            }
            if self.shutdown_seen && self.conns.is_empty() {
                return;
            }

            let now = Instant::now();
            let accept_paused = self.accept_backoff_until.is_some_and(|t| now < t);
            if !accept_paused {
                self.accept_backoff_until = None;
            }
            let mut entries: Vec<(Fd, Interest)> = Vec::with_capacity(self.conns.len() + 1);
            let mut keys: Vec<u64> = Vec::with_capacity(self.conns.len() + 1);
            if !accept_paused {
                if let Some(listener) = &self.listener {
                    entries.push((fd_of(listener), Interest::READ));
                    keys.push(LISTENER_KEY);
                }
            }
            let mut wake_at: Option<Instant> = self.accept_backoff_until;
            for (&id, conn) in &self.conns {
                entries.push((
                    fd_of(&conn.stream),
                    Interest {
                        readable: conn.state == ConnState::Reading && !conn.read_eof,
                        writable: conn.out_pos < conn.out.len(),
                    },
                ));
                keys.push(id);
                if let Some((at, _)) = self.conn_deadline(conn) {
                    if wake_at.is_none_or(|w| at < w) {
                        wake_at = Some(at);
                    }
                }
            }
            let timeout = wake_at.map(|at| at.saturating_duration_since(now));
            let ready = match self.poller.wait(&entries, timeout) {
                Ok((ready, _woke)) => ready,
                Err(_) => {
                    // A failed poll (resource exhaustion) must not busy-spin.
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            for (i, &key) in keys.iter().enumerate() {
                if !ready[i].any() {
                    continue;
                }
                if key == LISTENER_KEY {
                    self.do_accept();
                    continue;
                }
                if !self.conns.contains_key(&key) {
                    continue; // closed earlier this pass
                }
                if ready[i].error {
                    self.close_conn(key);
                    continue;
                }
                if ready[i].writable {
                    self.flush_conn(key);
                }
                if ready[i].readable && self.conns.contains_key(&key) {
                    self.read_conn(key);
                }
            }
            self.reap_deadlines();
        }
    }

    /// Applies every completion the workers queued since the last pass.
    fn drain_completions(&mut self) {
        let done = std::mem::take(&mut *lock(&self.shared.completions));
        for (id, completion) in done {
            match completion {
                Completion::Data(bytes) => self.append_output(id, &bytes),
                Completion::End { keep_alive } => self.finish_request(id, keep_alive),
            }
        }
    }

    /// First observation of the shutdown flag: stop accepting, close idle
    /// connections, dispatch queued (lease-waiting) requests, and start the
    /// grace clock for partially-read ones.
    fn enter_shutdown(&mut self) {
        self.shutdown_seen = true;
        self.shutdown_at = Instant::now();
        self.listener = None;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            match conn.state {
                ConnState::Pending => {
                    let job = conn.pending_job.take().expect("pending conn holds a job");
                    conn.state = ConnState::Dispatched;
                    self.submit(job);
                }
                ConnState::Reading => {
                    if conn.parser.is_idle() && conn.out_pos >= conn.out.len() {
                        self.close_conn(id);
                    }
                    // Mid-request connections get SHUTDOWN_GRACE (see
                    // `conn_deadline`) to finish or be cut.
                }
                ConnState::Dispatched | ConnState::Closing => {}
            }
        }
    }

    /// The soonest deadline (if any) that should reap this connection.
    fn conn_deadline(&self, conn: &Conn) -> Option<(Instant, DeadlineKind)> {
        let mut best: Option<(Instant, DeadlineKind)> = None;
        let push = |at: Instant, kind: DeadlineKind, best: &mut Option<(Instant, DeadlineKind)>| {
            if best.is_none_or(|(b, _)| at < b) {
                *best = Some((at, kind));
            }
        };
        // A response (or a 503) the peer won't read: write-stall deadline.
        if conn.out_pos < conn.out.len() {
            if let Some(rt) = self.shared.read_timeout {
                push(conn.last_progress + rt, DeadlineKind::Slow, &mut best);
            }
        }
        if conn.state == ConnState::Reading {
            if conn.parser.is_idle() {
                if conn.out_pos >= conn.out.len() {
                    if self.evented {
                        if let Some(it) = self.shared.idle_timeout {
                            push(conn.idle_since + it, DeadlineKind::Idle, &mut best);
                        }
                    } else if conn.has_lease {
                        // Lease mode mirrors the classic blocking-read
                        // timeout on an idle keep-alive connection.
                        if let Some(rt) = self.shared.read_timeout {
                            push(conn.idle_since + rt, DeadlineKind::Idle, &mut best);
                        }
                    }
                }
            } else {
                if let Some(rt) = self.shared.read_timeout {
                    if conn.parser.head_received() {
                        // Body: progress-based.
                        push(conn.last_progress + rt, DeadlineKind::Slow, &mut best);
                    } else if let Some(first) = conn.first_byte_at {
                        // Headers: absolute from the first byte, so a
                        // byte-at-a-time slowloris cannot reset it.
                        push(first + rt, DeadlineKind::Slow, &mut best);
                    }
                }
                if self.shutdown_seen {
                    push(
                        self.shutdown_at + SHUTDOWN_GRACE,
                        DeadlineKind::Grace,
                        &mut best,
                    );
                }
            }
        }
        if self.shutdown_seen && conn.is_reject {
            push(
                self.shutdown_at + SHUTDOWN_GRACE,
                DeadlineKind::Grace,
                &mut best,
            );
        }
        best
    }

    /// Closes every connection whose deadline has passed.
    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<(u64, DeadlineKind)> = self
            .conns
            .iter()
            .filter_map(|(&id, conn)| {
                self.conn_deadline(conn)
                    .filter(|&(at, _)| at <= now)
                    .map(|(_, kind)| (id, kind))
            })
            .collect();
        for (id, kind) in expired {
            match kind {
                DeadlineKind::Idle => {
                    self.shared
                        .counters
                        .reaped_idle
                        .fetch_add(1, Ordering::Relaxed);
                }
                DeadlineKind::Slow => {
                    self.shared
                        .counters
                        .reaped_slow
                        .fetch_add(1, Ordering::Relaxed);
                }
                DeadlineKind::Grace => {}
            }
            self.close_conn(id);
        }
    }

    /// Accepts until the listener would block.
    fn do_accept(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Admission control: lease mode reproduces the classic queue
    /// (lease → waiter → 503); evented mode caps open connections.
    fn admit(&mut self, stream: TcpStream) {
        let admitted = if self.evented {
            (self.open as usize) < self.shared.max_connections
        } else {
            self.leases_free > 0 || self.waiters < self.shared.queue_depth
        };
        if !admitted {
            self.reject(stream);
            return;
        }
        let has_lease = !self.evented && self.leases_free > 0;
        if has_lease {
            self.leases_free -= 1;
        } else if !self.evented {
            self.waiters += 1;
        }
        let now = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        self.open += 1;
        self.shared
            .counters
            .open
            .store(self.open, Ordering::Relaxed);
        self.shared
            .counters
            .peak
            .fetch_max(self.open, Ordering::Relaxed);
        self.conns.insert(
            id,
            Conn {
                stream,
                parser: RequestParser::new(self.shared.max_body),
                out: Vec::new(),
                out_pos: 0,
                state: ConnState::Reading,
                dead: Arc::new(AtomicBool::new(false)),
                has_lease,
                is_reject: false,
                read_eof: false,
                first_byte_at: None,
                last_progress: now,
                idle_since: now,
                upload: None,
                pending_job: None,
            },
        );
    }

    /// Registers a synthetic connection whose only job is to deliver the
    /// 503 (poll-driven, so a slow rejectee can't stall the reactor).
    fn reject(&mut self, stream: TcpStream) {
        self.shared
            .counters
            .rejected
            .fetch_add(1, Ordering::Relaxed);
        let body = Json::object(vec![("error", "server is at capacity".into())]).to_string();
        let out = format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        let now = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        self.conns.insert(
            id,
            Conn {
                stream,
                parser: RequestParser::new(0),
                out,
                out_pos: 0,
                state: ConnState::Closing,
                dead: Arc::new(AtomicBool::new(false)),
                has_lease: false,
                is_reject: true,
                read_eof: false,
                first_byte_at: None,
                last_progress: now,
                idle_since: now,
                upload: None,
                pending_job: None,
            },
        );
        self.flush_conn(id);
    }

    /// Removes a connection, recycling its lease (and granting it to the
    /// longest-waiting connection) in lease mode.
    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        conn.dead.store(true, Ordering::SeqCst);
        if !conn.is_reject {
            self.open -= 1;
            self.shared
                .counters
                .open
                .store(self.open, Ordering::Relaxed);
            if conn.has_lease {
                self.leases_free += 1;
            } else if !self.evented {
                self.waiters -= 1;
            }
            if !self.evented && !self.shutdown_seen {
                self.grant_leases();
            }
        }
    }

    /// Hands freed leases to waiting connections in arrival order.
    fn grant_leases(&mut self) {
        while self.leases_free > 0 {
            let Some(id) = self
                .conns
                .iter()
                .filter(|(_, c)| !c.has_lease && !c.is_reject)
                .map(|(&id, _)| id)
                .min()
            else {
                return;
            };
            let conn = self.conns.get_mut(&id).expect("waiter id just found");
            conn.has_lease = true;
            conn.idle_since = Instant::now();
            self.leases_free -= 1;
            self.waiters -= 1;
            if conn.state == ConnState::Pending {
                let job = conn.pending_job.take().expect("pending conn holds a job");
                conn.state = ConnState::Dispatched;
                self.submit(job);
            }
        }
    }

    fn submit(&self, job: Job) {
        lock(&self.shared.jobs).push_back(job);
        self.shared.ready.notify_one();
    }

    /// One nonblocking read; level-triggered polling re-reports leftover
    /// kernel bytes, so a single chunk per pass keeps the loop fair.
    fn read_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.state != ConnState::Reading || conn.read_eof {
            return;
        }
        let mut buf = [0u8; READ_CHUNK];
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_eof = true;
                if conn.parser.is_idle() {
                    if conn.out_pos >= conn.out.len() {
                        self.close_conn(id);
                    } else {
                        // Finish flushing the previous response, then close.
                        conn.state = ConnState::Closing;
                    }
                } else {
                    // EOF mid-request: it can never complete.
                    self.close_conn(id);
                }
            }
            Ok(n) => {
                let now = Instant::now();
                if conn.parser.is_idle() {
                    conn.first_byte_at = Some(now);
                }
                conn.last_progress = now;
                conn.parser.push(&buf[..n]);
                self.advance_parser(id);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => self.close_conn(id),
        }
    }

    /// Drives the request parser after new bytes (or after a response, for
    /// pipelined requests), dispatching at most one request.
    fn advance_parser(&mut self, id: u64) {
        enum Outcome {
            Wait,
            Dispatch(Box<Job>),
            Respond(u16, String),
            Close,
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        let outcome = match conn.parser.advance() {
            Ok(Some(mut request)) => {
                let parse_micros = conn
                    .first_byte_at
                    .take()
                    .map_or(0, |first| first.elapsed().as_micros() as u64);
                let trace_id = request
                    .header("x-request-id")
                    .and_then(sanitize_trace_id)
                    .map(str::to_owned)
                    .unwrap_or_else(next_trace_id);
                let mut upload = conn.upload.take();
                if let Some(u) = upload.as_mut() {
                    // Residual decoded bytes from the completing advance.
                    let tail = conn.parser.take_body();
                    u.push(&tail);
                } else if is_csv_upload(&request) {
                    // Small upload that arrived fully buffered: route it
                    // through the same incremental path for one code path.
                    let mut u = CsvUpload::new(&request.path);
                    u.push(&request.body);
                    request.body = Vec::new();
                    upload = Some(u);
                }
                if let Some(u) = upload.as_mut() {
                    u.finish();
                }
                self.shared
                    .counters
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                Outcome::Dispatch(Box::new(Job {
                    conn: id,
                    request,
                    dead: Arc::clone(&conn.dead),
                    upload,
                    trace_id,
                    parse_micros,
                    queued_at: Instant::now(),
                }))
            }
            Ok(None) => {
                if conn.upload.is_none() {
                    if let Some(head) = conn.parser.head() {
                        if is_csv_upload(head) {
                            let upload = CsvUpload::new(&head.path);
                            conn.parser.stream_body();
                            conn.upload = Some(upload);
                        }
                    }
                }
                if let Some(u) = conn.upload.as_mut() {
                    let bytes = conn.parser.take_body();
                    if !bytes.is_empty() {
                        u.push(&bytes);
                    }
                }
                Outcome::Wait
            }
            Err(HttpError::TooLarge { declared, limit }) => Outcome::Respond(
                413,
                format!("body of {declared} bytes exceeds the {limit}-byte limit"),
            ),
            Err(HttpError::Malformed(message)) => Outcome::Respond(400, message),
            Err(HttpError::Io(_)) => Outcome::Close,
        };
        match outcome {
            Outcome::Wait => {}
            Outcome::Dispatch(job) => {
                let conn = self.conns.get_mut(&id).expect("conn parsed a request");
                if self.evented || conn.has_lease || self.shutdown_seen {
                    conn.state = ConnState::Dispatched;
                    self.submit(*job);
                } else {
                    conn.state = ConnState::Pending;
                    conn.pending_job = Some(*job);
                }
            }
            Outcome::Respond(status, message) => {
                // HTTP-level errors are answered by the reactor itself — no
                // worker (or lease) needed — and close the connection.
                self.service.count_bad_request();
                let body = Json::object(vec![("error", message.into())]);
                let mut bytes = Vec::new();
                let _ = write_json(&mut bytes, status, &body, false);
                let conn = self.conns.get_mut(&id).expect("conn hit a parse error");
                if conn.out_pos > 0 {
                    conn.out.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                conn.out.extend_from_slice(&bytes);
                conn.state = ConnState::Closing;
                self.flush_conn(id);
            }
            Outcome::Close => self.close_conn(id),
        }
    }

    /// Appends worker-produced response bytes and flushes opportunistically.
    fn append_output(&mut self, id: u64, bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.out_pos > 0 {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        conn.out.extend_from_slice(bytes);
        if conn.out.len() > MAX_PENDING_OUT {
            // The peer has stopped reading a response this large; cut it
            // off rather than buffering without bound.
            self.shared
                .counters
                .reaped_slow
                .fetch_add(1, Ordering::Relaxed);
            self.close_conn(id);
            return;
        }
        self.flush_conn(id);
    }

    /// A worker finished one request: back to keep-alive reading (serving
    /// any pipelined request already buffered) or flush-and-close.
    fn finish_request(&mut self, id: u64, keep_alive: bool) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let keep = keep_alive
            && !self.shutdown_seen
            && !conn.read_eof
            && !conn.dead.load(Ordering::Relaxed);
        if keep {
            let now = Instant::now();
            conn.state = ConnState::Reading;
            conn.idle_since = now;
            conn.last_progress = now;
            self.flush_conn(id);
            if self.conns.contains_key(&id) {
                self.advance_parser(id);
            }
        } else {
            conn.state = ConnState::Closing;
            self.flush_conn(id);
        }
    }

    /// Writes as much pending output as the socket accepts; closes the
    /// connection when a `Closing` state finishes flushing.
    fn flush_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut failed = false;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            self.close_conn(id);
            return;
        }
        let conn = self.conns.get_mut(&id).expect("conn still open");
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.state == ConnState::Closing {
                self.close_conn(id);
            }
        }
    }
}

/// Pops jobs until the reactor has drained and no work remains.
fn worker_loop(shared: &Shared, service: &AuditService) {
    loop {
        let job = {
            let mut jobs = lock(&shared.jobs);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.drained.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = shared
                    .ready
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let conn = job.conn;
        // Panic isolation: a bug while serving one request must not take
        // the worker — let alone the pool — down with it. The reactor is
        // told the request ended so the connection is closed, not leaked.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_job(shared, service, job)
        }));
        if caught.is_err() {
            eprintln!("wcbk-serve: request handler panicked; connection dropped");
            push_completion(shared, conn, Completion::End { keep_alive: false });
            shared.waker.wake();
        }
    }
}

/// Runs one request on a worker thread, rendering the response through a
/// [`ConnWriter`] back to the reactor.
fn serve_job(shared: &Shared, service: &AuditService, job: Job) {
    let Job {
        conn,
        request,
        dead,
        upload,
        trace_id,
        parse_micros,
        queued_at,
    } = job;
    let queue_wait_micros = queued_at.elapsed().as_micros() as u64;
    shared.metrics.queue_wait.record(queue_wait_micros);
    shared
        .counters
        .queue_wait_micros
        .fetch_add(queue_wait_micros, Ordering::Relaxed);
    shared.counters.dispatched.fetch_add(1, Ordering::Relaxed);
    let shutdown_after = request.method == "POST" && request.path == "/shutdown";
    let keep_alive =
        request.keep_alive() && !shutdown_after && !shared.shutdown.load(Ordering::SeqCst);
    let started = Instant::now();
    let mut writer = ConnWriter {
        shared,
        conn,
        dead: &dead,
        buf: Vec::new(),
        written: 0,
    };
    let phases = Phases {
        trace_id: &trace_id,
        parse_micros,
        queue_wait_micros,
    };
    let result = match upload {
        Some(upload) => {
            let (status, body) = match service.register_upload(upload) {
                Ok(out) => (200, out),
                Err(e) => bad_request(service, e),
            };
            write_json_with(
                &mut writer,
                status,
                &body,
                keep_alive,
                &[("X-Request-Id", &trace_id)],
            )
            .map(|()| (status, "/tables"))
        }
        None => respond(shared, service, &mut writer, &request, keep_alive, &phases),
    };
    let flushed = writer.flush().is_ok();
    let bytes = writer.written;
    let total_micros = parse_micros + queue_wait_micros + started.elapsed().as_micros() as u64;
    if let Ok((status, endpoint)) = result {
        shared
            .metrics
            .record_http(endpoint, status, total_micros, bytes);
        let slow = shared
            .slow_request_ms
            .is_some_and(|ms| total_micros >= ms.saturating_mul(1000));
        if slow {
            shared.metrics.record_slow();
        }
        if shared.log_json || slow {
            let ts_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            let line = Json::object(vec![
                ("ts_ms", ts_ms.into()),
                ("trace_id", trace_id.as_str().into()),
                ("method", request.method.as_str().into()),
                ("path", request.path.as_str().into()),
                ("endpoint", endpoint.into()),
                ("status", u64::from(status).into()),
                ("bytes", bytes.into()),
                ("total_micros", total_micros.into()),
                ("parse_micros", parse_micros.into()),
                ("queue_wait_micros", queue_wait_micros.into()),
                ("slow", slow.into()),
            ]);
            println!("{line}");
        }
    }
    push_completion(
        shared,
        conn,
        Completion::End {
            keep_alive: keep_alive && result.is_ok() && flushed,
        },
    );
    shared.waker.wake();
    if shutdown_after {
        shared.begin_shutdown();
    }
}

/// The transport-side request phases a worker threads through `respond`:
/// the trace id (echoed as `X-Request-Id`) and the parse/queue-wait timings
/// that complete a handler's `"profile"` object.
struct Phases<'a> {
    trace_id: &'a str,
    parse_micros: u64,
    queue_wait_micros: u64,
}

/// Completes a handler-produced `"profile"` object with the transport
/// phases. `total_micros` is parse + queue-wait + compute by construction,
/// so the reported phases always sum exactly to the reported total.
fn finish_profile(body: &mut Json, phases: &Phases<'_>) {
    let Json::Object(pairs) = body else { return };
    let Some((_, Json::Object(profile))) = pairs.iter_mut().find(|(k, _)| k == "profile") else {
        return;
    };
    let compute = profile
        .iter()
        .find(|(k, _)| k == "compute_micros")
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(0);
    profile.push(("parse_micros".to_owned(), phases.parse_micros.into()));
    profile.push((
        "queue_wait_micros".to_owned(),
        phases.queue_wait_micros.into(),
    ));
    profile.push((
        "total_micros".to_owned(),
        (phases.parse_micros + phases.queue_wait_micros + compute).into(),
    ));
}

/// Whether a request head is a wire CSV upload (`POST /tables` with a
/// `text/csv` body; parameters ride in the query string). JSON-body
/// registration is untouched.
fn is_csv_upload(head: &Request) -> bool {
    head.method == "POST"
        && (head.path == "/tables" || head.path.starts_with("/tables?"))
        && head
            .header("content-type")
            .is_some_and(|ct| ct.to_ascii_lowercase().contains("text/csv"))
}

/// A worker's response sink: buffers locally, handing finished byte runs to
/// the reactor as [`Completion::Data`]. Never blocks; reports the peer
/// dead (broken pipe) so streamed batches cancel instead of computing for
/// nobody.
struct ConnWriter<'a> {
    shared: &'a Shared,
    conn: u64,
    dead: &'a AtomicBool,
    buf: Vec<u8>,
    /// Total bytes accepted (headers + body), for the access log and
    /// `wcbk_http_response_bytes_total`.
    written: u64,
}

impl Write for ConnWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        self.written += data.len() as u64;
        self.buf.extend_from_slice(data);
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        if !self.buf.is_empty() {
            let bytes = std::mem::take(&mut self.buf);
            push_completion(self.shared, self.conn, Completion::Data(bytes));
            self.shared.waker.wake();
        }
        Ok(())
    }
}

/// Routes one request and writes its response, returning the status and
/// the endpoint label recorded in `/metrics`.
fn respond<W: Write>(
    shared: &Shared,
    service: &AuditService,
    writer: &mut W,
    request: &Request,
    keep_alive: bool,
    phases: &Phases<'_>,
) -> std::io::Result<(u16, &'static str)> {
    let trace_headers = [("X-Request-Id", phases.trace_id)];
    // Everything except /batch (which streams) and /metrics (plain text)
    // resolves to a status + endpoint label + JSON body.
    let (status, endpoint, mut body): (u16, &'static str, Json) =
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => (
                200,
                "/healthz",
                Json::object(vec![
                    ("status", "ok".into()),
                    (
                        "uptime_ms",
                        (shared.started.elapsed().as_millis() as u64).into(),
                    ),
                    (
                        "shutting_down",
                        shared.shutdown.load(Ordering::SeqCst).into(),
                    ),
                ]),
            ),
            ("GET", "/metrics") => {
                let text = shared.metrics.render(service);
                write_response_with(
                    writer,
                    200,
                    "text/plain; version=0.0.4",
                    text.as_bytes(),
                    keep_alive,
                    &trace_headers,
                )?;
                return Ok((200, "/metrics"));
            }
            ("GET", "/stats") => {
                let mut sections = service.stats();
                let c = &shared.counters;
                sections.push((
                    "server",
                    Json::object(vec![
                        ("requests", c.requests.load(Ordering::Relaxed).into()),
                        ("rejected_503", c.rejected.load(Ordering::Relaxed).into()),
                        ("workers", shared.workers.into()),
                        ("queue_depth", shared.queue_depth.into()),
                        ("batch_threads", shared.batch_threads.into()),
                        ("max_connections", shared.max_connections.into()),
                        ("open_connections", c.open.load(Ordering::Relaxed).into()),
                        ("peak_connections", c.peak.load(Ordering::Relaxed).into()),
                        ("reaped_idle", c.reaped_idle.load(Ordering::Relaxed).into()),
                        ("reaped_slow", c.reaped_slow.load(Ordering::Relaxed).into()),
                        ("reactor_wakeups", c.wakeups.load(Ordering::Relaxed).into()),
                        (
                            "queue_wait_micros",
                            c.queue_wait_micros.load(Ordering::Relaxed).into(),
                        ),
                        ("dispatched", c.dispatched.load(Ordering::Relaxed).into()),
                        (
                            "uptime_ms",
                            (shared.started.elapsed().as_millis() as u64).into(),
                        ),
                    ]),
                ));
                (
                    200,
                    "/stats",
                    Json::Object(
                        sections
                            .into_iter()
                            .map(|(k, v)| (k.to_owned(), v))
                            .collect(),
                    ),
                )
            }
            ("POST", "/shutdown") => (200, "/shutdown", Json::object(vec![("ok", true.into())])),
            ("POST", "/audit") => match parse_body(&request.body).and_then(|b| service.audit(&b)) {
                Ok(out) => (200, "/audit", out),
                Err(e) => with_endpoint(bad_request(service, e), "/audit"),
            },
            ("POST", "/search") => match parse_body(&request.body).and_then(|b| service.search(&b))
            {
                Ok(out) => (200, "/search", out),
                Err(e) => with_endpoint(bad_request(service, e), "/search"),
            },
            ("POST", "/batch") => {
                return handle_batch(shared, service, writer, &request.body, keep_alive, phases)
                    .map(|status| (status, "/batch"))
            }
            ("POST", "/tables") => {
                match parse_body(&request.body).and_then(|b| service.register_table(&b)) {
                    Ok(out) => (200, "/tables", out),
                    Err(e) => with_endpoint(bad_request(service, e), "/tables"),
                }
            }
            (method, path) if path.starts_with("/tables/") => match route_table(method, path) {
                TableRoute::Info(id) => match service.table_info(id) {
                    Ok(out) => (200, "/tables/{id}", out),
                    Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}"),
                },
                TableRoute::Drop(id) => match service.drop_table(id) {
                    Ok(out) => (200, "/tables/{id}", out),
                    Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}"),
                },
                TableRoute::Audit(id) => {
                    match parse_body(&request.body).and_then(|b| service.session_audit(id, &b)) {
                        Ok(out) => (200, "/tables/{id}/audit", out),
                        Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}/audit"),
                    }
                }
                TableRoute::Search(id) => {
                    match parse_body(&request.body).and_then(|b| service.session_search(id, &b)) {
                        Ok(out) => (200, "/tables/{id}/search", out),
                        Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}/search"),
                    }
                }
                TableRoute::Release(id) => {
                    match parse_body(&request.body).and_then(|b| service.session_release(id, &b)) {
                        Ok(out) => (200, "/tables/{id}/release", out),
                        Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}/release"),
                    }
                }
                TableRoute::Composition(id) => {
                    match parse_body(&request.body)
                        .and_then(|b| service.session_composition(id, &b))
                    {
                        Ok(out) => (200, "/tables/{id}/composition", out),
                        Err(e) => {
                            with_endpoint(bad_request(service, e), "/tables/{id}/composition")
                        }
                    }
                }
                TableRoute::History(id) => match service.table_history(id) {
                    Ok(out) => (200, "/tables/{id}/history", out),
                    Err(e) => with_endpoint(bad_request(service, e), "/tables/{id}/history"),
                },
                TableRoute::Batch(id) => {
                    return handle_session_batch(
                        shared,
                        service,
                        writer,
                        id,
                        &request.body,
                        keep_alive,
                        phases,
                    )
                    .map(|status| (status, "/tables/{id}/batch"))
                }
                TableRoute::NotFound => (
                    404,
                    "other",
                    Json::object(vec![("error", "no such endpoint".into())]),
                ),
                TableRoute::MethodNotAllowed => (
                    405,
                    "other",
                    Json::object(vec![("error", "method not allowed".into())]),
                ),
            },
            // DELETE is only meaningful on /tables/{id} (handled above): on any
            // other path it stays 405, like every other unsupported method.
            ("GET" | "POST", _) => (
                404,
                "other",
                Json::object(vec![("error", "no such endpoint".into())]),
            ),
            _ => (
                405,
                "other",
                Json::object(vec![("error", "method not allowed".into())]),
            ),
        };
    finish_profile(&mut body, phases);
    write_json_with(writer, status, &body, keep_alive, &trace_headers)?;
    Ok((status, endpoint))
}

/// Tags a handler rejection with its endpoint label.
fn with_endpoint((status, body): (u16, Json), endpoint: &'static str) -> (u16, &'static str, Json) {
    (status, endpoint, body)
}

/// A parsed `/tables/…` request target.
enum TableRoute<'a> {
    Info(&'a str),
    Drop(&'a str),
    Audit(&'a str),
    Search(&'a str),
    Release(&'a str),
    Composition(&'a str),
    History(&'a str),
    Batch(&'a str),
    NotFound,
    MethodNotAllowed,
}

/// Resolves method + `/tables/{id}[/action]` to a route. Unknown actions
/// are 404; known targets with the wrong method are 405.
fn route_table<'a>(method: &str, path: &'a str) -> TableRoute<'a> {
    let rest = &path["/tables/".len()..];
    if rest.is_empty() {
        return TableRoute::NotFound;
    }
    match rest.split_once('/') {
        None => match method {
            "GET" => TableRoute::Info(rest),
            "DELETE" => TableRoute::Drop(rest),
            _ => TableRoute::MethodNotAllowed,
        },
        Some((id, action)) if !id.is_empty() => match (method, action) {
            ("POST", "audit") => TableRoute::Audit(id),
            ("POST", "search") => TableRoute::Search(id),
            ("POST", "release") => TableRoute::Release(id),
            ("POST", "composition") => TableRoute::Composition(id),
            ("GET", "history") => TableRoute::History(id),
            ("POST", "batch") => TableRoute::Batch(id),
            (_, "audit" | "search" | "release" | "composition" | "history" | "batch") => {
                TableRoute::MethodNotAllowed
            }
            _ => TableRoute::NotFound,
        },
        Some(_) => TableRoute::NotFound,
    }
}

/// Counts and renders a handler rejection: invalid requests are 400,
/// unknown/evicted table handles are 404, durable-store failures are 500
/// (the request was fine; the server couldn't honor it — not counted as a
/// bad request).
fn bad_request(service: &AuditService, e: ServeError) -> (u16, Json) {
    let status = match &e {
        ServeError::BadRequest(_) => {
            service.count_bad_request();
            400
        }
        ServeError::UnknownTable(_) => 404,
        ServeError::Internal(_) => 500,
    };
    (status, Json::object(vec![("error", e.to_string().into())]))
}

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Parses the per-request `threads` override for a batch, clamped to the
/// server's batch fan-out.
fn batch_threads(shared: &Shared, b: &Json) -> Result<usize, ServeError> {
    match b.get("threads").map(|t| t.as_u64()) {
        None => Ok(shared.batch_threads),
        Some(Some(n)) => Ok((n as usize).clamp(1, shared.batch_threads.max(1))),
        Some(None) => Err(ServeError::BadRequest(
            "\"threads\" must be a non-negative integer".into(),
        )),
    }
}

/// `POST /batch`: validate, then stream one NDJSON line per table as the
/// work-stealing scheduler completes them, and a final summary line.
fn handle_batch<W: Write>(
    shared: &Shared,
    service: &AuditService,
    writer: &mut W,
    body: &[u8],
    keep_alive: bool,
    phases: &Phases<'_>,
) -> std::io::Result<u16> {
    let parsed = parse_body(body).and_then(|b| {
        let threads = batch_threads(shared, &b)?;
        service.batch_jobs(&b).map(|jobs| (jobs, threads))
    });
    let (jobs, threads) = match parsed {
        Ok(x) => x,
        Err(e) => {
            let (status, body) = bad_request(service, e);
            write_json_with(
                writer,
                status,
                &body,
                keep_alive,
                &[("X-Request-Id", phases.trace_id)],
            )?;
            return Ok(status);
        }
    };
    stream_jobs(
        shared,
        writer,
        keep_alive,
        phases,
        threads,
        jobs.len(),
        |i| service.run_job(&jobs[i]),
    )?;
    Ok(200)
}

/// `POST /tables/{id}/batch`: many (c,k)/config jobs fanned over the
/// scheduler against **one registered evaluator** — no CSV parsing, no
/// table scan, just memo-served histograms and cached MINIMIZE1 tables.
fn handle_session_batch<W: Write>(
    shared: &Shared,
    service: &AuditService,
    writer: &mut W,
    id: &str,
    body: &[u8],
    keep_alive: bool,
    phases: &Phases<'_>,
) -> std::io::Result<u16> {
    let parsed = parse_body(body).and_then(|b| {
        let threads = batch_threads(shared, &b)?;
        service
            .session_batch_jobs(id, &b)
            .map(|(session, jobs)| (session, jobs, threads))
    });
    let (session, jobs, threads) = match parsed {
        Ok(x) => x,
        Err(e) => {
            let (status, body) = bad_request(service, e);
            write_json_with(
                writer,
                status,
                &body,
                keep_alive,
                &[("X-Request-Id", phases.trace_id)],
            )?;
            return Ok(status);
        }
    };
    stream_jobs(
        shared,
        writer,
        keep_alive,
        phases,
        threads,
        jobs.len(),
        |i| service.run_session_job(id, &session, &jobs[i]),
    )?;
    Ok(200)
}

/// The shared batch streamer: fan `n` jobs over the work-stealing scheduler
/// and chunk one NDJSON line per completed job (in completion order) plus a
/// summary line. Each chunk flushes through the writer, so on the evented
/// server every line reaches the reactor (and the client) as it completes.
fn stream_jobs<W, F>(
    shared: &Shared,
    writer: &mut W,
    keep_alive: bool,
    phases: &Phases<'_>,
    threads: usize,
    n: usize,
    run: F,
) -> std::io::Result<()>
where
    W: Write,
    F: Fn(usize) -> Json + Sync,
{
    let mut out = ChunkedWriter::new_with(
        &mut *writer,
        200,
        "application/x-ndjson",
        keep_alive,
        &[("X-Request-Id", phases.trace_id)],
    )?;
    let (tx, rx) = mpsc::channel::<(usize, Json)>();
    let mut write_failure: Option<std::io::Error> = None;
    // Set when the client is gone, so the scheduler stops burning CPU on
    // tables nobody will read.
    let cancelled = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let sched = scope.spawn(|| {
            let tx = Mutex::new(tx);
            // An edgeless DAG: every table is a source, so the scheduler is
            // pure work-stealing fan-out; verdicts are irrelevant (no
            // up-sets to prune) and errors cannot occur.
            let dag = MonotoneDag::new(vec![Vec::new(); n]);
            let outcome = evaluate_work_stealing(&dag, threads, false, |i| {
                if !cancelled.load(Ordering::Relaxed) {
                    let result = run(i);
                    let _ = tx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .send((i, result));
                }
                Ok::<bool, std::convert::Infallible>(false)
            });
            // `tx` drops here; the receive loop below then terminates.
            outcome
        });
        for (index, result) in rx.iter() {
            if write_failure.is_some() {
                continue; // drain so the scheduler thread can finish
            }
            let mut line = vec![("index".to_owned(), Json::from(index))];
            match result {
                Json::Object(pairs) => line.extend(pairs),
                other => line.push(("result".to_owned(), other)),
            }
            let mut text = Json::Object(line).to_string();
            text.push('\n');
            if let Err(e) = out.chunk(text.as_bytes()) {
                write_failure = Some(e);
                cancelled.store(true, Ordering::Relaxed);
            }
        }
        if let Ok(Ok(outcome)) = sched.join() {
            shared.metrics.record_sched(&outcome);
        }
    });
    if let Some(e) = write_failure {
        return Err(e);
    }
    let mut summary = Json::object(vec![("done", true.into()), ("tables", n.into())]).to_string();
    summary.push('\n');
    out.chunk(summary.as_bytes())?;
    out.finish()
}
