//! The HTTP front-end: a bounded worker pool over one shared
//! [`AuditService`].
//!
//! * **Dispatch** — the accept loop pushes connections onto a bounded queue;
//!   `workers` threads pop and serve them (persistent connections, one
//!   request at a time per connection).
//! * **Backpressure** — when the queue is full the connection is answered
//!   `503 Service Unavailable` (with `Retry-After`) and closed immediately:
//!   heavy traffic degrades into fast rejections, never unbounded memory.
//! * **Streaming** — `POST /batch` fans its tables out over the
//!   work-stealing scheduler ([`wcbk_core::sched`]) and streams one JSON
//!   line per completed table as a chunk, so clients see results while the
//!   batch is still running.
//! * **Graceful shutdown** — `POST /shutdown` (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, lets every queued
//!   and in-flight request finish (a streaming batch runs to completion),
//!   then returns from [`Server::run`]. Workers parked in a blocking read
//!   on an idle keep-alive connection are unparked by shutting down that
//!   connection's read half (responses in progress are unaffected), and the
//!   per-connection read timeout bounds everything else, so shutdown cannot
//!   hang on a silent peer.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wcbk_core::sched::{evaluate_work_stealing, MonotoneDag};

use crate::http::{read_request, write_json, ChunkedWriter, HttpError, Request};
use crate::json::Json;
use crate::service::{AuditService, ServeError, ServiceLimits};

/// Server knobs; `Default` gives a loopback server with
/// hardware-parallelism workers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads serving connections (`0` = all cores).
    pub workers: usize,
    /// Connections held waiting for a worker before new ones get 503.
    pub queue_depth: usize,
    /// Threads each `/batch` request fans out over (`0` = the worker count).
    pub batch_threads: usize,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Per-connection read timeout: bounds how long a worker can sit on an
    /// idle or trickling connection (and therefore how long shutdown can
    /// take). `None` disables the bound.
    pub read_timeout: Option<Duration>,
    /// Memory budgets for the engine registry and the session store
    /// (`Default`: unbounded — the one-shot behavior).
    pub limits: ServiceLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            batch_threads: 0,
            max_body: 64 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(5)),
            limits: ServiceLimits::default(),
        }
    }
}

/// Counters the server adds to `/stats` next to the service's.
#[derive(Default)]
struct ServerCounters {
    requests: AtomicU64,
    rejected: AtomicU64,
}

/// State shared by the accept loop, the workers, and every handle.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Read halves of the connections currently being served, so graceful
    /// shutdown can unpark workers sitting in a blocking read on an idle
    /// keep-alive connection. Responses in progress are untouched (only the
    /// read direction is shut down), so a streaming batch still completes.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    counters: ServerCounters,
    local_addr: SocketAddr,
    queue_depth: usize,
    workers: usize,
    batch_threads: usize,
    max_body: usize,
    read_timeout: Option<Duration>,
    started: Instant,
}

impl Shared {
    /// Initiates graceful shutdown: stop accepting, wake every worker, and
    /// poke the accept loop with a throwaway connection so `accept()`
    /// returns.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ready.notify_all();
        // Unpark workers blocked reading a served connection: kill the read
        // half only, so responses (and streaming batches) still complete.
        // Connections dequeued after this point are served one last request
        // and closed by the `keep_alive` check in `handle_connection`.
        let conns = self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in conns.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        drop(conns);
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful shutdown (idempotent): in-flight and queued requests
    /// finish, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound listener plus the shared service — see the module docs.
pub struct Server {
    listener: TcpListener,
    service: Arc<AuditService>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and materializes the shared state. The server
    /// does not serve until [`run`](Self::run).
    pub fn bind(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn: AtomicU64::new(0),
            counters: ServerCounters::default(),
            local_addr,
            queue_depth: config.queue_depth.max(1),
            workers,
            batch_threads: if config.batch_threads == 0 {
                workers
            } else {
                config.batch_threads
            },
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            started: Instant::now(),
        });
        Ok(Self {
            listener,
            service: Arc::new(AuditService::with_limits(config.limits)),
            shared,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A remote control valid for the server's whole life.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared audit service (tests inspect its stats directly).
    pub fn service(&self) -> Arc<AuditService> {
        Arc::clone(&self.service)
    }

    /// Serves until graceful shutdown completes. The calling thread runs
    /// the accept loop; workers run on scoped threads.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        let service = &self.service;
        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(move || worker_loop(shared, service));
            }
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        // Persistent accept errors (EMFILE under fd
                        // exhaustion) would otherwise busy-spin this thread;
                        // back off briefly so workers can release fds.
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                };
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The shutdown poke (or a raced client; it gets EOF).
                    break;
                }
                let _ = stream.set_read_timeout(shared.read_timeout);
                let _ = stream.set_nodelay(true);
                enqueue(shared, stream);
            }
            // Wake any worker still waiting so it can observe shutdown.
            shared.ready.notify_all();
        });
        Ok(())
    }
}

/// Locks the connection queue, recovering from poisoning: a queue of
/// sockets has no invariant a panicked holder can break, and giving up the
/// lock forever would turn one handler panic into a full-server outage.
fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Queues the connection or rejects it with 503 when the queue is full.
fn enqueue(shared: &Shared, stream: TcpStream) {
    let mut queue = lock_queue(shared);
    if queue.len() >= shared.queue_depth {
        drop(queue);
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        let body = Json::object(vec![("error", "server is at capacity".into())]).to_string();
        let _ = write!(
            stream,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        return;
    }
    queue.push_back(stream);
    shared.ready.notify_one();
}

/// Pops connections until shutdown is requested **and** the queue is
/// drained (graceful: queued clients are served, not dropped).
fn worker_loop(shared: &Shared, service: &AuditService) {
    loop {
        let stream = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match stream {
            Some(stream) => {
                // Panic isolation: a bug (or thread-spawn failure) while
                // serving one connection must not take the worker — let
                // alone the pool — down with it.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(shared, service, stream)
                }));
                if caught.is_err() {
                    eprintln!("wcbk-serve: connection handler panicked; connection dropped");
                }
            }
            None => return,
        }
    }
}

/// Removes a connection from the shutdown registry when serving ends.
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.id);
    }
}

/// Serves one persistent connection: requests in sequence until the peer
/// closes, asks to close, errors, or shutdown begins.
fn handle_connection(shared: &Shared, service: &AuditService, stream: TcpStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(registered) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, registered);
    }
    let _guard = ConnGuard { shared, id };
    if shared.shutdown.load(Ordering::SeqCst) {
        // Dequeued during the drain: the begin_shutdown read-half sweep ran
        // before this registration, so bound the read ourselves — a silent
        // queued peer must not stall shutdown (notably with no configured
        // read timeout). Buffered request bytes still get served.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    }
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, shared.max_body) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return, // peer gone or read timeout
            Err(HttpError::TooLarge { declared, limit }) => {
                service.count_bad_request();
                let body = Json::object(vec![(
                    "error",
                    format!("body of {declared} bytes exceeds the {limit}-byte limit").into(),
                )]);
                let _ = write_json(&mut writer, 413, &body, false);
                return;
            }
            Err(HttpError::Malformed(message)) => {
                service.count_bad_request();
                let body = Json::object(vec![("error", message.into())]);
                let _ = write_json(&mut writer, 400, &body, false);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let shutdown_after = matches!(
            (request.method.as_str(), request.path.as_str()),
            ("POST", "/shutdown")
        );
        // During shutdown, finish this request but close the connection.
        let keep_alive =
            request.keep_alive() && !shutdown_after && !shared.shutdown.load(Ordering::SeqCst);
        if respond(shared, service, &mut writer, &request, keep_alive).is_err() {
            return;
        }
        if shutdown_after {
            shared.begin_shutdown();
        }
        if !keep_alive || shutdown_after {
            return;
        }
    }
}

/// Routes one request and writes its response.
fn respond(
    shared: &Shared,
    service: &AuditService,
    writer: &mut TcpStream,
    request: &Request,
    keep_alive: bool,
) -> std::io::Result<()> {
    // Everything except /batch (which streams) resolves to a status + body.
    let (status, body): (u16, Json) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            Json::object(vec![
                ("status", "ok".into()),
                (
                    "uptime_ms",
                    (shared.started.elapsed().as_millis() as u64).into(),
                ),
                (
                    "shutting_down",
                    shared.shutdown.load(Ordering::SeqCst).into(),
                ),
            ]),
        ),
        ("GET", "/stats") => {
            let mut sections = service.stats();
            sections.push((
                "server",
                Json::object(vec![
                    (
                        "requests",
                        shared.counters.requests.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "rejected_503",
                        shared.counters.rejected.load(Ordering::Relaxed).into(),
                    ),
                    ("workers", shared.workers.into()),
                    ("queue_depth", shared.queue_depth.into()),
                    ("batch_threads", shared.batch_threads.into()),
                    (
                        "uptime_ms",
                        (shared.started.elapsed().as_millis() as u64).into(),
                    ),
                ]),
            ));
            (
                200,
                Json::Object(
                    sections
                        .into_iter()
                        .map(|(k, v)| (k.to_owned(), v))
                        .collect(),
                ),
            )
        }
        ("POST", "/shutdown") => (200, Json::object(vec![("ok", true.into())])),
        ("POST", "/audit") => match parse_body(&request.body).and_then(|b| service.audit(&b)) {
            Ok(out) => (200, out),
            Err(e) => bad_request(service, e),
        },
        ("POST", "/search") => match parse_body(&request.body).and_then(|b| service.search(&b)) {
            Ok(out) => (200, out),
            Err(e) => bad_request(service, e),
        },
        ("POST", "/batch") => {
            return handle_batch(shared, service, writer, &request.body, keep_alive)
        }
        ("POST", "/tables") => {
            match parse_body(&request.body).and_then(|b| service.register_table(&b)) {
                Ok(out) => (200, out),
                Err(e) => bad_request(service, e),
            }
        }
        (method, path) if path.starts_with("/tables/") => match route_table(method, path) {
            TableRoute::Info(id) => match service.table_info(id) {
                Ok(out) => (200, out),
                Err(e) => bad_request(service, e),
            },
            TableRoute::Drop(id) => match service.drop_table(id) {
                Ok(out) => (200, out),
                Err(e) => bad_request(service, e),
            },
            TableRoute::Audit(id) => {
                match parse_body(&request.body).and_then(|b| service.session_audit(id, &b)) {
                    Ok(out) => (200, out),
                    Err(e) => bad_request(service, e),
                }
            }
            TableRoute::Search(id) => {
                match parse_body(&request.body).and_then(|b| service.session_search(id, &b)) {
                    Ok(out) => (200, out),
                    Err(e) => bad_request(service, e),
                }
            }
            TableRoute::Release(id) => {
                match parse_body(&request.body).and_then(|b| service.session_release(id, &b)) {
                    Ok(out) => (200, out),
                    Err(e) => bad_request(service, e),
                }
            }
            TableRoute::Composition(id) => {
                match parse_body(&request.body).and_then(|b| service.session_composition(id, &b)) {
                    Ok(out) => (200, out),
                    Err(e) => bad_request(service, e),
                }
            }
            TableRoute::Batch(id) => {
                return handle_session_batch(shared, service, writer, id, &request.body, keep_alive)
            }
            TableRoute::NotFound => (
                404,
                Json::object(vec![("error", "no such endpoint".into())]),
            ),
            TableRoute::MethodNotAllowed => (
                405,
                Json::object(vec![("error", "method not allowed".into())]),
            ),
        },
        // DELETE is only meaningful on /tables/{id} (handled above): on any
        // other path it stays 405, like every other unsupported method.
        ("GET" | "POST", _) => (
            404,
            Json::object(vec![("error", "no such endpoint".into())]),
        ),
        _ => (
            405,
            Json::object(vec![("error", "method not allowed".into())]),
        ),
    };
    write_json(writer, status, &body, keep_alive)
}

/// A parsed `/tables/…` request target.
enum TableRoute<'a> {
    Info(&'a str),
    Drop(&'a str),
    Audit(&'a str),
    Search(&'a str),
    Release(&'a str),
    Composition(&'a str),
    Batch(&'a str),
    NotFound,
    MethodNotAllowed,
}

/// Resolves method + `/tables/{id}[/action]` to a route. Unknown actions
/// are 404; known targets with the wrong method are 405.
fn route_table<'a>(method: &str, path: &'a str) -> TableRoute<'a> {
    let rest = &path["/tables/".len()..];
    if rest.is_empty() {
        return TableRoute::NotFound;
    }
    match rest.split_once('/') {
        None => match method {
            "GET" => TableRoute::Info(rest),
            "DELETE" => TableRoute::Drop(rest),
            _ => TableRoute::MethodNotAllowed,
        },
        Some((id, action)) if !id.is_empty() => match (method, action) {
            ("POST", "audit") => TableRoute::Audit(id),
            ("POST", "search") => TableRoute::Search(id),
            ("POST", "release") => TableRoute::Release(id),
            ("POST", "composition") => TableRoute::Composition(id),
            ("POST", "batch") => TableRoute::Batch(id),
            (_, "audit" | "search" | "release" | "composition" | "batch") => {
                TableRoute::MethodNotAllowed
            }
            _ => TableRoute::NotFound,
        },
        Some(_) => TableRoute::NotFound,
    }
}

/// Counts and renders a handler rejection: invalid requests are 400,
/// unknown/evicted table handles are 404.
fn bad_request(service: &AuditService, e: ServeError) -> (u16, Json) {
    let status = match &e {
        ServeError::BadRequest(_) => {
            service.count_bad_request();
            400
        }
        ServeError::UnknownTable(_) => 404,
    };
    (status, Json::object(vec![("error", e.to_string().into())]))
}

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Parses the per-request `threads` override for a batch, clamped to the
/// server's batch fan-out.
fn batch_threads(shared: &Shared, b: &Json) -> Result<usize, ServeError> {
    match b.get("threads").map(|t| t.as_u64()) {
        None => Ok(shared.batch_threads),
        Some(Some(n)) => Ok((n as usize).clamp(1, shared.batch_threads.max(1))),
        Some(None) => Err(ServeError::BadRequest(
            "\"threads\" must be a non-negative integer".into(),
        )),
    }
}

/// `POST /batch`: validate, then stream one NDJSON line per table as the
/// work-stealing scheduler completes them, and a final summary line.
fn handle_batch(
    shared: &Shared,
    service: &AuditService,
    writer: &mut TcpStream,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let parsed = parse_body(body).and_then(|b| {
        let threads = batch_threads(shared, &b)?;
        service.batch_jobs(&b).map(|jobs| (jobs, threads))
    });
    let (jobs, threads) = match parsed {
        Ok(x) => x,
        Err(e) => {
            let (status, body) = bad_request(service, e);
            return write_json(writer, status, &body, keep_alive);
        }
    };
    stream_jobs(writer, keep_alive, threads, jobs.len(), |i| {
        service.run_job(&jobs[i])
    })
}

/// `POST /tables/{id}/batch`: many (c,k)/config jobs fanned over the
/// scheduler against **one registered evaluator** — no CSV parsing, no
/// table scan, just memo-served histograms and cached MINIMIZE1 tables.
fn handle_session_batch(
    shared: &Shared,
    service: &AuditService,
    writer: &mut TcpStream,
    id: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let parsed = parse_body(body).and_then(|b| {
        let threads = batch_threads(shared, &b)?;
        service
            .session_batch_jobs(id, &b)
            .map(|(session, jobs)| (session, jobs, threads))
    });
    let (session, jobs, threads) = match parsed {
        Ok(x) => x,
        Err(e) => {
            let (status, body) = bad_request(service, e);
            return write_json(writer, status, &body, keep_alive);
        }
    };
    stream_jobs(writer, keep_alive, threads, jobs.len(), |i| {
        service.run_session_job(id, &session, &jobs[i])
    })
}

/// The shared batch streamer: fan `n` jobs over the work-stealing scheduler
/// and chunk one NDJSON line per completed job (in completion order) plus a
/// summary line.
fn stream_jobs<F>(
    writer: &mut TcpStream,
    keep_alive: bool,
    threads: usize,
    n: usize,
    run: F,
) -> std::io::Result<()>
where
    F: Fn(usize) -> Json + Sync,
{
    let mut out = ChunkedWriter::new(&mut *writer, 200, "application/x-ndjson", keep_alive)?;
    let (tx, rx) = mpsc::channel::<(usize, Json)>();
    let mut write_failure: Option<std::io::Error> = None;
    // Set when the client is gone, so the scheduler stops burning CPU on
    // tables nobody will read.
    let cancelled = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let tx = Mutex::new(tx);
            // An edgeless DAG: every table is a source, so the scheduler is
            // pure work-stealing fan-out; verdicts are irrelevant (no
            // up-sets to prune) and errors cannot occur.
            let dag = MonotoneDag::new(vec![Vec::new(); n]);
            let _ = evaluate_work_stealing(&dag, threads, false, |i| {
                if !cancelled.load(Ordering::Relaxed) {
                    let result = run(i);
                    let _ = tx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .send((i, result));
                }
                Ok::<bool, std::convert::Infallible>(false)
            });
            // `tx` drops here; the receive loop below then terminates.
        });
        for (index, result) in rx.iter() {
            if write_failure.is_some() {
                continue; // drain so the scheduler thread can finish
            }
            let mut line = vec![("index".to_owned(), Json::from(index))];
            match result {
                Json::Object(pairs) => line.extend(pairs),
                other => line.push(("result".to_owned(), other)),
            }
            let mut text = Json::Object(line).to_string();
            text.push('\n');
            if let Err(e) = out.chunk(text.as_bytes()) {
                write_failure = Some(e);
                cancelled.store(true, Ordering::Relaxed);
            }
        }
    });
    if let Some(e) = write_failure {
        return Err(e);
    }
    let mut summary = Json::object(vec![("done", true.into()), ("tables", n.into())]).to_string();
    summary.push('\n');
    out.chunk(summary.as_bytes())?;
    out.finish()
}
