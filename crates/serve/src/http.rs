//! Hand-rolled HTTP/1.1: request parsing, response writing (fixed-length
//! and chunked), and a small blocking client.
//!
//! The sanctioned dependency set has no HTTP crate, so this implements the
//! subset the audit service needs: `GET`/`POST` with `Content-Length`
//! bodies, persistent connections (`Connection: close` honored), chunked
//! transfer encoding for streamed batch responses, and hard limits on
//! header and body sizes. The [`client`] side decodes both body framings
//! and is shared by the integration tests and the `load_gen` benchmark
//! binary.

use std::fmt;
use std::io::{BufRead, Read, Write};

use crate::json::Json;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// A failure while reading a request or response from the wire.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (including read timeouts).
    Io(std::io::Error),
    /// The peer sent something that is not HTTP/1.1 as we speak it.
    Malformed(String),
    /// The declared body exceeds the configured limit.
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request: method, path, headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer, not by us).
    pub method: String,
    /// The request target, e.g. `/audit`.
    pub path: String,
    /// Header name/value pairs in wire order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The raw body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to yes unless the peer asked to close.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines past
/// [`MAX_LINE`]. `Ok(None)` is clean EOF *before any byte*.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = reader.take((MAX_LINE + 1) as u64);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(HttpError::Malformed(if buf.len() > MAX_LINE {
            "line too long".into()
        } else {
            "truncated line".into()
        }));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// Reads one request from the connection. `Ok(None)` means the peer closed
/// cleanly between requests (normal keep-alive teardown).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    // HTTP/1.1 only: a 1.0 peer would neither expect our default
    // keep-alive nor understand chunked batch responses.
    if version != "HTTP/1.1" {
        return Err(HttpError::Malformed(format!("unsupported {version:?}")));
    }
    let mut headers = Vec::new();
    loop {
        let header =
            read_line(reader)?.ok_or_else(|| HttpError::Malformed("eof inside headers".into()))?;
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header {header:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let declared: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
        if declared > max_body {
            return Err(HttpError::TooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        reader.read_exact(&mut body)?;
        request.body = body;
    } else if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    Ok(Some(request))
}

/// Where an in-flight [`RequestParser`] is in the current request.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseState {
    /// Reading the request line and headers.
    Head,
    /// Reading a `Content-Length` body.
    Body { remaining: usize },
    /// Reading a chunk-size line of a chunked body.
    ChunkSize,
    /// Reading chunk data.
    ChunkData { remaining: usize },
    /// Reading the CRLF that terminates a chunk's data.
    ChunkDataEnd,
    /// Reading (and discarding) trailer lines after the `0` chunk.
    Trailers,
}

/// Incremental, resumable HTTP/1.1 request parsing for nonblocking sockets.
///
/// Feed raw bytes with [`push`](Self::push), then call
/// [`advance`](Self::advance): `Ok(None)` means more input is needed,
/// `Ok(Some(request))` yields one complete request and leaves any pipelined
/// leftover bytes buffered for the next one. Unlike [`read_request`], this
/// parser also decodes `Transfer-Encoding: chunked` bodies, and can hand
/// body bytes out *as they decode* ([`stream_body`](Self::stream_body) +
/// [`take_body`](Self::take_body)) so large uploads never need a full-size
/// buffer.
pub struct RequestParser {
    buf: Vec<u8>,
    pos: usize,
    state: ParseState,
    max_body: usize,
    /// Request line once parsed: method, path.
    request_line: Option<(String, String)>,
    headers: Vec<(String, String)>,
    /// The parsed head (empty body) once headers are complete.
    head: Option<Request>,
    /// Total decoded chunked-body bytes (for the body limit).
    decoded_total: usize,
    /// When true, body bytes go to `stream_out` instead of `head.body`.
    streaming: bool,
    stream_out: Vec<u8>,
}

impl RequestParser {
    /// A parser enforcing the given body-size limit.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            state: ParseState::Head,
            max_body,
            request_line: None,
            headers: Vec::new(),
            head: None,
            decoded_total: 0,
            streaming: false,
            stream_out: Vec::new(),
        }
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// No request is in flight and no bytes are buffered: the connection is
    /// genuinely idle (safe to reap on an idle timeout).
    pub fn is_idle(&self) -> bool {
        self.state == ParseState::Head && self.request_line.is_none() && self.pos >= self.buf.len()
    }

    /// Headers of the current request are fully parsed (body may not be).
    pub fn head_received(&self) -> bool {
        self.head.is_some()
    }

    /// The parsed head (empty body) once headers are complete and before
    /// the request is returned — lets the caller pick streaming mode.
    pub fn head(&self) -> Option<&Request> {
        self.head.as_ref()
    }

    /// Switches the in-flight request to streaming: decoded body bytes are
    /// handed out via [`take_body`](Self::take_body) instead of being
    /// accumulated, and the eventual [`advance`](Self::advance) completion
    /// carries an empty `body`. Any bytes already accumulated move to the
    /// stream buffer so nothing is lost.
    pub fn stream_body(&mut self) {
        if !self.streaming {
            self.streaming = true;
            if let Some(head) = self.head.as_mut() {
                self.stream_out.append(&mut head.body);
            }
        }
    }

    /// Drains decoded body bytes accumulated in streaming mode.
    pub fn take_body(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.stream_out)
    }

    /// Pulls the next complete line (without its terminator) out of the
    /// buffer, enforcing [`MAX_LINE`]. `Ok(None)` = need more input.
    fn take_line(&mut self) -> Result<Option<String>, HttpError> {
        let avail = &self.buf[self.pos..];
        let Some(nl) = avail.iter().position(|&b| b == b'\n') else {
            if avail.len() > MAX_LINE {
                return Err(HttpError::Malformed("line too long".into()));
            }
            return Ok(None);
        };
        if nl > MAX_LINE {
            return Err(HttpError::Malformed("line too long".into()));
        }
        let mut line = avail[..nl].to_vec();
        self.pos += nl + 1;
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line)
            .map(Some)
            .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
    }

    /// Consumes up to `limit` raw body bytes, appending them to the right
    /// sink. Returns how many were taken.
    fn take_body_bytes(&mut self, limit: usize) -> usize {
        let n = limit.min(self.buf.len() - self.pos);
        if n > 0 {
            let range = self.pos..self.pos + n;
            if self.streaming {
                self.stream_out.extend_from_slice(&self.buf[range]);
            } else if let Some(head) = self.head.as_mut() {
                head.body.extend_from_slice(&self.buf[range]);
            }
            self.pos += n;
        }
        n
    }

    /// Headers are complete: decide the body framing.
    fn begin_body(&mut self) -> Result<(), HttpError> {
        let head = self.head.as_ref().expect("head set before begin_body");
        if let Some(len) = head.header("content-length") {
            let declared: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
            if declared > self.max_body {
                return Err(HttpError::TooLarge {
                    declared,
                    limit: self.max_body,
                });
            }
            self.state = ParseState::Body {
                remaining: declared,
            };
        } else if let Some(te) = head.header("transfer-encoding") {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(HttpError::Malformed(format!(
                    "unsupported transfer-encoding {te:?}"
                )));
            }
            self.decoded_total = 0;
            self.state = ParseState::ChunkSize;
        } else {
            self.state = ParseState::Body { remaining: 0 };
        }
        Ok(())
    }

    /// The current request is fully parsed: reset for the next one and
    /// return it (body empty in streaming mode).
    fn complete(&mut self) -> Request {
        let mut request = self.head.take().expect("complete requires a head");
        if self.streaming {
            request.body = Vec::new();
        }
        self.state = ParseState::Head;
        self.request_line = None;
        self.headers = Vec::new();
        self.decoded_total = 0;
        self.streaming = false;
        request
    }

    /// Makes as much progress as the buffered input allows. `Ok(None)`
    /// means more bytes are needed; `Ok(Some(_))` yields one complete
    /// request (pipelined leftovers stay buffered). Errors are fatal to the
    /// connection: the caller should respond (400/413) and close.
    pub fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        let result = self.advance_inner();
        // Compact consumed bytes once per call (not per internal step) so
        // large bodies don't turn the buffer into an O(n^2) shift.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        result
    }

    fn advance_inner(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match self.state {
                ParseState::Head => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if self.request_line.is_none() {
                        let mut parts = line.split(' ');
                        let (method, path, version) =
                            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                                (Some(m), Some(p), Some(v), None)
                                    if !m.is_empty() && p.starts_with('/') =>
                                {
                                    (m, p, v)
                                }
                                _ => {
                                    return Err(HttpError::Malformed(format!(
                                        "bad request line {line:?}"
                                    )))
                                }
                            };
                        if version != "HTTP/1.1" {
                            return Err(HttpError::Malformed(format!("unsupported {version:?}")));
                        }
                        self.request_line = Some((method.to_owned(), path.to_owned()));
                    } else if line.is_empty() {
                        let (method, path) =
                            self.request_line.clone().expect("request line parsed");
                        self.head = Some(Request {
                            method,
                            path,
                            headers: std::mem::take(&mut self.headers),
                            body: Vec::new(),
                        });
                        self.begin_body()?;
                        if self.state == (ParseState::Body { remaining: 0 }) {
                            return Ok(Some(self.complete()));
                        }
                    } else {
                        if self.headers.len() >= MAX_HEADERS {
                            return Err(HttpError::Malformed("too many headers".into()));
                        }
                        let (name, value) = line
                            .split_once(':')
                            .ok_or_else(|| HttpError::Malformed(format!("bad header {line:?}")))?;
                        self.headers
                            .push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
                    }
                }
                ParseState::Body { remaining } => {
                    let taken = self.take_body_bytes(remaining);
                    let remaining = remaining - taken;
                    self.state = ParseState::Body { remaining };
                    if remaining == 0 {
                        return Ok(Some(self.complete()));
                    }
                    return Ok(None);
                }
                ParseState::ChunkSize => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    // Chunk extensions (after ';') are tolerated, ignored.
                    let digits = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(digits, 16)
                        .map_err(|_| HttpError::Malformed(format!("bad chunk size {line:?}")))?;
                    if size == 0 {
                        self.state = ParseState::Trailers;
                        continue;
                    }
                    self.decoded_total = self.decoded_total.saturating_add(size);
                    if self.decoded_total > self.max_body {
                        return Err(HttpError::TooLarge {
                            declared: self.decoded_total,
                            limit: self.max_body,
                        });
                    }
                    self.state = ParseState::ChunkData { remaining: size };
                }
                ParseState::ChunkData { remaining } => {
                    let taken = self.take_body_bytes(remaining);
                    let remaining = remaining - taken;
                    self.state = ParseState::ChunkData { remaining };
                    if remaining > 0 {
                        return Ok(None);
                    }
                    self.state = ParseState::ChunkDataEnd;
                }
                ParseState::ChunkDataEnd => {
                    let avail = &self.buf[self.pos..];
                    match avail {
                        [] => return Ok(None),
                        [b'\n', ..] => {
                            self.pos += 1;
                            self.state = ParseState::ChunkSize;
                        }
                        [b'\r'] => return Ok(None),
                        [b'\r', b'\n', ..] => {
                            self.pos += 2;
                            self.state = ParseState::ChunkSize;
                        }
                        _ => {
                            return Err(HttpError::Malformed(
                                "missing CRLF after chunk data".into(),
                            ))
                        }
                    }
                }
                ParseState::Trailers => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if line.is_empty() {
                        return Ok(Some(self.complete()));
                    }
                    // Trailer fields are read and discarded.
                }
            }
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, content_type, body, keep_alive, &[])
}

/// [`write_response`] plus extra response headers (name, value). Values must
/// already be header-safe — the server only passes sanitized trace ids.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes a JSON response.
pub fn write_json<W: Write>(
    writer: &mut W,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_json_with(writer, status, body, keep_alive, &[])
}

/// [`write_json`] plus extra response headers.
pub fn write_json_with<W: Write>(
    writer: &mut W,
    status: u16,
    body: &Json,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write_response_with(
        writer,
        status,
        "application/json",
        body.to_string().as_bytes(),
        keep_alive,
        extra_headers,
    )
}

/// A chunked-transfer response in progress: headers go out at construction,
/// each [`chunk`](Self::chunk) is flushed immediately (that is the point —
/// batch lines reach the client as they complete), and
/// [`finish`](Self::finish) writes the terminating chunk.
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts a chunked response.
    pub fn new(
        writer: W,
        status: u16,
        content_type: &str,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        Self::new_with(writer, status, content_type, keep_alive, &[])
    }

    /// [`new`](Self::new) plus extra response headers.
    pub fn new_with(
        mut writer: W,
        status: u16,
        content_type: &str,
        keep_alive: bool,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Self> {
        write!(
            writer,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
            status_text(status),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.flush()?;
        Ok(Self { writer })
    }

    /// Sends one chunk (skipped when empty — an empty chunk would terminate
    /// the stream) and flushes it to the socket.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }

    /// Terminates the stream.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

/// A small blocking HTTP/1.1 client speaking exactly this server's dialect —
/// shared by the integration tests and the `load_gen` benchmark binary.
pub mod client {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpStream, ToSocketAddrs};
    use std::time::Duration;

    use super::HttpError;
    use crate::json::Json;

    /// A persistent connection to the server.
    pub struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    /// A decoded response.
    #[derive(Debug, Clone)]
    pub struct Response {
        /// The status code.
        pub status: u16,
        /// The full (de-chunked) body.
        pub body: String,
        /// Response headers in wire order, names lowercased.
        pub headers: Vec<(String, String)>,
    }

    impl Response {
        /// The first header with this (case-insensitive) name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }

        /// Parses the body as one JSON document.
        pub fn json(&self) -> Result<Json, HttpError> {
            Json::parse(&self.body).map_err(|e| HttpError::Malformed(format!("response body: {e}")))
        }

        /// Splits an `application/x-ndjson` body into parsed lines.
        pub fn ndjson(&self) -> Result<Vec<Json>, HttpError> {
            self.body
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    Json::parse(l)
                        .map_err(|e| HttpError::Malformed(format!("ndjson line {l:?}: {e}")))
                })
                .collect()
        }
    }

    impl Client {
        /// Connects with a read timeout (`None` = block forever).
        pub fn connect<A: ToSocketAddrs>(
            addr: A,
            read_timeout: Option<Duration>,
        ) -> std::io::Result<Self> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(read_timeout)?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            Ok(Self {
                writer: stream,
                reader,
            })
        }

        /// Sends `GET path` and reads the response.
        pub fn get(&mut self, path: &str) -> Result<Response, HttpError> {
            write!(self.writer, "GET {path} HTTP/1.1\r\nHost: wcbk\r\n\r\n")?;
            self.writer.flush()?;
            self.read_response()
        }

        /// Sends `POST path` with a JSON body and reads the response.
        pub fn post(&mut self, path: &str, body: &str) -> Result<Response, HttpError> {
            write!(
                self.writer,
                "POST {path} HTTP/1.1\r\nHost: wcbk\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )?;
            self.writer.write_all(body.as_bytes())?;
            self.writer.flush()?;
            self.read_response()
        }

        /// Sends raw bytes as-is (for malformed-request tests).
        pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.writer.write_all(bytes)?;
            self.writer.flush()
        }

        /// Reads one response after [`send_raw`](Self::send_raw).
        pub fn read_response(&mut self) -> Result<Response, HttpError> {
            let status_line = read_line(&mut self.reader)?
                .ok_or_else(|| HttpError::Malformed("eof before status line".into()))?;
            let mut parts = status_line.split(' ');
            let status: u16 = match (parts.next(), parts.next()) {
                (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad status {status_line:?}")))?,
                _ => {
                    return Err(HttpError::Malformed(format!(
                        "bad status line {status_line:?}"
                    )))
                }
            };
            let mut content_length: Option<usize> = None;
            let mut chunked = false;
            let mut headers = Vec::new();
            loop {
                let header = read_line(&mut self.reader)?
                    .ok_or_else(|| HttpError::Malformed("eof inside headers".into()))?;
                if header.is_empty() {
                    break;
                }
                let Some((name, value)) = header.split_once(':') else {
                    continue;
                };
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = Some(value.parse().map_err(|_| {
                        HttpError::Malformed(format!("bad content-length {value:?}"))
                    })?);
                } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                    chunked = true;
                }
                headers.push((name, value.to_owned()));
            }
            let mut body = Vec::new();
            if chunked {
                loop {
                    let size_line = read_line(&mut self.reader)?
                        .ok_or_else(|| HttpError::Malformed("eof inside chunk size".into()))?;
                    let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                        HttpError::Malformed(format!("bad chunk size {size_line:?}"))
                    })?;
                    let mut chunk = vec![0u8; size + 2]; // data + CRLF
                    self.reader.read_exact(&mut chunk)?;
                    if size == 0 {
                        break;
                    }
                    chunk.truncate(size);
                    body.extend_from_slice(&chunk);
                }
            } else if let Some(len) = content_length {
                body = vec![0u8; len];
                self.reader.read_exact(&mut body)?;
            } else {
                self.reader.read_to_end(&mut body)?;
            }
            let body = String::from_utf8(body)
                .map_err(|_| HttpError::Malformed("non-UTF-8 response body".into()))?;
            Ok(Response {
                status,
                body,
                headers,
            })
        }
    }

    /// Reads one CRLF/LF-terminated line from the response stream.
    fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
        let mut buf = Vec::new();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        String::from_utf8(buf)
            .map(Some)
            .map_err(|_| HttpError::Malformed("non-UTF-8 line".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req =
            parse(b"POST /audit HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"a\"")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"NOT_HTTP\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.0\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nHost: x\r\n", // EOF inside headers
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            HttpError::TooLarge {
                declared: 9999,
                limit: 1024
            }
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
    }

    #[test]
    fn response_writers_produce_parseable_http() {
        let mut out = Vec::new();
        write_json(
            &mut out,
            200,
            &Json::object(vec![("ok", true.into())]),
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        let mut chunked = ChunkedWriter::new(&mut out, 200, "application/x-ndjson", false).unwrap();
        chunked.chunk(b"{\"i\":0}\n").unwrap();
        chunked.chunk(b"").unwrap(); // no accidental terminator
        chunked.chunk(b"{\"i\":1}\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("8\r\n{\"i\":0}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }

    /// Feeds `raw` one request at a time with the input split at `cut`,
    /// asserting the parser needs more bytes until the full input arrives.
    fn parse_split(raw: &[u8], cut: usize, max_body: usize) -> Request {
        let mut parser = RequestParser::new(max_body);
        parser.push(&raw[..cut]);
        // Anything short of the full request must be Incomplete, never Err.
        if cut < raw.len() {
            assert!(
                parser.advance().unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        parser.push(&raw[cut..]);
        let req = parser.advance().unwrap().expect("complete request");
        assert!(parser.is_idle(), "no leftover bytes after a single request");
        req
    }

    #[test]
    fn incremental_parser_handles_every_split_point() {
        let raw = b"POST /audit HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 9\r\n\r\n{\"k\":3}\r\n";
        for cut in 0..=raw.len() {
            let req = parse_split(raw, cut, 1024);
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/audit");
            assert_eq!(req.body, b"{\"k\":3}\r\n");
        }
    }

    #[test]
    fn incremental_parser_decodes_chunked_at_every_split_point() {
        let raw = b"POST /tables HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab,c\r\n6\r\n\nd,e,f\r\n0\r\n\r\n";
        for cut in 0..=raw.len() {
            let req = parse_split(raw, cut, 1024);
            assert_eq!(req.body, b"ab,c\nd,e,f");
        }
    }

    #[test]
    fn incremental_parser_preserves_pipelined_requests() {
        let mut parser = RequestParser::new(1024);
        parser.push(b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n");
        let first = parser.advance().unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(!parser.is_idle(), "second request still buffered");
        let second = parser.advance().unwrap().unwrap();
        assert_eq!(second.path, "/stats");
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_rejects_oversized_declared_body_at_header_time() {
        let mut parser = RequestParser::new(64);
        parser.push(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(
            parser.advance(),
            Err(HttpError::TooLarge { declared: 9999, .. })
        ));
    }

    #[test]
    fn incremental_parser_rejects_oversized_chunked_mid_stream() {
        let mut parser = RequestParser::new(8);
        parser.push(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nabcdef\r\n6\r\nghijkl\r\n",
        );
        assert!(matches!(
            parser.advance(),
            Err(HttpError::TooLarge { declared: 12, .. })
        ));
    }

    #[test]
    fn incremental_parser_rejects_garbage() {
        for raw in [
            &b"NOT_HTTP\r\n\r\n"[..],
            b"GET /x HTTP/1.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabXX",
        ] {
            let mut parser = RequestParser::new(1024);
            parser.push(raw);
            assert!(
                parser.advance().is_err(),
                "{:?} should be rejected",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn streaming_mode_hands_body_bytes_out_incrementally() {
        let mut parser = RequestParser::new(1024);
        parser.push(b"POST /tables HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(parser.advance().unwrap().is_none());
        assert!(parser.head_received());
        assert_eq!(parser.head().unwrap().path, "/tables");
        parser.stream_body();
        parser.push(b"3\r\na,b\r\n");
        assert!(parser.advance().unwrap().is_none());
        assert_eq!(parser.take_body(), b"a,b");
        parser.push(b"4\r\n\n1,2\r\n0\r\n\r\n");
        let done = parser.advance().unwrap().unwrap();
        assert!(done.body.is_empty(), "streamed body is not re-buffered");
        assert_eq!(parser.take_body(), b"\n1,2");
    }

    #[test]
    fn streaming_mode_recovers_bytes_already_buffered() {
        let mut parser = RequestParser::new(1024);
        parser.push(b"POST /tables HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc");
        assert!(parser.advance().unwrap().is_none());
        parser.stream_body();
        assert_eq!(parser.take_body(), b"abc");
        parser.push(b"defgh");
        assert!(parser.advance().unwrap().unwrap().body.is_empty());
        assert_eq!(parser.take_body(), b"defgh");
    }

    #[test]
    fn status_texts_cover_served_codes() {
        for code in [200u16, 400, 404, 405, 413, 500, 503] {
            assert_ne!(status_text(code), "Unknown", "{code}");
        }
        assert_eq!(status_text(418), "Unknown");
    }
}
