//! # wcbk-serve — the batch/streaming disclosure-audit service
//!
//! PRs 1–3 made the disclosure machinery shareable (`Send + Sync` engine,
//! one-scan roll-up evaluation, a work-stealing whole-lattice scheduler);
//! this crate puts a network front-end on it, turning one-shot CLI runs
//! into a long-lived service: **many tables, one shared engine**, the
//! natural shape for sequential-release workloads where overlapping tables
//! are re-audited as data accretes.
//!
//! Everything is `std`-only — hand-rolled HTTP/1.1 ([`http`]) and JSON
//! ([`json`]) — because the build environment has no registry access.
//!
//! ## Endpoints
//!
//! The primary surface is the **dataset-handle resource model**: register a
//! table once (one scan builds the shared roll-up evaluator), then audit it
//! forever by handle — no re-parse, no re-scan.
//!
//! | endpoint | does |
//! |---|---|
//! | `POST /tables` | register CSV/rows + hierarchies → content-fingerprint handle (idempotent) |
//! | `GET /tables/{id}` | handle metadata + cumulative roll-up counters |
//! | `DELETE /tables/{id}` | drop the handle |
//! | `POST /tables/{id}/audit` | max disclosure + (c,k) verdict against the registered evaluator |
//! | `POST /tables/{id}/search` | minimal safe generalizations, scan-free |
//! | `POST /tables/{id}/batch` | many (c,k)/config jobs over one evaluator, streamed NDJSON |
//! | `POST /tables/{id}/release` | record a node's buckets into the sequential-release history |
//! | `POST /tables/{id}/composition` | worst-case disclosure over the union of all releases |
//! | `GET /tables/{id}/history` | the recorded release history (the composition audit trail) |
//! | `POST /audit` | one-shot: register → run → drop (bit-identical to `wcbk audit`) |
//! | `POST /search` | one-shot: register → run → drop (honors `threads`/`schedule`/`memo_cap`) |
//! | `POST /batch` | many tables fanned over the work-stealing scheduler, streamed back one NDJSON line per completed table |
//! | `GET /stats` | engine cache + roll-up + per-session + server counters |
//! | `GET /metrics` | Prometheus text exposition of every [`metrics`] series |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful shutdown (in-flight work finishes) |
//!
//! ## Observability
//!
//! Every request carries a **trace id** (client-supplied `X-Request-Id` or
//! generated), echoed on the response and stamped on the structured JSON
//! access log (`wcbk serve --log-json`; `--slow-request-ms N` always logs
//! offenders). Latency decomposes into contiguous phases — parse, reactor
//! queue wait, compute — surfaced three ways: aggregated in [`metrics`]
//! (scraped at `GET /metrics`), summarized in `/stats`, and per-request via
//! `"profile": true` on audit/search bodies, whose `profile` object reports
//! phase micros summing exactly to `total_micros`. See
//! `docs/OPERATIONS.md` for the full metrics glossary and the
//! slow-request runbook.
//!
//! The session store and the per-`k` engine registry sit under
//! group-weighted LRU budgets ([`ServiceLimits`]; `wcbk serve
//! --engine-cache-cap/--engine-budget/--session-budget`), so a long-lived
//! server is memory-bounded: an evicted handle answers a clean 404 and can
//! simply be re-registered.
//!
//! With a durable catalog attached (`wcbk serve --data-dir DIR`, backed by
//! [`wcbk_store::DatasetStore`]) the story strengthens: registrations and
//! releases are persisted write-ahead **before** they are acknowledged, the
//! server replays its catalog on boot, and an evicted or restart-forgotten
//! handle is lazily rebuilt from disk on first touch instead of 404ing —
//! with bit-identical answers, and still exactly one table scan per handle
//! per process. `DELETE /tables/{id}` becomes the one true deletion
//! (removed from disk too). See [`persist`] for the payload format.
//!
//! Results are bit-identical to `wcbk audit` / `wcbk search`: same table
//! construction, same engine code, and `f64`s serialized with shortest
//! round-trip formatting.
//!
//! Connections are served by a **readiness-based reactor** ([`poll`],
//! [`server`]): every socket is nonblocking, one thread multiplexes all of
//! them, and CPU-bound work runs on a bounded worker pool — so thousands
//! of idle keep-alive clients cost ~0 threads, slow clients are reaped by
//! deadline instead of pinning a worker, and `POST /tables` accepts
//! `Transfer-Encoding: chunked` CSV uploads decoded incrementally off the
//! wire. Admission is either the classic bounded queue (`queue_depth`
//! waiting connections, then an immediate `503` with `Retry-After`) or,
//! with `max_connections` set, a flat connection cap.
//!
//! ```no_run
//! use wcbk_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // .shutdown() from any thread
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod poll;
pub mod server;
pub mod service;

pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{AuditService, ServeError, ServiceLimits};
