//! Readiness multiplexing for the evented server, std-only.
//!
//! The sanctioned dependency set has no `mio`/`libc`, so on unix this module
//! declares the one syscall it needs — `poll(2)` — directly via `extern
//! "C"` (the symbol is in libc, which every Rust binary already links).
//! [`Poller::wait`] blocks until any registered descriptor is readable /
//! writable, a timeout elapses, or the [`Waker`] is poked from another
//! thread (worker threads use it to hand completed response bytes back to
//! the reactor).
//!
//! On non-unix targets a coarse fallback reports every descriptor ready on
//! a short tick; correctness is preserved because all sockets are
//! nonblocking (a spurious "ready" just yields `WouldBlock`), only
//! efficiency degrades.

/// A raw file descriptor (or the platform's nearest equivalent).
pub type Fd = i32;

/// What a registered descriptor is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read and write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Readiness reported for one descriptor after a [`Poller::wait`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or EOF, or an incoming connection) can be read.
    pub readable: bool,
    /// The socket send buffer has room.
    pub writable: bool,
    /// The descriptor errored or hung up; treat as readable so the state
    /// machine observes the failure on its next I/O attempt.
    pub error: bool,
}

impl Readiness {
    /// Whether anything at all happened.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.error
    }
}

#[cfg(unix)]
mod sys {
    use super::{Fd, Interest, Readiness};
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    // `poll(2)` per POSIX; every supported unix libc exports it with this
    // exact ABI. `nfds_t` is `c_ulong` on the platforms we build for.
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    }

    /// Multiplexes readiness over a set of descriptors via `poll(2)`.
    pub struct Poller {
        fds: Vec<PollFd>,
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
    }

    /// Pokes the poller awake from any thread.
    #[derive(Clone)]
    pub struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        /// Wakes the poller. Never blocks: the pipe is nonblocking and a
        /// full pipe already guarantees a pending wakeup.
        pub fn wake(&self) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    impl Poller {
        /// Creates a poller and its wakeup channel.
        pub fn new() -> std::io::Result<(Self, Waker)> {
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let wake_tx = Arc::new(wake_tx);
            let waker = Waker {
                tx: Arc::clone(&wake_tx),
            };
            Ok((
                Self {
                    fds: Vec::new(),
                    wake_rx,
                    wake_tx,
                },
                waker,
            ))
        }

        /// Blocks until at least one of `entries` is ready, the waker is
        /// poked, or `timeout` elapses (`None` = wait forever). Returns
        /// per-entry readiness aligned with `entries`, and whether the
        /// waker fired.
        pub fn wait(
            &mut self,
            entries: &[(Fd, Interest)],
            timeout: Option<Duration>,
        ) -> std::io::Result<(Vec<Readiness>, bool)> {
            self.fds.clear();
            self.fds.push(PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for &(fd, interest) in entries {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 1ns deadline doesn't spin at timeout 0.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            loop {
                let rc = unsafe {
                    poll(
                        self.fds.as_mut_ptr(),
                        self.fds.len() as std::ffi::c_ulong,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break;
                }
                let err = std::io::Error::last_os_error();
                if err.kind() != std::io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            let woke = self.fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0;
            if woke {
                // Drain every queued poke; the pipe is nonblocking.
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            let ready = self.fds[1..]
                .iter()
                .map(|p| Readiness {
                    readable: p.revents & POLLIN != 0,
                    writable: p.revents & POLLOUT != 0,
                    error: p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                })
                .collect();
            Ok((ready, woke))
        }

        /// A fresh waker for this poller.
        pub fn waker(&self) -> Waker {
            Waker {
                tx: Arc::clone(&self.wake_tx),
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Fd, Interest, Readiness};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Fallback poller: reports every descriptor ready on a short tick.
    /// Sockets are nonblocking, so spurious readiness only costs a
    /// `WouldBlock`; the server stays correct, just less efficient.
    pub struct Poller {
        state: Arc<(Mutex<bool>, Condvar)>,
    }

    /// Pokes the fallback poller awake.
    #[derive(Clone)]
    pub struct Waker {
        state: Arc<(Mutex<bool>, Condvar)>,
    }

    impl Waker {
        /// Wakes the poller.
        pub fn wake(&self) {
            let (flag, cv) = &*self.state;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        }
    }

    impl Poller {
        /// Creates a poller and its wakeup channel.
        pub fn new() -> std::io::Result<(Self, Waker)> {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            Ok((
                Self {
                    state: Arc::clone(&state),
                },
                Waker { state },
            ))
        }

        /// Sleeps briefly (or until poked), then reports everything ready.
        pub fn wait(
            &mut self,
            entries: &[(Fd, Interest)],
            timeout: Option<Duration>,
        ) -> std::io::Result<(Vec<Readiness>, bool)> {
            let tick = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            let (flag, cv) = &*self.state;
            let woke = {
                let guard = flag.lock().unwrap();
                let (mut guard, _) = cv.wait_timeout(guard, tick).unwrap();
                std::mem::replace(&mut *guard, false)
            };
            let ready = entries
                .iter()
                .map(|&(_, interest)| Readiness {
                    readable: interest.readable,
                    writable: interest.writable,
                    error: false,
                })
                .collect();
            Ok((ready, woke))
        }

        /// A fresh waker for this poller.
        pub fn waker(&self) -> Waker {
            Waker {
                state: Arc::clone(&self.state),
            }
        }
    }
}

pub use sys::{Poller, Waker};

/// The raw descriptor of any socket-like object, for registration.
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(sock: &T) -> Fd {
    sock.as_raw_fd()
}

/// Fallback: the poller ignores descriptors on non-unix targets.
#[cfg(not(unix))]
pub fn fd_of<T>(_sock: &T) -> Fd {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn waker_interrupts_an_idle_wait() {
        let (mut poller, waker) = Poller::new().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = std::time::Instant::now();
        let (_, woke) = poller.wait(&[], Some(Duration::from_secs(10))).unwrap();
        assert!(woke, "waker poke should be observed");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wait should return promptly after the poke"
        );
        handle.join().unwrap();
    }

    #[test]
    fn timeout_elapses_without_events() {
        let (mut poller, _waker) = Poller::new().unwrap();
        let start = std::time::Instant::now();
        let (ready, woke) = poller.wait(&[], Some(Duration::from_millis(20))).unwrap();
        assert!(ready.is_empty());
        assert!(!woke);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[cfg(unix)]
    #[test]
    fn readable_socket_is_reported() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let (mut poller, _waker) = Poller::new().unwrap();
        // Nothing written yet: b is not readable but is writable.
        let (ready, _) = poller
            .wait(
                &[(fd_of(&b), Interest::READ_WRITE)],
                Some(Duration::from_millis(50)),
            )
            .unwrap();
        assert!(!ready[0].readable);
        assert!(ready[0].writable);
        a.write_all(b"x").unwrap();
        let (ready, _) = poller
            .wait(&[(fd_of(&b), Interest::READ)], Some(Duration::from_secs(5)))
            .unwrap();
        assert!(ready[0].readable, "peer data should mark b readable");
        // Read interest only: writability is not reported even though the
        // send buffer has room.
        assert!(!ready[0].writable);
    }

    #[cfg(unix)]
    #[test]
    fn peer_close_reports_readable_or_error() {
        use std::os::unix::net::UnixStream;
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let (mut poller, _waker) = Poller::new().unwrap();
        let (ready, _) = poller
            .wait(&[(fd_of(&b), Interest::READ)], Some(Duration::from_secs(5)))
            .unwrap();
        assert!(ready[0].readable || ready[0].error);
    }
}
